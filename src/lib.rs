//! # SIPerf
//!
//! A full reproduction of *"Explaining the Impact of Network Transport
//! Protocols on SIP Proxy Performance"* (Ram, Fedeli, Cox, Rixner; ISPASS
//! 2008) as a simulation study in Rust.
//!
//! This umbrella crate re-exports every layer of the workspace so examples,
//! integration tests, and downstream users can reach the whole system through
//! one dependency:
//!
//! * [`simcore`] — deterministic discrete-event engine (time, events, RNG,
//!   statistics, CPU profiler).
//! * [`simos`] — simulated OS kernel: processes, preemptive priority
//!   scheduler, blocking syscalls, bounded IPC with fd passing, spinlocks.
//! * [`simnet`] — simulated network: hosts and links, UDP, a full TCP model
//!   (handshake, byte streams, accept queues, ephemeral ports, TIME_WAIT),
//!   and SCTP-style associations.
//! * [`sip`] — the SIP protocol: messages, parser/serializer, stream
//!   framing, and stateful-proxy transaction machinery.
//! * [`proxy`] — the paper's subject: an OpenSER-architecture SIP proxy with
//!   its UDP, TCP (supervisor/worker fd-passing), and SCTP modes, the
//!   file-descriptor cache, and both idle-connection strategies.
//! * [`overload`] — pluggable overload-control policies (queue-threshold
//!   shedding, receiver-driven windows) the proxy consults before admitting
//!   new calls, for the beyond-the-knee experiments.
//! * [`faults`] — deterministic fault-injection schedules: burst loss,
//!   partitions, latency spikes, TCP resets, accept freezes, and process
//!   crashes, replayed at exact virtual times for chaos experiments.
//! * [`workload`] — simulated phones, the benchmark manager, and the
//!   paper's experiment definitions (Figures 3–5 plus ablations).
//!
//! # Quickstart
//!
//! ```
//! use siperf::workload::{Scenario, Transport};
//!
//! // A small UDP run: 20 caller/callee pairs for 2 simulated seconds.
//! let report = Scenario::builder("quickstart")
//!     .transport(Transport::Udp)
//!     .client_pairs(20)
//!     .measure_secs(2)
//!     .build()
//!     .run();
//! assert!(report.throughput.per_sec() > 0.0);
//! ```

#![warn(missing_docs)]

pub use siperf_faults as faults;
pub use siperf_overload as overload;
pub use siperf_proxy as proxy;
pub use siperf_simcore as simcore;
pub use siperf_simnet as simnet;
pub use siperf_simos as simos;
pub use siperf_sip as sip;
pub use siperf_workload as workload;
