//! A tour of the proxy's execution profile — the paper's §5 methodology.
//!
//! The paper's argument is profile-driven: OProfile showed 12% of CPU in
//! the fd-request IPC function, then 4.6% after the cache; the idle scan
//! tripling under churn; the kernel profile filling with scheduler time.
//! This example prints the same views from the simulator's CPU accounting.
//!
//! Run: `cargo run --release --example profile_tour`

use siperf::proxy::config::{ProxyConfig, Transport};
use siperf::workload::Scenario;

fn run(name: &str, proxy: ProxyConfig, ops_per_conn: Option<u32>) {
    let mut builder = Scenario::builder(name)
        .proxy(proxy)
        .client_pairs(200)
        .measure_secs(3);
    if let Some(k) = ops_per_conn {
        builder = builder.ops_per_conn(k);
    }
    let report = builder.build().run();
    println!("== {name} — {:.0} ops/s ==", report.throughput.per_sec());
    println!("{}", report.server_profile.to_table(10));
    let p = &report.server_profile;
    let ipc =
        p.share("kernel/ipc_send") + p.share("kernel/ipc_recv") + p.share("user/tcpconn_get_fd");
    println!("   fd-request IPC share: {:>5.1}%", 100.0 * ipc);
    println!(
        "   idle-scan share:      {:>5.1}%",
        100.0 * p.share("user/tcpconn_timeout")
    );
    println!(
        "   sched_yield share:    {:>5.1}%",
        100.0 * p.share("kernel/sched_yield")
    );
    println!();
}

fn main() {
    println!("SIPerf profile tour — reproducing the §5 OProfile evidence\n");
    run("UDP", ProxyConfig::paper(Transport::Udp), None);
    run("TCP baseline", ProxyConfig::paper(Transport::Tcp), None);
    run(
        "TCP + fd cache",
        ProxyConfig::paper(Transport::Tcp).with_fd_cache(),
        None,
    );
    run(
        "TCP + fd cache, 50 ops/conn (idle-scan blowup)",
        ProxyConfig::paper(Transport::Tcp).with_fd_cache(),
        Some(50),
    );
    run(
        "TCP + fd cache + priority queue, 50 ops/conn",
        ProxyConfig::paper(Transport::Tcp)
            .with_fd_cache()
            .with_priority_queue(),
        Some(50),
    );
}
