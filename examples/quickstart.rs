//! Quickstart: stand up the simulated testbed, run one UDP and one TCP
//! experiment, and print what the paper's benchmark would report.
//!
//! Run: `cargo run --release --example quickstart`

use siperf::proxy::config::Transport;
use siperf::workload::Scenario;

fn main() {
    println!("SIPerf quickstart — 100 caller/callee pairs, 4-core proxy\n");

    for transport in [Transport::Udp, Transport::Tcp] {
        let report = Scenario::builder(format!("quickstart-{}", transport.token()))
            .transport(transport)
            .client_pairs(100)
            .measure_secs(3)
            .build()
            .run();

        println!("== {} ==", transport.token());
        println!(
            "  throughput        {:>10.0} ops/s",
            report.throughput.per_sec()
        );
        println!("  registered phones {:>10}", report.registered);
        println!("  calls attempted   {:>10}", report.call_attempts);
        println!("  calls failed      {:>10}", report.call_failures);
        println!(
            "  invite latency    {:>10} (p50)   {} (p99)",
            report.invite_p50.to_string(),
            report.invite_p99
        );
        println!(
            "  server CPU        {:>9.1}%",
            100.0 * report.server_utilization
        );
        if transport == Transport::Tcp {
            println!("  fd requests       {:>10}", report.proxy.fd_requests);
            println!("  conns assigned    {:>10}", report.proxy.conns_assigned);
        }
        println!();
    }

    println!("The TCP run lands well below UDP — the paper's Figure 3 baseline.");
    println!("Try the fixes: `cargo bench -p siperf-bench --bench figures`.");
}
