//! Chaos tour: the canonical fault storm — a Gilbert–Elliott burst-loss
//! episode, one worker crash, one TCP connection reset — replayed against
//! every transport, plus a supervisor assassination for the TCP
//! multi-process architecture.
//!
//! The point is the paper's robustness story told with numbers: reliable
//! transports stall through bursts where UDP drops and retransmits, a
//! crashed worker's connections migrate to its replacement, and a reset
//! phone reconnects and re-drives its call. Same seed, same storm, same
//! report — byte for byte.
//!
//! Run: `cargo run --release --example chaos [seed]`

use siperf::faults::{Fault, FaultSchedule};
use siperf::proxy::config::{ProxyConfig, Transport};
use siperf::simcore::time::SimDuration;
use siperf::simnet::HostId;
use siperf::workload::Scenario;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

fn storm_run(transport: Transport, seed: u64) {
    let workers = ProxyConfig::paper(transport).worker_count();
    let storm = FaultSchedule::storm(seed, ms(2500), ms(3000), workers, HostId(0));
    println!("  schedule:");
    for ev in storm.events() {
        println!("    t={:>8}  {:?}", ev.at.to_string(), ev.fault);
    }

    let mut s = Scenario::builder(format!("chaos-{transport:?}"))
        .transport(transport)
        .client_pairs(50)
        .seed(seed)
        .fault_schedule(storm)
        .build();
    s.call_start = ms(600);
    s.measure_from = ms(1200);
    s.measure = SimDuration::from_secs(7);
    let r = s.run();

    let failure_ratio = r.call_failures as f64 / r.call_attempts.max(1) as f64;
    println!("  {}", r.summary());
    println!(
        "  faults {}  resets {}  respawns {}  conns reassigned {}  recovered calls {}",
        r.faults_injected,
        r.connections_reset,
        r.workers_respawned,
        r.proxy.conns_reassigned,
        r.recovered_calls,
    );
    println!(
        "  burst: {} dropped, {} delayed   failure ratio {:.1}%   endpoints {}  (TIME_WAIT {})\n",
        r.net.fault_drops,
        r.net.fault_delays,
        100.0 * failure_ratio,
        r.server_endpoints,
        r.server_time_wait,
    );
}

fn supervisor_assassination(seed: u64) {
    println!("TCP, supervisor crash at t=3 s (fresh supervisor, cold fd cache)");
    let faults = FaultSchedule::new().at(ms(3000), Fault::KillSupervisor);
    let mut s = Scenario::builder("chaos-supervisor")
        .transport(Transport::Tcp)
        .client_pairs(50)
        .seed(seed)
        .fault_schedule(faults)
        .build();
    s.call_start = ms(600);
    s.measure_from = ms(1200);
    s.measure = SimDuration::from_secs(7);
    let r = s.run();
    let failure_ratio = r.call_failures as f64 / r.call_attempts.max(1) as f64;
    println!("  {}", r.summary());
    println!(
        "  respawns {}  connect errors {}  failure ratio {:.1}%\n",
        r.workers_respawned,
        r.connect_errors,
        100.0 * failure_ratio,
    );
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(42);
    println!("SIPerf chaos tour — canonical storm, seed {seed}\n");

    for transport in [Transport::Udp, Transport::Tcp, Transport::Sctp] {
        println!("{transport:?}, paper configuration");
        storm_run(transport, seed);
    }
    supervisor_assassination(seed);

    println!("Replay any line with the same seed: the report is identical, byte for byte.");
}
