//! The §4.3 idle-timeout starvation, live.
//!
//! "By default, OpenSER keeps idle TCP connections open for 120 seconds …
//! this caused the server to run out of available ports in many experiments
//! that did not heavily reuse connections. To avoid port starvation,
//! OpenSER was configured to keep idle TCP connections open for only 10
//! seconds."
//!
//! Clients in the non-persistent workloads abandon their connections (they
//! never close anything); only the server's idle management reclaims them.
//! Watch the server's socket count race its descriptor budget under both
//! timeout settings.
//!
//! Run: `cargo run --release --example port_starvation`

use siperf::proxy::config::{ProxyConfig, Transport};
use siperf::simcore::time::{SimDuration, SimTime};
use siperf::simnet::NetConfig;
use siperf::workload::Scenario;

fn run(timeout: SimDuration, label: &str) {
    let mut net = NetConfig::lan();
    net.max_endpoints_per_host = 700; // a tight descriptor budget
    let mut proxy = ProxyConfig::paper(Transport::Tcp).with_fd_cache();
    proxy.idle_timeout = timeout;
    let mut scenario = Scenario::builder(label)
        .proxy(proxy)
        .client_pairs(8)
        .ops_per_conn(10)
        .net(net)
        .build();
    scenario.call_start = SimDuration::from_millis(600);

    println!("idle timeout = {label}");
    let mut world = scenario.build_world();
    for ms in [1000u64, 2000, 3000, 4000, 5000] {
        world
            .kernel
            .run_until(SimTime::ZERO + SimDuration::from_millis(ms));
        let w = world.stats.borrow();
        println!(
            "  t={:>4} ms  server sockets {:>4}/700  reconnects {:>5}  refused connects {:>4}  ops {:>6}",
            ms,
            world.kernel.net().endpoints_on(world.server),
            w.reconnects,
            w.connect_errors,
            w.ops_total,
        );
    }
    println!();
}

fn main() {
    println!("SIPerf port/descriptor starvation demo — §4.3\n");
    run(SimDuration::from_secs(120), "120 s (OpenSER's default)");
    run(
        SimDuration::from_millis(250),
        "250 ms (aggressive reclaim, scaled-down 10 s)",
    );
    println!("With the long timeout, abandoned connections pile up to the budget");
    println!("and new connections are refused; aggressive reclaim keeps the socket");
    println!("count flat and the refusals at zero. The paper hit exactly this with");
    println!("120 s and settled on 10 s for all experiments.");
}
