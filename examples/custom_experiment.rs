//! Building your own experiment on the SIPerf library: a "what if" the
//! paper never ran — a proxy on *modern* hardware assumptions, with a
//! CANCEL-heavy human workload and ringing callees, comparing the shipped
//! TCP architecture against the paper's fixed one.
//!
//! This demonstrates the full extension surface: kernel cost models,
//! application cost models, proxy configuration, workload shaping, and the
//! report/profile outputs.
//!
//! Run: `cargo run --release --example custom_experiment`

use siperf::proxy::config::{ProxyConfig, Transport};
use siperf::simcore::time::SimDuration;
use siperf::simos::cost::CostModel;
use siperf::workload::Scenario;

/// A speculative "one generation newer" machine: every kernel operation
/// roughly 2× cheaper than the paper's 2006 Opteron.
fn faster_kernel() -> CostModel {
    let mut c = CostModel::opteron_2006();
    for field in [
        &mut c.syscall_base,
        &mut c.udp_send,
        &mut c.udp_recv,
        &mut c.tcp_send,
        &mut c.tcp_recv,
        &mut c.tcp_connect,
        &mut c.tcp_accept,
        &mut c.tcp_close,
        &mut c.ipc_send,
        &mut c.ipc_recv,
        &mut c.ipc_fd_install,
        &mut c.context_switch,
        &mut c.wake_retry,
    ] {
        *field /= 2;
    }
    c
}

fn run(name: &str, proxy: ProxyConfig) {
    let mut scenario = Scenario::builder(name)
        .proxy(proxy)
        .client_pairs(300)
        .measure_secs(3)
        // A human-ish workload: phones ring for 30 ms, callers give up on
        // every 6th call.
        .ring_delay(SimDuration::from_millis(30))
        .cancel_every(6)
        .build();
    scenario.kernel_costs = faster_kernel();
    let report = scenario.run();
    println!(
        "{:<28} {:>9.0} ops/s   cancelled {:>5}   p50 {:>9}   util {:>4.0}%",
        name,
        report.throughput.per_sec(),
        report.calls_cancelled,
        report.invite_p50.to_string(),
        100.0 * report.server_utilization,
    );
    assert_eq!(report.call_failures, 0, "no calls may be lost");
}

fn main() {
    println!("SIPerf custom experiment — faster kernel, ringing callees,");
    println!("CANCEL-happy callers (everything the paper never measured)\n");
    run("UDP", ProxyConfig::paper(Transport::Udp));
    run("TCP baseline", ProxyConfig::paper(Transport::Tcp));
    run(
        "TCP fixed (fd cache + pq)",
        ProxyConfig::paper(Transport::Tcp)
            .with_fd_cache()
            .with_priority_queue(),
    );
    println!();
    println!("With ringing callees the workload turns latency-bound, so raw");
    println!("throughput converges — but look at the utilization column: the");
    println!("baseline burns ~80% of the server to serve what the fixed design");
    println!("(and UDP) deliver at ~50-60%. The architectural tax survives a");
    println!("hardware generation; it just moves from the throughput column to");
    println!("the CPU bill.");
}
