//! Transport showdown: every architecture the paper discusses, side by
//! side at one load level — the study's whole argument on one screen.
//!
//! Run: `cargo run --release --example transport_showdown`

use siperf::proxy::config::{Arch, ProxyConfig, Transport};
use siperf::workload::Scenario;

struct Contender {
    name: &'static str,
    proxy: ProxyConfig,
    note: &'static str,
}

fn main() {
    let pairs = 300;
    println!("SIPerf transport showdown — {pairs} caller/callee pairs\n");

    let contenders = vec![
        Contender {
            name: "UDP, symmetric workers",
            proxy: ProxyConfig::paper(Transport::Udp),
            note: "the incumbent (§3.2)",
        },
        Contender {
            name: "TCP, baseline",
            proxy: ProxyConfig::paper(Transport::Tcp),
            note: "supervisor + fd passing + close-after-send (§3.1)",
        },
        Contender {
            name: "TCP, fd cache",
            proxy: ProxyConfig::paper(Transport::Tcp).with_fd_cache(),
            note: "the §5.2 fix",
        },
        Contender {
            name: "TCP, fd cache + priority queue",
            proxy: ProxyConfig::paper(Transport::Tcp)
                .with_fd_cache()
                .with_priority_queue(),
            note: "the §5.3 fix (Figure 5)",
        },
        Contender {
            name: "TCP, multi-threaded",
            proxy: {
                let mut p = ProxyConfig::paper(Transport::Tcp)
                    .with_fd_cache()
                    .with_priority_queue();
                p.arch = Arch::MultiThread;
                p
            },
            note: "the §6 proposal: no fd-passing IPC at all",
        },
        Contender {
            name: "SCTP, symmetric workers",
            proxy: ProxyConfig::paper(Transport::Sctp),
            note: "the §6 alternative transport",
        },
    ];

    let mut udp_tput = None;
    println!(
        "{:<34} {:>10} {:>8} {:>10}  notes",
        "architecture", "ops/s", "%UDP", "p50"
    );
    for c in contenders {
        let report = Scenario::builder(c.name)
            .proxy(c.proxy)
            .client_pairs(pairs)
            .measure_secs(3)
            .build()
            .run();
        let tput = report.throughput.per_sec();
        let udp = *udp_tput.get_or_insert(tput);
        println!(
            "{:<34} {:>10.0} {:>7.0}% {:>10}  {}",
            c.name,
            tput,
            100.0 * tput / udp,
            report.invite_p50.to_string(),
            c.note,
        );
        assert_eq!(report.call_failures, 0, "{} dropped calls", c.name);
    }

    println!();
    println!("Conclusion (the paper's): TCP's deficit is the server's design, not");
    println!("the protocol — fix the architecture and TCP becomes competitive.");
}
