//! The §6 deadlock, live.
//!
//! "When a worker process requests a connection from the supervisor
//! process, it then blocks waiting to receive that file descriptor. If, at
//! the same time, the supervisor process blocks waiting to send a new
//! connection to the same worker (since the buffer at the receiver is
//! full), the two processes will deadlock. Once the supervisor process
//! deadlocks, no other worker can make progress either."
//!
//! This demo shrinks the supervisor/worker IPC buffers to one slot and
//! drives connection churn until the cycle closes, then prints the wait-for
//! cycle the kernel detects.
//!
//! Run: `cargo run --release --example deadlock_demo`

use siperf::proxy::config::{ProxyConfig, Transport};
use siperf::simcore::time::{SimDuration, SimTime};
use siperf::workload::Scenario;

fn main() {
    println!("SIPerf deadlock demo — §6's blocking-IPC hazard\n");
    let mut proxy = ProxyConfig::paper(Transport::Tcp);
    proxy.ipc_capacity = 1; // one-slot unix-socket buffers
    proxy.workers = Some(2);
    let mut scenario = Scenario::builder("deadlock-demo")
        .proxy(proxy)
        .client_pairs(40)
        .ops_per_conn(5) // heavy reconnect churn keeps assignments flowing
        .build();
    scenario.call_start = SimDuration::from_millis(600);

    let mut world = scenario.build_world();
    let mut last_ops = 0;
    for ms in (250..=4000).step_by(250) {
        world
            .kernel
            .run_until(SimTime::ZERO + SimDuration::from_millis(ms));
        let ops = world.stats.borrow().ops_total;
        let delta = ops - last_ops;
        last_ops = ops;
        println!(
            "t={:>4} ms  ops so far {:>6}  (+{delta:>5})  connections {:>4}",
            ms,
            ops,
            world.proxy.open_conns(),
        );
        if let Some(cycle) = world.kernel.find_ipc_deadlock() {
            println!("\nDEADLOCK after {ms} ms — wait-for cycle:");
            for pid in &cycle {
                let blocked = world
                    .kernel
                    .blocked_summary()
                    .into_iter()
                    .find(|(p, _)| p == pid)
                    .map(|(_, what)| what)
                    .unwrap_or_default();
                println!("  {:<14} {}", world.kernel.proc_name(*pid), blocked);
            }
            println!();
            println!("The supervisor is stuck sending an assignment to a worker whose");
            println!("queue is full; that worker is stuck waiting for the fd response");
            println!("only the supervisor can send. Every other worker starves next.");
            println!();
            println!("§6's prescription: \"only read from sockets when the event");
            println!("mechanism says there is something to read and only write when");
            println!("it says there is space to write.\"");
            return;
        }
    }
    println!("\nNo deadlock this run — increase churn or shrink the buffers.");
}
