//! Overload control: what each admission policy buys past saturation.
//!
//! Two experiments:
//!
//! 1. **Closed loop at 2× capacity** — twice as many caller/callee pairs
//!    as the proxy's saturation knee over UDP and TCP, once per admission
//!    policy. Closed-loop callers wait for each call to finish before the
//!    next, so offered load self-throttles and the contrast shows up in
//!    latency and rejection counts.
//!
//! 2. **Open loop through the knee** — Poisson callers offering a fixed
//!    aggregate rate regardless of outstanding calls, swept from below
//!    saturation to ~2× past it. This is the goodput-vs-offered-load
//!    curve from the overload-control literature: without admission
//!    control, goodput falls off a cliff as queueing delay pushes call
//!    setup past its deadline; with control, the proxy sheds the excess
//!    with cheap fast-path 503s and holds its peak.
//!
//! The run doubles as a regression check: it asserts the cliff and the
//! hold at a fixed seed, so CI fails if either shape regresses.
//!
//! Run: `cargo run --release --example overload_control`

use siperf::overload::OverloadConfig;
use siperf::simcore::time::SimDuration;
use siperf::workload::{Scenario, ScenarioReport, Transport};

fn closed_loop_2x() {
    let pairs = 1200; // ~2x the saturation knee of ~600 pairs
    println!("== Closed loop: {pairs} caller/callee pairs (~2x capacity) ==\n");

    for transport in [Transport::Udp, Transport::Tcp] {
        println!("-- {transport:?} --");
        println!(
            "{:<18} {:>10} {:>10} {:>9} {:>9} {:>10} {:>10}",
            "policy", "offered/s", "goodput/s", "rejected", "retries", "p50", "p99"
        );
        for policy in [
            OverloadConfig::NoControl,
            OverloadConfig::queue_threshold_default(),
            OverloadConfig::window_feedback_default(),
        ] {
            let mut s = Scenario::builder(format!("2x-{}", policy.token()))
                .transport(transport)
                .overload_policy(policy.clone())
                .client_pairs(pairs)
                .build();
            s.call_start = SimDuration::from_millis(700);
            s.measure_from = SimDuration::from_millis(1500);
            s.measure = SimDuration::from_millis(1500);
            let r = s.run();
            println!(
                "{:<18} {:>10.0} {:>10.0} {:>9} {:>9} {:>10} {:>10}",
                policy.token(),
                r.offered.per_sec(),
                r.throughput.per_sec(),
                r.calls_rejected,
                r.rejection_retries,
                r.invite_p50.to_string(),
                r.invite_p99.to_string(),
            );
            assert_eq!(
                r.proxy.parse_errors,
                0,
                "{transport:?}/{}: parse errors under overload",
                policy.token()
            );
        }
        println!();
    }
}

fn open_loop_run(policy: &OverloadConfig, rate: f64) -> ScenarioReport {
    let mut s = Scenario::builder(format!("open-{}-{rate}", policy.token()))
        .transport(Transport::Udp)
        .overload_policy(policy.clone())
        .client_pairs(300)
        .arrival_rate(rate)
        .setup_deadline(SimDuration::from_millis(200))
        .build();
    s.call_start = SimDuration::from_millis(700);
    s.measure_from = SimDuration::from_millis(2000);
    s.measure = SimDuration::from_millis(1500);
    s.run()
}

fn open_loop_sweep() {
    println!("== Open loop (UDP): Poisson arrivals through the knee ==\n");
    println!("Goodput is deadline-scored: calls set up past the 200 ms budget");
    println!("complete but count zero, as the overload literature scores them.\n");

    // Saturation for this topology sits near 16k calls/s (~32k ops/s).
    let rates = [12_000.0, 18_000.0, 24_000.0, 30_000.0];
    let mut curves = Vec::new();
    for policy in [
        OverloadConfig::NoControl,
        OverloadConfig::queue_threshold_default(),
    ] {
        println!(
            "{:<18} {:>9} {:>10} {:>10} {:>8} {:>8} {:>9} {:>10}",
            "policy", "rate/s", "offered/s", "goodput/s", "shed", "late", "pool-max", "p50"
        );
        let mut curve = Vec::new();
        for rate in rates {
            let r = open_loop_run(&policy, rate);
            println!(
                "{:<18} {:>9.0} {:>10.0} {:>10.0} {:>8} {:>8} {:>9} {:>10}",
                policy.token(),
                rate,
                r.offered.per_sec(),
                r.throughput.per_sec(),
                r.calls_rejected,
                r.calls_late,
                r.open_calls_peak,
                r.invite_p50.to_string(),
            );
            curve.push(r);
        }
        println!();
        curves.push(curve);
    }

    // Regression assertions at the fixed default seed: the shapes the
    // experiment exists to show must actually be present.
    let (none, qt) = (&curves[0], &curves[1]);
    let none_peak = none[1].throughput.per_sec();
    let none_over = none[3].throughput.per_sec();
    assert!(
        none_over < 0.75 * none_peak,
        "no goodput cliff without control: {none_over:.0}/s at ~2x vs peak {none_peak:.0}/s"
    );
    let qt_peak = qt[1].throughput.per_sec();
    let qt_over = qt[3].throughput.per_sec();
    assert!(
        qt_over >= 0.85 * qt_peak,
        "queue-threshold lost its peak: {qt_over:.0}/s at ~2x vs peak {qt_peak:.0}/s"
    );
    assert!(
        qt_over > 1.5 * none_over,
        "control not visibly better at 2x: {qt_over:.0}/s vs uncontrolled {none_over:.0}/s"
    );

    println!("cliff: uncontrolled goodput {none_peak:.0} -> {none_over:.0} ops/s past the knee");
    println!("hold:  queue-threshold     {qt_peak:.0} -> {qt_over:.0} ops/s (shedding early,");
    println!("       503s on the pre-parse fast path, callers backing off with jitter)");
}

fn main() {
    closed_loop_2x();
    open_loop_sweep();
}
