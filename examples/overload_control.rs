//! Overload control at 2× capacity: what each admission policy buys.
//!
//! Drives twice as many caller/callee pairs as the proxy's saturation
//! knee over UDP and TCP, once per admission policy, and prints the
//! goodput/rejection table. The punchline mirrors the overload-control
//! literature: shedding excess INVITEs with `503 Service Unavailable`
//! keeps goodput near the saturation peak and latency bounded, where the
//! uncontrolled proxy burns its cycles on calls it cannot finish.
//!
//! Run: `cargo run --release --example overload_control`

use siperf::overload::OverloadConfig;
use siperf::simcore::time::SimDuration;
use siperf::workload::{Scenario, Transport};

fn main() {
    let pairs = 1200; // ~2x the saturation knee of ~600 pairs
    println!("SIPerf overload control — {pairs} caller/callee pairs (~2x capacity)\n");

    for transport in [Transport::Udp, Transport::Tcp] {
        println!("== {transport:?} ==");
        println!(
            "{:<18} {:>10} {:>10} {:>9} {:>9} {:>10} {:>10}",
            "policy", "offered/s", "goodput/s", "rejected", "retries", "p50", "p99"
        );
        for policy in [
            OverloadConfig::NoControl,
            OverloadConfig::queue_threshold_default(),
            OverloadConfig::window_feedback_default(),
        ] {
            let mut s = Scenario::builder(format!("2x-{}", policy.token()))
                .transport(transport)
                .overload_policy(policy.clone())
                .client_pairs(pairs)
                .build();
            s.call_start = SimDuration::from_millis(700);
            s.measure_from = SimDuration::from_millis(1500);
            s.measure = SimDuration::from_millis(1500);
            let r = s.run();
            println!(
                "{:<18} {:>10.0} {:>10.0} {:>9} {:>9} {:>10} {:>10}",
                policy.token(),
                r.offered.per_sec(),
                r.throughput.per_sec(),
                r.calls_rejected,
                r.rejection_retries,
                r.invite_p50.to_string(),
                r.invite_p99.to_string(),
            );
            assert_eq!(
                r.proxy.parse_errors,
                0,
                "{transport:?}/{}: parse errors under overload",
                policy.token()
            );
        }
        println!();
    }

    println!("Rejected calls back off per the 503's Retry-After (doubling per");
    println!("consecutive rejection, capped at 8 s) and retry — the 'retries'");
    println!("column is the amplification that backoff keeps in check.");
}
