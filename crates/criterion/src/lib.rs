//! A minimal, self-contained benchmark harness exposing the subset of the
//! `criterion` crate's API that this workspace uses.
//!
//! The real `criterion` crate cannot be fetched in offline environments.
//! This stand-in keeps the same surface — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `Bencher::iter`/`iter_batched`, `Throughput`, `BatchSize` — so benches
//! compile and run unchanged. It performs a short calibrated timing loop and
//! prints mean wall-clock time per iteration (plus derived throughput); it
//! does no statistical analysis, outlier rejection, or HTML reporting.

use std::time::{Duration, Instant};

/// How many measured samples each benchmark takes.
const DEFAULT_SAMPLE_SIZE: usize = 20;

/// Target wall-clock budget per benchmark (all samples together).
const TARGET_TOTAL: Duration = Duration::from_millis(400);

/// Per-element scaling hint for reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`]; only the API shape is
/// honored — every variant re-runs the setup per measured batch.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state; batches may be large.
    SmallInput,
    /// Large per-iteration state; batches stay small.
    LargeInput,
    /// Setup re-runs for every single iteration.
    PerIteration,
}

/// Top-level benchmark context handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput hint used to derive elements/bytes per second.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets how many samples to measure per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: TARGET_TOTAL / self.sample_size.max(1) as u32,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        // Warm-up pass (also sizes the measurement loop).
        f(&mut b);
        let mut total_iters = 0u64;
        let mut total_time = Duration::ZERO;
        for _ in 0..self.sample_size {
            b.iters = 0;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            total_iters += b.iters;
            total_time += b.elapsed;
        }
        let per_iter_ns = if total_iters == 0 {
            0.0
        } else {
            total_time.as_nanos() as f64 / total_iters as f64
        };
        let thrpt = match self.throughput {
            Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
                format!("  thrpt: {:.2} Melem/s", n as f64 * 1e3 / per_iter_ns)
            }
            Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
                format!(
                    "  thrpt: {:.2} MiB/s",
                    n as f64 * 1e9 / per_iter_ns / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "{}/{:<28} time: {:>12.1} ns/iter  ({} iters){}",
            self.name, id, per_iter_ns, total_iters, thrpt
        );
        self
    }

    /// Ends the group (upstream renders reports here; we need do nothing).
    pub fn finish(self) {}
}

/// Measurement driver passed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` within this sample's budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        loop {
            std::hint::black_box(routine());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget || self.iters >= 1_000_000 {
                self.elapsed = elapsed;
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
            if self.elapsed >= self.budget || self.iters >= 1_000_000 {
                break;
            }
        }
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut calls = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(1);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
