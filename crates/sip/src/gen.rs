//! Builders for the benchmark's message flows.
//!
//! These construct the exact messages of the paper's workload (§2): the
//! registration phase, then calls consisting of an **invite transaction**
//! (INVITE → 100 Trying → 180 Ringing → 200 OK → ACK) and a **bye
//! transaction** (BYE → 200 OK), all flowing through the proxy.

use crate::msg::{Method, NameAddr, SipMessage, SipUri, StartLine, StatusCode, Via};

/// The RFC 3261 branch magic cookie every transaction id starts with.
pub const BRANCH_COOKIE: &str = "z9hG4bK";

/// One endpoint of a call (a simulated phone).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallParty {
    /// SIP user name.
    pub user: String,
    /// `host:port` the phone sends from (Via `sent-by` and Contact host).
    pub sent_by: String,
}

impl CallParty {
    /// Builds a party.
    pub fn new(user: impl Into<String>, sent_by: impl Into<String>) -> Self {
        CallParty {
            user: user.into(),
            sent_by: sent_by.into(),
        }
    }

    /// The party's address-of-record within `domain`.
    pub fn aor(&self, domain: &str) -> SipUri {
        SipUri::new(self.user.clone(), domain.to_string())
    }

    /// The party's contact URI (directly reachable address).
    pub fn contact(&self) -> SipUri {
        SipUri::new(self.user.clone(), self.sent_by.clone())
    }
}

/// A small default body standing in for SDP, sized like a real offer.
fn fake_sdp(user: &str) -> Vec<u8> {
    format!(
        "v=0\r\no=- 3894 3894 IN IP4 {user}.invalid\r\ns=call\r\n\
         c=IN IP4 10.0.0.1\r\nt=0 0\r\nm=audio 49170 RTP/AVP 0\r\na=rtpmap:0 PCMU/8000\r\n"
    )
    .into_bytes()
}

/// Builds a REGISTER request binding `party`'s contact in `domain`.
pub fn register(
    party: &CallParty,
    domain: &str,
    cseq: u32,
    branch: &str,
    transport: &str,
) -> SipMessage {
    SipMessage {
        start: StartLine::Request {
            method: Method::Register,
            uri: SipUri::new(party.user.clone(), domain.to_string()),
        },
        vias: vec![Via::new(transport, party.sent_by.clone(), branch)],
        from: NameAddr::with_tag(party.aor(domain), format!("rt-{}", party.user)),
        to: NameAddr::new(party.aor(domain)),
        call_id: format!("reg-{}@{}", party.user, party.sent_by),
        cseq,
        cseq_method: Method::Register,
        contact: Some(party.contact()),
        max_forwards: 70,
        expires: Some(3600),
        retry_after: None,
        extra: vec![],
        body: vec![],
    }
}

/// Builds the INVITE opening a call (CSeq 1).
pub fn invite(
    caller: &CallParty,
    callee: &CallParty,
    domain: &str,
    call_id: &str,
    branch: &str,
    transport: &str,
) -> SipMessage {
    SipMessage {
        start: StartLine::Request {
            method: Method::Invite,
            uri: callee.aor(domain),
        },
        vias: vec![Via::new(transport, caller.sent_by.clone(), branch)],
        from: NameAddr::with_tag(caller.aor(domain), format!("ft-{}", caller.user)),
        to: NameAddr::new(callee.aor(domain)),
        call_id: call_id.to_string(),
        cseq: 1,
        cseq_method: Method::Invite,
        contact: Some(caller.contact()),
        max_forwards: 70,
        expires: None,
        retry_after: None,
        extra: vec![],
        body: fake_sdp(&caller.user),
    }
}

/// Builds the ACK for a 2xx answer (CSeq 1, its own transaction).
pub fn ack(
    caller: &CallParty,
    callee: &CallParty,
    domain: &str,
    call_id: &str,
    to_tag: &str,
    branch: &str,
    transport: &str,
) -> SipMessage {
    SipMessage {
        start: StartLine::Request {
            method: Method::Ack,
            uri: callee.aor(domain),
        },
        vias: vec![Via::new(transport, caller.sent_by.clone(), branch)],
        from: NameAddr::with_tag(caller.aor(domain), format!("ft-{}", caller.user)),
        to: NameAddr::with_tag(callee.aor(domain), to_tag),
        call_id: call_id.to_string(),
        cseq: 1,
        cseq_method: Method::Ack,
        contact: None,
        max_forwards: 70,
        expires: None,
        retry_after: None,
        extra: vec![],
        body: vec![],
    }
}

/// Builds the CANCEL abandoning a ringing call. Per RFC 3261 §9.1 it
/// matches the INVITE it cancels: same Request-URI, Call-ID, From, To
/// (no tag yet), CSeq number — and, crucially, the *same branch*.
pub fn cancel(
    caller: &CallParty,
    callee: &CallParty,
    domain: &str,
    call_id: &str,
    invite_branch: &str,
    transport: &str,
) -> SipMessage {
    SipMessage {
        start: StartLine::Request {
            method: Method::Cancel,
            uri: callee.aor(domain),
        },
        vias: vec![Via::new(transport, caller.sent_by.clone(), invite_branch)],
        from: NameAddr::with_tag(caller.aor(domain), format!("ft-{}", caller.user)),
        to: NameAddr::new(callee.aor(domain)),
        call_id: call_id.to_string(),
        cseq: 1,
        cseq_method: Method::Cancel,
        contact: None,
        max_forwards: 70,
        expires: None,
        retry_after: None,
        extra: vec![],
        body: vec![],
    }
}

/// Builds the BYE ending a call (CSeq 2, sent by the caller here, matching
/// the paper's workload where the same phone initiates and terminates).
pub fn bye(
    caller: &CallParty,
    callee: &CallParty,
    domain: &str,
    call_id: &str,
    to_tag: &str,
    branch: &str,
    transport: &str,
) -> SipMessage {
    SipMessage {
        start: StartLine::Request {
            method: Method::Bye,
            uri: callee.aor(domain),
        },
        vias: vec![Via::new(transport, caller.sent_by.clone(), branch)],
        from: NameAddr::with_tag(caller.aor(domain), format!("ft-{}", caller.user)),
        to: NameAddr::with_tag(callee.aor(domain), to_tag),
        call_id: call_id.to_string(),
        cseq: 2,
        cseq_method: Method::Bye,
        contact: None,
        max_forwards: 70,
        expires: None,
        retry_after: None,
        extra: vec![],
        body: vec![],
    }
}

/// Builds a response to `request` per RFC 3261 §8.2.6: the Via stack,
/// `From`, `Call-ID`, and `CSeq` are copied; `To` gains `to_tag` if given.
pub fn response(
    code: StatusCode,
    request: &SipMessage,
    to_tag: Option<&str>,
    contact: Option<SipUri>,
) -> SipMessage {
    let mut to = request.to.clone();
    if let Some(tag) = to_tag {
        if to.tag.is_none() {
            to.tag = Some(tag.to_string());
        }
    }
    let body = if code.is_success() && request.cseq_method == Method::Invite {
        fake_sdp(&to.uri.user)
    } else {
        vec![]
    };
    SipMessage {
        start: StartLine::Response { code },
        vias: request.vias.clone(),
        from: request.from.clone(),
        to,
        call_id: request.call_id.clone(),
        cseq: request.cseq,
        cseq_method: request.cseq_method,
        contact,
        max_forwards: 70,
        expires: request.expires,
        retry_after: None,
        extra: vec![],
        body,
    }
}

/// Builds the overload-shedding reply: `503 Service Unavailable` with a
/// `Retry-After` header telling the upstream to back off `retry_after`
/// seconds before trying again (RFC 3261 §21.5.4).
pub fn service_unavailable(request: &SipMessage, retry_after: u32) -> SipMessage {
    let mut resp = response(StatusCode::SERVICE_UNAVAILABLE, request, None, None);
    resp.retry_after = Some(retry_after);
    resp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_message;

    fn parties() -> (CallParty, CallParty) {
        (
            CallParty::new("alice", "h1:40001"),
            CallParty::new("bob", "h2:40002"),
        )
    }

    #[test]
    fn register_shape() {
        let (alice, _) = parties();
        let msg = register(&alice, "proxy.lab", 1, "z9hG4bKr1", "UDP");
        assert_eq!(msg.method(), Some(Method::Register));
        assert_eq!(msg.expires, Some(3600));
        assert_eq!(msg.contact.as_ref().unwrap().host, "h1:40001");
        // Round-trips through the wire.
        assert_eq!(parse_message(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn invite_shape_and_size_is_realistic() {
        let (alice, bob) = parties();
        let msg = invite(&alice, &bob, "proxy.lab", "call-1", "z9hG4bKi1", "UDP");
        assert_eq!(msg.cseq, 1);
        assert!(!msg.body.is_empty(), "INVITE carries an SDP offer");
        let wire = msg.to_bytes();
        assert!(
            (300..1200).contains(&wire.len()),
            "INVITE should be a realistic size, got {}",
            wire.len()
        );
        assert_eq!(parse_message(&wire).unwrap(), msg);
    }

    #[test]
    fn call_flow_messages_share_dialog_ids() {
        let (alice, bob) = parties();
        let inv = invite(&alice, &bob, "d", "call-7", "z9hG4bKa", "TCP");
        let ack = ack(&alice, &bob, "d", "call-7", "bt-bob", "z9hG4bKb", "TCP");
        let bye = bye(&alice, &bob, "d", "call-7", "bt-bob", "z9hG4bKc", "TCP");
        assert_eq!(inv.call_id, ack.call_id);
        assert_eq!(ack.call_id, bye.call_id);
        assert_eq!(inv.from, ack.from);
        assert_eq!(bye.cseq, 2);
        assert_eq!(ack.to.tag.as_deref(), Some("bt-bob"));
        // Each transaction gets its own branch.
        assert_ne!(inv.branch(), ack.branch());
        assert_ne!(ack.branch(), bye.branch());
    }

    #[test]
    fn response_copies_transaction_identity() {
        let (alice, bob) = parties();
        let inv = invite(&alice, &bob, "d", "call-2", "z9hG4bKx", "UDP");
        let ringing = response(StatusCode::RINGING, &inv, Some("bt1"), None);
        assert_eq!(ringing.status(), Some(StatusCode::RINGING));
        assert_eq!(ringing.vias, inv.vias);
        assert_eq!(ringing.call_id, inv.call_id);
        assert_eq!(ringing.cseq, inv.cseq);
        assert_eq!(ringing.cseq_method, Method::Invite);
        assert_eq!(ringing.to.tag.as_deref(), Some("bt1"));
        assert!(ringing.body.is_empty(), "1xx carries no answer");
        let ok = response(StatusCode::OK, &inv, Some("bt1"), Some(bob.contact()));
        assert!(!ok.body.is_empty(), "2xx to INVITE carries an SDP answer");
        assert_eq!(parse_message(&ok.to_bytes()).unwrap(), ok);
    }

    #[test]
    fn service_unavailable_carries_retry_after() {
        let (alice, bob) = parties();
        let inv = invite(&alice, &bob, "d", "call-3", "z9hG4bKz", "UDP");
        let resp = service_unavailable(&inv, 7);
        assert_eq!(resp.status(), Some(StatusCode::SERVICE_UNAVAILABLE));
        assert_eq!(resp.retry_after, Some(7));
        assert_eq!(resp.vias, inv.vias, "transaction identity preserved");
        assert!(resp.body.is_empty(), "rejections carry no SDP");
        assert_eq!(parse_message(&resp.to_bytes()).unwrap(), resp);
    }

    #[test]
    fn response_does_not_overwrite_existing_to_tag() {
        let (alice, bob) = parties();
        let bye = bye(&alice, &bob, "d", "c", "orig-tag", "z9hG4bKy", "UDP");
        let ok = response(StatusCode::OK, &bye, Some("new-tag"), None);
        assert_eq!(ok.to.tag.as_deref(), Some("orig-tag"));
    }
}
