//! The SIP message model: methods, status codes, URIs, headers, messages.
//!
//! This is the subset of RFC 3261 a stateful proxy actually routes on — the
//! same headers OpenSER touches on its hot path: `Via` (with the `branch`
//! transaction id), `From`/`To` (with tags), `Call-ID`, `CSeq`, `Contact`,
//! `Max-Forwards`, `Expires`, and `Content-Length` (which TCP framing
//! depends on). Everything else round-trips through `extra` headers.

use std::fmt;

/// A SIP request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Method {
    /// Initiates a session (a phone call).
    Invite,
    /// Acknowledges a final response to an INVITE.
    Ack,
    /// Terminates a session.
    Bye,
    /// Cancels a pending INVITE.
    Cancel,
    /// Binds a contact address with the registrar.
    Register,
    /// Capability query / keepalive.
    Options,
}

impl Method {
    /// Canonical wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Invite => "INVITE",
            Method::Ack => "ACK",
            Method::Bye => "BYE",
            Method::Cancel => "CANCEL",
            Method::Register => "REGISTER",
            Method::Options => "OPTIONS",
        }
    }

    /// Parses a wire token (case-sensitive, per RFC 3261).
    pub fn from_token(s: &str) -> Option<Method> {
        Some(match s {
            "INVITE" => Method::Invite,
            "ACK" => Method::Ack,
            "BYE" => Method::Bye,
            "CANCEL" => Method::Cancel,
            "REGISTER" => Method::Register,
            "OPTIONS" => Method::Options,
            _ => return None,
        })
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A SIP response status code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StatusCode(pub u16);

impl StatusCode {
    /// 100 Trying — the stateful proxy's receipt acknowledgment.
    pub const TRYING: StatusCode = StatusCode(100);
    /// 180 Ringing.
    pub const RINGING: StatusCode = StatusCode(180);
    /// 200 OK.
    pub const OK: StatusCode = StatusCode(200);
    /// 404 Not Found — callee not registered.
    pub const NOT_FOUND: StatusCode = StatusCode(404);
    /// 408 Request Timeout — transaction timer expired.
    pub const REQUEST_TIMEOUT: StatusCode = StatusCode(408);
    /// 481 Call/Transaction Does Not Exist.
    pub const NO_TRANSACTION: StatusCode = StatusCode(481);
    /// 486 Busy Here.
    pub const BUSY_HERE: StatusCode = StatusCode(486);
    /// 487 Request Terminated — the INVITE's answer after a CANCEL.
    pub const REQUEST_TERMINATED: StatusCode = StatusCode(487);
    /// 500 Server Internal Error.
    pub const SERVER_ERROR: StatusCode = StatusCode(500);
    /// 503 Service Unavailable — overload shedding.
    pub const SERVICE_UNAVAILABLE: StatusCode = StatusCode(503);

    /// True for 1xx responses.
    pub fn is_provisional(self) -> bool {
        (100..200).contains(&self.0)
    }

    /// True for 2xx–6xx responses.
    pub fn is_final(self) -> bool {
        self.0 >= 200
    }

    /// True for 2xx responses.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }

    /// The default reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            100 => "Trying",
            180 => "Ringing",
            200 => "OK",
            404 => "Not Found",
            408 => "Request Timeout",
            481 => "Call/Transaction Does Not Exist",
            486 => "Busy Here",
            487 => "Request Terminated",
            500 => "Server Internal Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

impl fmt::Display for StatusCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.0, self.reason())
    }
}

/// A `sip:user@host` URI.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SipUri {
    /// The user part.
    pub user: String,
    /// The host part (domain or address literal).
    pub host: String,
}

impl SipUri {
    /// Builds a URI from its parts.
    pub fn new(user: impl Into<String>, host: impl Into<String>) -> Self {
        SipUri {
            user: user.into(),
            host: host.into(),
        }
    }

    /// Parses `sip:user@host`.
    pub fn parse(s: &str) -> Option<SipUri> {
        let rest = s.strip_prefix("sip:")?;
        let (user, host) = rest.split_once('@')?;
        if user.is_empty() || host.is_empty() {
            return None;
        }
        Some(SipUri::new(user, host))
    }
}

impl fmt::Display for SipUri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sip:{}@{}", self.user, self.host)
    }
}

/// A `From`/`To` header value: URI plus optional `tag` parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameAddr {
    /// The address.
    pub uri: SipUri,
    /// The dialog tag, if assigned.
    pub tag: Option<String>,
}

impl NameAddr {
    /// An address without a tag.
    pub fn new(uri: SipUri) -> Self {
        NameAddr { uri, tag: None }
    }

    /// An address with a tag.
    pub fn with_tag(uri: SipUri, tag: impl Into<String>) -> Self {
        NameAddr {
            uri,
            tag: Some(tag.into()),
        }
    }
}

impl fmt::Display for NameAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.uri)?;
        if let Some(tag) = &self.tag {
            write!(f, ";tag={tag}")?;
        }
        Ok(())
    }
}

/// One `Via` header: the transport hop trace with the `branch` transaction
/// id. Proxies push their Via when forwarding requests and pop it when
/// forwarding responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Via {
    /// Transport token: "UDP", "TCP", or "SCTP".
    pub transport: String,
    /// `host:port` this hop sent from.
    pub sent_by: String,
    /// The branch parameter (RFC 3261 magic-cookie transaction id).
    pub branch: String,
}

impl Via {
    /// Builds a Via hop.
    pub fn new(
        transport: impl Into<String>,
        sent_by: impl Into<String>,
        branch: impl Into<String>,
    ) -> Self {
        Via {
            transport: transport.into(),
            sent_by: sent_by.into(),
            branch: branch.into(),
        }
    }
}

impl fmt::Display for Via {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SIP/2.0/{} {};branch={}",
            self.transport, self.sent_by, self.branch
        )
    }
}

/// The first line of a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StartLine {
    /// `METHOD uri SIP/2.0`
    Request {
        /// The method.
        method: Method,
        /// The request URI.
        uri: SipUri,
    },
    /// `SIP/2.0 code reason`
    Response {
        /// The status code.
        code: StatusCode,
    },
}

/// A parsed SIP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SipMessage {
    /// Request or response line.
    pub start: StartLine,
    /// Via stack, topmost first.
    pub vias: Vec<Via>,
    /// `From` (the caller in a dialog).
    pub from: NameAddr,
    /// `To` (the callee in a dialog).
    pub to: NameAddr,
    /// `Call-ID`.
    pub call_id: String,
    /// `CSeq` sequence number.
    pub cseq: u32,
    /// `CSeq` method.
    pub cseq_method: Method,
    /// `Contact`, where the sender can be reached directly.
    pub contact: Option<SipUri>,
    /// `Max-Forwards` hop budget.
    pub max_forwards: u32,
    /// `Expires` (registrations).
    pub expires: Option<u32>,
    /// `Retry-After` in seconds (RFC 3261 §20.33): carried on 503
    /// Service Unavailable when the proxy sheds load, telling the
    /// upstream how long to back off before retrying.
    pub retry_after: Option<u32>,
    /// Headers this model does not interpret, preserved in order.
    pub extra: Vec<(String, String)>,
    /// The body (SDP in real calls; opaque bytes here).
    pub body: Vec<u8>,
}

impl SipMessage {
    /// True if this is a request.
    pub fn is_request(&self) -> bool {
        matches!(self.start, StartLine::Request { .. })
    }

    /// The request method, if a request.
    pub fn method(&self) -> Option<Method> {
        match &self.start {
            StartLine::Request { method, .. } => Some(*method),
            StartLine::Response { .. } => None,
        }
    }

    /// The status code, if a response.
    pub fn status(&self) -> Option<StatusCode> {
        match &self.start {
            StartLine::Response { code } => Some(*code),
            StartLine::Request { .. } => None,
        }
    }

    /// The topmost Via's branch — the transaction id for matching.
    pub fn branch(&self) -> Option<&str> {
        self.vias.first().map(|v| v.branch.as_str())
    }

    /// Serializes to wire bytes, computing `Content-Length` from the body.
    pub fn to_bytes(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut head = String::with_capacity(256 + self.body.len());
        match &self.start {
            StartLine::Request { method, uri } => {
                let _ = writeln!(head, "{method} {uri} SIP/2.0\r");
            }
            StartLine::Response { code } => {
                let _ = writeln!(head, "SIP/2.0 {code}\r");
            }
        }
        for via in &self.vias {
            let _ = writeln!(head, "Via: {via}\r");
        }
        let _ = writeln!(head, "From: {}\r", self.from);
        let _ = writeln!(head, "To: {}\r", self.to);
        let _ = writeln!(head, "Call-ID: {}\r", self.call_id);
        let _ = writeln!(head, "CSeq: {} {}\r", self.cseq, self.cseq_method);
        if let Some(contact) = &self.contact {
            let _ = writeln!(head, "Contact: <{contact}>\r");
        }
        let _ = writeln!(head, "Max-Forwards: {}\r", self.max_forwards);
        if let Some(expires) = self.expires {
            let _ = writeln!(head, "Expires: {expires}\r");
        }
        if let Some(secs) = self.retry_after {
            let _ = writeln!(head, "Retry-After: {secs}\r");
        }
        for (name, value) in &self.extra {
            let _ = writeln!(head, "{name}: {value}\r");
        }
        let _ = writeln!(head, "Content-Length: {}\r", self.body.len());
        let _ = writeln!(head, "\r");
        let mut out = head.into_bytes();
        out.extend_from_slice(&self.body);
        out
    }
}

impl fmt::Display for SipMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.start {
            StartLine::Request { method, uri } => {
                write!(f, "{method} {uri} (cseq {})", self.cseq)
            }
            StartLine::Response { code } => {
                write!(f, "{code} for {} (cseq {})", self.cseq_method, self.cseq)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_tokens_roundtrip() {
        for m in [
            Method::Invite,
            Method::Ack,
            Method::Bye,
            Method::Cancel,
            Method::Register,
            Method::Options,
        ] {
            assert_eq!(Method::from_token(m.as_str()), Some(m));
        }
        assert_eq!(Method::from_token("invite"), None, "case-sensitive");
        assert_eq!(Method::from_token("SUBSCRIBE"), None);
    }

    #[test]
    fn status_classification() {
        assert!(StatusCode::TRYING.is_provisional());
        assert!(StatusCode::RINGING.is_provisional());
        assert!(!StatusCode::OK.is_provisional());
        assert!(StatusCode::OK.is_final());
        assert!(StatusCode::OK.is_success());
        assert!(StatusCode::NOT_FOUND.is_final());
        assert!(!StatusCode::NOT_FOUND.is_success());
        assert_eq!(StatusCode::OK.to_string(), "200 OK");
    }

    #[test]
    fn uri_parse_and_display() {
        let u = SipUri::parse("sip:alice@rice.edu").unwrap();
        assert_eq!(u.user, "alice");
        assert_eq!(u.host, "rice.edu");
        assert_eq!(u.to_string(), "sip:alice@rice.edu");
        assert_eq!(SipUri::parse("sip:@host"), None);
        assert_eq!(SipUri::parse("sip:user@"), None);
        assert_eq!(SipUri::parse("http://x"), None);
        assert_eq!(SipUri::parse("alice@rice.edu"), None);
    }

    #[test]
    fn name_addr_display() {
        let plain = NameAddr::new(SipUri::new("bob", "h1"));
        assert_eq!(plain.to_string(), "<sip:bob@h1>");
        let tagged = NameAddr::with_tag(SipUri::new("bob", "h1"), "xyz");
        assert_eq!(tagged.to_string(), "<sip:bob@h1>;tag=xyz");
    }

    #[test]
    fn via_display() {
        let v = Via::new("UDP", "h2:5060", "z9hG4bK42");
        assert_eq!(v.to_string(), "SIP/2.0/UDP h2:5060;branch=z9hG4bK42");
    }

    #[test]
    fn serialized_request_shape() {
        let msg = SipMessage {
            start: StartLine::Request {
                method: Method::Invite,
                uri: SipUri::new("bob", "proxy"),
            },
            vias: vec![Via::new("TCP", "caller:5060", "z9hG4bK1")],
            from: NameAddr::with_tag(SipUri::new("alice", "caller"), "a1"),
            to: NameAddr::new(SipUri::new("bob", "proxy")),
            call_id: "call-1@caller".into(),
            cseq: 1,
            cseq_method: Method::Invite,
            contact: Some(SipUri::new("alice", "caller")),
            max_forwards: 70,
            expires: None,
            retry_after: None,
            extra: vec![("User-Agent".into(), "siperf/0.1".into())],
            body: b"v=0 fake sdp".to_vec(),
        };
        let text = String::from_utf8(msg.to_bytes()).unwrap();
        assert!(text.starts_with("INVITE sip:bob@proxy SIP/2.0\r\n"));
        assert!(text.contains("Via: SIP/2.0/TCP caller:5060;branch=z9hG4bK1\r\n"));
        assert!(text.contains("From: <sip:alice@caller>;tag=a1\r\n"));
        assert!(text.contains("CSeq: 1 INVITE\r\n"));
        assert!(text.contains("User-Agent: siperf/0.1\r\n"));
        assert!(text.contains("Content-Length: 12\r\n"));
        assert!(text.ends_with("\r\n\r\nv=0 fake sdp"));
        assert_eq!(msg.branch(), Some("z9hG4bK1"));
        assert!(msg.is_request());
        assert_eq!(msg.method(), Some(Method::Invite));
        assert_eq!(msg.status(), None);
    }

    #[test]
    fn serialized_response_shape() {
        let msg = SipMessage {
            start: StartLine::Response {
                code: StatusCode::RINGING,
            },
            vias: vec![],
            from: NameAddr::new(SipUri::new("a", "h")),
            to: NameAddr::new(SipUri::new("b", "h")),
            call_id: "c".into(),
            cseq: 2,
            cseq_method: Method::Invite,
            contact: None,
            max_forwards: 70,
            expires: None,
            retry_after: None,
            extra: vec![],
            body: vec![],
        };
        let text = String::from_utf8(msg.to_bytes()).unwrap();
        assert!(text.starts_with("SIP/2.0 180 Ringing\r\n"));
        assert!(text.contains("Content-Length: 0\r\n"));
        assert_eq!(msg.status(), Some(StatusCode::RINGING));
        assert_eq!(msg.branch(), None);
    }
}
