//! Message framing over byte streams.
//!
//! TCP has no message boundaries: a SIP message can arrive split across
//! segments or coalesced with its neighbours. This is exactly why OpenSER
//! must dedicate a single worker to each TCP connection (§3.1 — "otherwise,
//! a message might be split across two worker processes"). The
//! [`StreamFramer`] reassembles a connection's byte stream into complete
//! messages using the `Content-Length` header, as RFC 3261 §18.3 requires.

use crate::parse::header_end;

/// A framing failure; the connection should be dropped, as OpenSER does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The header section exceeds the sanity limit without terminating.
    HeaderTooLong {
        /// Bytes buffered so far.
        buffered: usize,
    },
    /// The headers contain no parseable `Content-Length`.
    MissingContentLength,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::HeaderTooLong { buffered } => {
                write!(
                    f,
                    "header section exceeds limit ({buffered} bytes buffered)"
                )
            }
            FrameError::MissingContentLength => {
                write!(f, "stream message lacks content-length")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Maximum bytes of un-terminated header we will buffer before declaring
/// the stream corrupt.
const MAX_HEADER: usize = 16 * 1024;

/// Reassembles SIP messages from an ordered byte stream.
#[derive(Debug, Default)]
pub struct StreamFramer {
    buf: Vec<u8>,
    read_at: usize,
}

impl StreamFramer {
    /// Creates an empty framer (one per TCP connection).
    pub fn new() -> Self {
        StreamFramer::default()
    }

    /// Appends stream bytes as they arrive from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so long-lived connections do not grow forever.
        if self.read_at > 0 && self.read_at == self.buf.len() {
            self.buf.clear();
            self.read_at = 0;
        } else if self.read_at > 64 * 1024 {
            self.buf.drain(..self.read_at);
            self.read_at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered and not yet framed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.read_at
    }

    /// Extracts the next complete message's bytes, if one is fully
    /// buffered.
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the stream cannot possibly frame (oversized or
    /// length-less headers); the caller should drop the connection.
    pub fn next_message(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let window = &self.buf[self.read_at..];
        let Some(head_len) = header_end(window) else {
            if window.len() > MAX_HEADER {
                return Err(FrameError::HeaderTooLong {
                    buffered: window.len(),
                });
            }
            return Ok(None);
        };
        let body_len =
            scan_content_length(&window[..head_len]).ok_or(FrameError::MissingContentLength)?;
        let total = head_len + body_len;
        if window.len() < total {
            return Ok(None);
        }
        let msg = window[..total].to_vec();
        self.read_at += total;
        Ok(Some(msg))
    }

    /// Drains every complete message currently buffered.
    ///
    /// # Errors
    ///
    /// Stops at the first framing error; messages already extracted are
    /// kept by the caller.
    pub fn drain_messages(&mut self) -> Result<Vec<Vec<u8>>, FrameError> {
        let mut out = Vec::new();
        while let Some(msg) = self.next_message()? {
            out.push(msg);
        }
        Ok(out)
    }
}

/// Finds `Content-Length` (or compact `l`) in a raw header section without
/// a full parse — the cheap pre-scan a stream transport performs.
fn scan_content_length(head: &[u8]) -> Option<usize> {
    let text = std::str::from_utf8(head).ok()?;
    for line in text.split("\r\n").skip(1) {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        if name == "content-length" || name == "l" {
            return value.trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, CallParty};
    use crate::msg::Method;
    use crate::parse::parse_message;

    fn sample_bytes(n: u32) -> Vec<u8> {
        let caller = CallParty::new("alice", "h1:5060");
        let callee = CallParty::new("bob", "h2:5060");
        let msg = gen::invite(
            &caller,
            &callee,
            "proxy",
            &format!("call-{n}"),
            &format!("z9hG4bK{n}"),
            "TCP",
        );
        msg.to_bytes()
    }

    #[test]
    fn whole_message_in_one_push() {
        let mut f = StreamFramer::new();
        let bytes = sample_bytes(1);
        f.push(&bytes);
        let got = f.next_message().unwrap().unwrap();
        assert_eq!(got, bytes);
        assert_eq!(f.next_message().unwrap(), None);
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn message_split_byte_by_byte() {
        let mut f = StreamFramer::new();
        let bytes = sample_bytes(2);
        for b in &bytes {
            assert_eq!(f.next_message().unwrap(), None);
            f.push(std::slice::from_ref(b));
        }
        assert_eq!(f.next_message().unwrap().unwrap(), bytes);
    }

    #[test]
    fn coalesced_messages_split_correctly() {
        let mut f = StreamFramer::new();
        let a = sample_bytes(1);
        let b = sample_bytes(2);
        let c = sample_bytes(3);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        f.push(&all);
        let msgs = f.drain_messages().unwrap();
        assert_eq!(msgs, vec![a, b, c]);
    }

    #[test]
    fn framed_messages_parse() {
        let mut f = StreamFramer::new();
        f.push(&sample_bytes(9));
        let raw = f.next_message().unwrap().unwrap();
        let msg = parse_message(&raw).unwrap();
        assert_eq!(msg.method(), Some(Method::Invite));
        assert_eq!(msg.call_id, "call-9");
    }

    #[test]
    fn missing_content_length_is_fatal() {
        let mut f = StreamFramer::new();
        f.push(b"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/TCP c:1;branch=z9hG4bK\r\n\r\n");
        assert_eq!(f.next_message(), Err(FrameError::MissingContentLength));
    }

    #[test]
    fn oversized_headers_are_fatal() {
        let mut f = StreamFramer::new();
        f.push(&vec![b'x'; MAX_HEADER + 1]);
        assert!(matches!(
            f.next_message(),
            Err(FrameError::HeaderTooLong { .. })
        ));
    }

    #[test]
    fn buffer_compacts_after_drain() {
        let mut f = StreamFramer::new();
        for i in 0..50 {
            f.push(&sample_bytes(i));
            f.next_message().unwrap().unwrap();
        }
        f.push(b"");
        assert_eq!(f.buffered(), 0);
    }
}
