//! Transaction-layer timing and matching (RFC 3261 §17).
//!
//! A *stateful* proxy takes responsibility for reliable delivery the moment
//! it answers an INVITE with 100 Trying (§2 of the paper): it must absorb
//! retransmissions from the caller and retransmit the forwarded request
//! itself when the transport is unreliable. This module provides the pure
//! pieces — transaction keys, the RFC timer constants, and the
//! retransmission schedule — which the proxy's shared transaction table and
//! timer process build on.

use siperf_simcore::time::{SimDuration, SimTime};

use crate::msg::{Method, SipMessage};

/// RFC 3261 T1: RTT estimate, the base retransmission interval.
pub const T1: SimDuration = SimDuration::from_millis(500);
/// RFC 3261 T2: cap on the retransmission interval for non-INVITE.
pub const T2: SimDuration = SimDuration::from_secs(4);
/// Timer B/F: transaction timeout, 64×T1.
pub const TIMEOUT: SimDuration = SimDuration::from_millis(64 * 500);

/// Identifies a transaction: the topmost Via branch plus the CSeq method
/// (RFC 3261 §17.2.3 — ACK matches the INVITE it acknowledges by branch;
/// our workload gives ACK its own branch, i.e. 2xx-ACK semantics).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnKey {
    /// The branch parameter of the topmost Via.
    pub branch: String,
    /// The method (responses use the CSeq method).
    pub method: Method,
}

impl TxnKey {
    /// Extracts the key from any message, if it carries a Via.
    pub fn of(msg: &SipMessage) -> Option<TxnKey> {
        let branch = msg.branch()?.to_string();
        let method = match msg.method() {
            Some(m) => m,
            None => msg.cseq_method,
        };
        Some(TxnKey { branch, method })
    }
}

/// Where a transaction stands, from the proxy's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Request forwarded; no response seen yet. Retransmissions run on an
    /// unreliable transport.
    Calling,
    /// A provisional response has been forwarded upstream.
    Proceeding,
    /// A final response has been forwarded; retransmissions of the request
    /// are answered from memory until the transaction is reaped.
    Completed,
}

/// What the transaction layer wants done after an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimerVerdict {
    /// Retransmit the stored request now; the next check is at `next`.
    Retransmit {
        /// When to look again.
        next: SimTime,
    },
    /// Give up: Timer B/F expired without a final response.
    TimedOut,
    /// Nothing due; look again at `next`.
    Wait {
        /// When to look again.
        next: SimTime,
    },
    /// Transaction finished; remove its timer.
    Done,
}

/// The retransmission clock for one forwarded request on an unreliable
/// transport: fires at T1, 2·T1, 4·T1 … (capped at T2 for non-INVITE)
/// until a final response or the 64·T1 deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetransClock {
    next_at: SimTime,
    interval: SimDuration,
    deadline: SimTime,
    cap: SimDuration,
    /// Retransmissions performed so far.
    pub count: u32,
    stopped: bool,
}

impl RetransClock {
    /// Starts the clock for a request sent at `sent_at`. INVITE
    /// transactions double without cap (Timer A); non-INVITE cap at T2
    /// (Timer E).
    pub fn new(sent_at: SimTime, method: Method) -> Self {
        RetransClock {
            next_at: sent_at + T1,
            interval: T1,
            deadline: sent_at + TIMEOUT,
            cap: if method == Method::Invite {
                TIMEOUT
            } else {
                T2
            },
            count: 0,
            stopped: false,
        }
    }

    /// A clock that never fires — used on reliable transports, where the
    /// transport retransmits and only Timer B's timeout applies.
    pub fn reliable(sent_at: SimTime) -> Self {
        RetransClock {
            next_at: sent_at + TIMEOUT,
            interval: TIMEOUT,
            deadline: sent_at + TIMEOUT,
            cap: TIMEOUT,
            count: 0,
            stopped: false,
        }
    }

    /// When this clock next needs attention.
    pub fn next_at(&self) -> SimTime {
        self.next_at
    }

    /// A final response arrived: no further retransmissions.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// True once [`RetransClock::stop`] has been called.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Advances the clock to `now` and reports what to do.
    pub fn check(&mut self, now: SimTime) -> TimerVerdict {
        if self.stopped {
            return TimerVerdict::Done;
        }
        if now >= self.deadline {
            return TimerVerdict::TimedOut;
        }
        if now < self.next_at {
            return TimerVerdict::Wait { next: self.next_at };
        }
        self.count += 1;
        self.interval = (self.interval * 2).min(self.cap);
        self.next_at = now + self.interval;
        if self.next_at > self.deadline {
            self.next_at = self.deadline;
        }
        TimerVerdict::Retransmit { next: self.next_at }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, CallParty};
    use crate::msg::StatusCode;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn key_matches_request_and_its_response() {
        let alice = CallParty::new("alice", "h1:1");
        let bob = CallParty::new("bob", "h2:2");
        let inv = gen::invite(&alice, &bob, "d", "c1", "z9hG4bKq", "UDP");
        let ok = gen::response(StatusCode::OK, &inv, Some("bt"), None);
        assert_eq!(TxnKey::of(&inv), TxnKey::of(&ok));
        let bye = gen::bye(&alice, &bob, "d", "c1", "bt", "z9hG4bKr", "UDP");
        assert_ne!(TxnKey::of(&inv), TxnKey::of(&bye));
    }

    #[test]
    fn key_requires_a_via() {
        let alice = CallParty::new("a", "h:1");
        let bob = CallParty::new("b", "h:2");
        let mut msg = gen::invite(&alice, &bob, "d", "c", "z9hG4bKv", "UDP");
        msg.vias.clear();
        assert_eq!(TxnKey::of(&msg), None);
    }

    #[test]
    fn invite_clock_doubles_without_cap() {
        let mut c = RetransClock::new(t(0), Method::Invite);
        assert_eq!(c.check(t(100)), TimerVerdict::Wait { next: t(500) });
        assert_eq!(c.check(t(500)), TimerVerdict::Retransmit { next: t(1500) });
        assert_eq!(c.check(t(1500)), TimerVerdict::Retransmit { next: t(3500) });
        assert_eq!(c.check(t(3500)), TimerVerdict::Retransmit { next: t(7500) });
        assert_eq!(c.count, 3);
    }

    #[test]
    fn non_invite_clock_caps_at_t2() {
        let mut c = RetransClock::new(t(0), Method::Bye);
        c.check(t(500));
        c.check(t(1500));
        c.check(t(3500));
        // Interval would be 8s; capped to 4s.
        assert_eq!(
            c.check(t(7500)),
            TimerVerdict::Retransmit { next: t(11500) }
        );
    }

    #[test]
    fn clock_times_out_at_64_t1() {
        let mut c = RetransClock::new(t(0), Method::Invite);
        assert_eq!(c.check(t(32_000)), TimerVerdict::TimedOut);
    }

    #[test]
    fn stop_silences_clock() {
        let mut c = RetransClock::new(t(0), Method::Invite);
        c.check(t(500));
        c.stop();
        assert!(c.is_stopped());
        assert_eq!(c.check(t(10_000)), TimerVerdict::Done);
    }

    #[test]
    fn reliable_clock_only_times_out() {
        let mut c = RetransClock::reliable(t(0));
        assert_eq!(c.check(t(1_000)), TimerVerdict::Wait { next: t(32_000) });
        assert_eq!(c.check(t(32_000)), TimerVerdict::TimedOut);
    }

    #[test]
    fn retransmissions_never_outlive_deadline() {
        let mut c = RetransClock::new(t(0), Method::Invite);
        let mut now = t(0);
        let mut fired = 0;
        loop {
            match c.check(now) {
                TimerVerdict::Retransmit { next } => {
                    fired += 1;
                    now = next;
                }
                TimerVerdict::Wait { next } => now = next,
                TimerVerdict::TimedOut => break,
                TimerVerdict::Done => unreachable!(),
            }
            assert!(fired < 20, "runaway retransmission");
        }
        // RFC: about 6 retransmissions fit in 64*T1 with doubling.
        assert!((5..=7).contains(&fired), "fired {fired}");
    }
}
