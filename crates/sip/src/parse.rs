//! The SIP message parser.
//!
//! Parsing is a real cost on a proxy's hot path — Cortes et al. found
//! parsing and string handling dominate SIP proxy CPU profiles — so this is
//! a genuine textual parser, not a stub: it handles case-insensitive header
//! names, RFC 3261 compact forms (`v`, `f`, `t`, `i`, `m`, `l`), display
//! names, header parameters, and `Content-Length`-delimited bodies. The
//! simulation charges calibrated CPU time per parse; the *code path* is the
//! real one.

use std::fmt;

use crate::msg::{Method, NameAddr, SipMessage, SipUri, StartLine, StatusCode, Via};

/// Why a buffer failed to parse as a SIP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The start line is not a valid request or status line.
    BadStartLine,
    /// The message is not valid UTF-8 in its header section.
    BadEncoding,
    /// A header line has no colon.
    BadHeader(String),
    /// A required header is missing.
    Missing(&'static str),
    /// A header value could not be interpreted.
    BadValue(&'static str),
    /// The body is shorter than `Content-Length` promised.
    BodyTooShort {
        /// Bytes promised by `Content-Length`.
        want: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// No blank line terminates the header section.
    NoHeaderTerminator,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadStartLine => write!(f, "malformed start line"),
            ParseError::BadEncoding => write!(f, "header section is not utf-8"),
            ParseError::BadHeader(line) => write!(f, "malformed header line: {line:?}"),
            ParseError::Missing(name) => write!(f, "missing required header {name}"),
            ParseError::BadValue(name) => write!(f, "malformed value for {name}"),
            ParseError::BodyTooShort { want, got } => {
                write!(f, "body too short: content-length {want}, got {got}")
            }
            ParseError::NoHeaderTerminator => write!(f, "no blank line after headers"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Finds the end of the header section (the `\r\n\r\n`), returning the
/// offset just past it. Used both here and by the TCP stream framer.
pub fn header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Expands a compact header name to its canonical form, lowercased.
fn canonical_name(raw: &str) -> String {
    let lower = raw.trim().to_ascii_lowercase();
    match lower.as_str() {
        "v" => "via".into(),
        "f" => "from".into(),
        "t" => "to".into(),
        "i" => "call-id".into(),
        "m" => "contact".into(),
        "l" => "content-length".into(),
        _ => lower,
    }
}

fn parse_start_line(line: &str) -> Result<StartLine, ParseError> {
    if let Some(rest) = line.strip_prefix("SIP/2.0 ") {
        let code_txt = rest.split(' ').next().ok_or(ParseError::BadStartLine)?;
        let code: u16 = code_txt.parse().map_err(|_| ParseError::BadStartLine)?;
        if !(100..700).contains(&code) {
            return Err(ParseError::BadStartLine);
        }
        return Ok(StartLine::Response {
            code: StatusCode(code),
        });
    }
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .and_then(Method::from_token)
        .ok_or(ParseError::BadStartLine)?;
    let uri = parts
        .next()
        .and_then(SipUri::parse)
        .ok_or(ParseError::BadStartLine)?;
    if parts.next() != Some("SIP/2.0") {
        return Err(ParseError::BadStartLine);
    }
    Ok(StartLine::Request { method, uri })
}

/// Parses `<sip:u@h>;tag=x`, `sip:u@h;tag=x`, or `Name <sip:u@h>;tag=x`.
fn parse_name_addr(value: &str, which: &'static str) -> Result<NameAddr, ParseError> {
    let value = value.trim();
    let (uri_part, params) = if let Some(open) = value.find('<') {
        let close = value[open..]
            .find('>')
            .map(|c| open + c)
            .ok_or(ParseError::BadValue(which))?;
        (&value[open + 1..close], &value[close + 1..])
    } else {
        match value.find(';') {
            Some(semi) => (&value[..semi], &value[semi..]),
            None => (value, ""),
        }
    };
    let uri = SipUri::parse(uri_part.trim()).ok_or(ParseError::BadValue(which))?;
    let mut tag = None;
    for param in params.split(';') {
        if let Some(t) = param.trim().strip_prefix("tag=") {
            tag = Some(t.to_string());
        }
    }
    Ok(NameAddr { uri, tag })
}

/// Parses `SIP/2.0/UDP host:port;branch=z9hG4bK…;other=params`.
fn parse_via(value: &str) -> Result<Via, ParseError> {
    let value = value.trim();
    let rest = value
        .strip_prefix("SIP/2.0/")
        .ok_or(ParseError::BadValue("Via"))?;
    let (transport, rest) = rest.split_once(' ').ok_or(ParseError::BadValue("Via"))?;
    let mut parts = rest.split(';');
    let sent_by = parts.next().unwrap_or("").trim().to_string();
    if sent_by.is_empty() {
        return Err(ParseError::BadValue("Via"));
    }
    let mut branch = String::new();
    for param in parts {
        if let Some(b) = param.trim().strip_prefix("branch=") {
            branch = b.to_string();
        }
    }
    if branch.is_empty() {
        return Err(ParseError::BadValue("Via"));
    }
    Ok(Via {
        transport: transport.to_string(),
        sent_by,
        branch,
    })
}

fn parse_cseq(value: &str) -> Result<(u32, Method), ParseError> {
    let (num, method) = value
        .trim()
        .split_once(' ')
        .ok_or(ParseError::BadValue("CSeq"))?;
    let seq: u32 = num.parse().map_err(|_| ParseError::BadValue("CSeq"))?;
    let method = Method::from_token(method.trim()).ok_or(ParseError::BadValue("CSeq"))?;
    Ok((seq, method))
}

fn parse_contact(value: &str) -> Result<SipUri, ParseError> {
    let value = value.trim();
    let inner = if let (Some(open), Some(close)) = (value.find('<'), value.rfind('>')) {
        &value[open + 1..close]
    } else {
        value
    };
    // Drop any URI parameters.
    let bare = inner.split(';').next().unwrap_or(inner);
    SipUri::parse(bare.trim()).ok_or(ParseError::BadValue("Contact"))
}

/// Parses one complete SIP message from `buf`.
///
/// `buf` must contain exactly the header section and at least
/// `Content-Length` bytes of body (extra trailing bytes are an error for
/// datagram transports; stream transports should frame with
/// [`crate::framer::StreamFramer`] first and hand in exact messages).
///
/// # Errors
///
/// Every malformation maps to a specific [`ParseError`]; a proxy counts
/// these and drops the message, as OpenSER does.
pub fn parse_message(buf: &[u8]) -> Result<SipMessage, ParseError> {
    let head_end = header_end(buf).ok_or(ParseError::NoHeaderTerminator)?;
    let head = std::str::from_utf8(&buf[..head_end - 4]).map_err(|_| ParseError::BadEncoding)?;
    let mut lines = head.split("\r\n");
    let start = parse_start_line(lines.next().ok_or(ParseError::BadStartLine)?)?;

    let mut vias = Vec::new();
    let mut from = None;
    let mut to = None;
    let mut call_id = None;
    let mut cseq = None;
    let mut contact = None;
    let mut max_forwards = 70u32;
    let mut expires = None;
    let mut retry_after = None;
    let mut content_length = None;
    let mut extra = Vec::new();

    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name_raw, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::BadHeader(line.to_string()))?;
        let name = canonical_name(name_raw);
        let value = value.trim();
        match name.as_str() {
            "via" => vias.push(parse_via(value)?),
            "from" => from = Some(parse_name_addr(value, "From")?),
            "to" => to = Some(parse_name_addr(value, "To")?),
            "call-id" => call_id = Some(value.to_string()),
            "cseq" => cseq = Some(parse_cseq(value)?),
            "contact" => contact = Some(parse_contact(value)?),
            "max-forwards" => {
                max_forwards = value
                    .parse()
                    .map_err(|_| ParseError::BadValue("Max-Forwards"))?;
            }
            "expires" => {
                expires = Some(value.parse().map_err(|_| ParseError::BadValue("Expires"))?);
            }
            "retry-after" => {
                // RFC 3261 §20.33 allows a comment and parameters
                // (`Retry-After: 5 (overload);duration=60`); the delta
                // seconds before them are all the shedding logic needs.
                let secs = value.split([' ', ';', '(']).next().unwrap_or("");
                retry_after = Some(
                    secs.parse()
                        .map_err(|_| ParseError::BadValue("Retry-After"))?,
                );
            }
            "content-length" => {
                content_length = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| ParseError::BadValue("Content-Length"))?,
                );
            }
            _ => extra.push((name_raw.trim().to_string(), value.to_string())),
        }
    }

    let want = content_length.ok_or(ParseError::Missing("Content-Length"))?;
    let body = &buf[head_end..];
    if body.len() < want {
        return Err(ParseError::BodyTooShort {
            want,
            got: body.len(),
        });
    }
    let (cseq, cseq_method) = cseq.ok_or(ParseError::Missing("CSeq"))?;

    Ok(SipMessage {
        start,
        vias,
        from: from.ok_or(ParseError::Missing("From"))?,
        to: to.ok_or(ParseError::Missing("To"))?,
        call_id: call_id.ok_or(ParseError::Missing("Call-ID"))?,
        cseq,
        cseq_method,
        contact,
        max_forwards,
        expires,
        retry_after,
        extra,
        body: body[..want].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::StartLine;

    fn sample_request() -> SipMessage {
        SipMessage {
            start: StartLine::Request {
                method: Method::Invite,
                uri: SipUri::new("bob", "proxy.lab"),
            },
            vias: vec![
                Via::new("UDP", "proxy.lab:5060", "z9hG4bKp7"),
                Via::new("UDP", "caller:5060", "z9hG4bK1"),
            ],
            from: NameAddr::with_tag(SipUri::new("alice", "caller"), "a1"),
            to: NameAddr::new(SipUri::new("bob", "proxy.lab")),
            call_id: "8f3d@caller".into(),
            cseq: 1,
            cseq_method: Method::Invite,
            contact: Some(SipUri::new("alice", "caller")),
            max_forwards: 69,
            expires: None,
            retry_after: None,
            extra: vec![("User-Agent".into(), "siperf".into())],
            body: b"v=0\r\no=- 0 0 IN IP4 caller\r\n".to_vec(),
        }
    }

    #[test]
    fn roundtrip_request() {
        let msg = sample_request();
        let parsed = parse_message(&msg.to_bytes()).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn roundtrip_response() {
        let mut msg = sample_request();
        msg.start = StartLine::Response {
            code: StatusCode::OK,
        };
        msg.to.tag = Some("b7".into());
        let parsed = parse_message(&msg.to_bytes()).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn compact_forms_and_case_insensitivity() {
        let raw = b"INVITE sip:bob@h SIP/2.0\r\n\
            v: SIP/2.0/TCP c:5060;branch=z9hG4bK9\r\n\
            F: <sip:a@c>;tag=t1\r\n\
            t: sip:bob@h\r\n\
            i: abc123\r\n\
            CSEQ: 7 INVITE\r\n\
            m: <sip:a@c:5060;transport=tcp>\r\n\
            l: 0\r\n\r\n";
        let msg = parse_message(raw).unwrap();
        assert_eq!(msg.branch(), Some("z9hG4bK9"));
        assert_eq!(msg.from.tag.as_deref(), Some("t1"));
        assert_eq!(msg.to.uri.user, "bob");
        assert_eq!(msg.call_id, "abc123");
        assert_eq!(msg.cseq, 7);
        assert_eq!(msg.contact.as_ref().unwrap().user, "a");
        assert!(msg.body.is_empty());
    }

    #[test]
    fn display_name_in_name_addr() {
        let raw = b"BYE sip:bob@h SIP/2.0\r\n\
            Via: SIP/2.0/UDP c:5060;branch=z9hG4bK2\r\n\
            From: \"Alice Smith\" <sip:alice@c>;tag=t9\r\n\
            To: Bob <sip:bob@h>;tag=t3\r\n\
            Call-ID: x\r\n\
            CSeq: 2 BYE\r\n\
            Content-Length: 0\r\n\r\n";
        let msg = parse_message(raw).unwrap();
        assert_eq!(msg.from.uri.user, "alice");
        assert_eq!(msg.from.tag.as_deref(), Some("t9"));
        assert_eq!(msg.to.tag.as_deref(), Some("t3"));
    }

    #[test]
    fn multiple_vias_keep_order() {
        let msg = sample_request();
        let parsed = parse_message(&msg.to_bytes()).unwrap();
        assert_eq!(parsed.vias.len(), 2);
        assert_eq!(parsed.vias[0].branch, "z9hG4bKp7");
        assert_eq!(parsed.vias[1].branch, "z9hG4bK1");
    }

    #[test]
    fn body_respects_content_length() {
        let raw = b"OPTIONS sip:a@h SIP/2.0\r\n\
            Via: SIP/2.0/UDP c:1;branch=z9hG4bK3\r\n\
            From: sip:a@c\r\n\
            To: sip:a@h\r\n\
            Call-ID: y\r\n\
            CSeq: 1 OPTIONS\r\n\
            Content-Length: 4\r\n\r\nbodyEXTRA";
        let msg = parse_message(raw).unwrap();
        assert_eq!(msg.body, b"body");
    }

    #[test]
    fn error_cases() {
        // No terminator.
        assert_eq!(
            parse_message(b"INVITE sip:a@b SIP/2.0\r\nVia: x\r\n"),
            Err(ParseError::NoHeaderTerminator)
        );
        // Bad start line.
        assert_eq!(
            parse_message(b"HELLO sip:a@b SIP/2.0\r\n\r\n"),
            Err(ParseError::BadStartLine)
        );
        assert_eq!(
            parse_message(b"INVITE sip:a@b SIP/3.0\r\n\r\n"),
            Err(ParseError::BadStartLine)
        );
        // Missing required header.
        let e = parse_message(
            b"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP c:1;branch=z9hG4bK\r\n\
              From: sip:a@c\r\nTo: sip:a@b\r\nCSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(e, Err(ParseError::Missing("Call-ID")));
        // Body shorter than promised.
        let e = parse_message(
            b"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP c:1;branch=z9hG4bK\r\n\
              From: sip:a@c\r\nTo: sip:a@b\r\nCall-ID: z\r\nCSeq: 1 INVITE\r\n\
              Content-Length: 10\r\n\r\nabc",
        );
        assert_eq!(e, Err(ParseError::BodyTooShort { want: 10, got: 3 }));
        // Header without colon.
        let e = parse_message(b"INVITE sip:a@b SIP/2.0\r\nGarbageLine\r\n\r\n");
        assert!(matches!(e, Err(ParseError::BadHeader(_))));
        // Via without branch.
        let e = parse_message(
            b"INVITE sip:a@b SIP/2.0\r\nVia: SIP/2.0/UDP c:1\r\n\
              From: sip:a@c\r\nTo: sip:a@b\r\nCall-ID: z\r\nCSeq: 1 INVITE\r\n\
              Content-Length: 0\r\n\r\n",
        );
        assert_eq!(e, Err(ParseError::BadValue("Via")));
        // Unparsable status code.
        assert_eq!(
            parse_message(b"SIP/2.0 xx OK\r\n\r\n"),
            Err(ParseError::BadStartLine)
        );
        assert_eq!(
            parse_message(b"SIP/2.0 99 Low\r\n\r\n"),
            Err(ParseError::BadStartLine)
        );
    }

    #[test]
    fn retry_after_roundtrips_and_tolerates_params() {
        let mut msg = sample_request();
        msg.start = StartLine::Response {
            code: StatusCode::SERVICE_UNAVAILABLE,
        };
        msg.retry_after = Some(12);
        let text = String::from_utf8(msg.to_bytes()).unwrap();
        assert!(text.contains("Retry-After: 12\r\n"));
        assert_eq!(parse_message(msg.to_bytes().as_slice()).unwrap(), msg);

        // Comment and parameter forms parse down to the delta seconds.
        for value in ["5 (overloaded)", "5;duration=60", "5"] {
            let raw = format!(
                "SIP/2.0 503 Service Unavailable\r\n\
                 Via: SIP/2.0/UDP c:1;branch=z9hG4bK5\r\n\
                 From: sip:a@c\r\nTo: sip:b@h\r\nCall-ID: z\r\nCSeq: 1 INVITE\r\n\
                 Retry-After: {value}\r\nContent-Length: 0\r\n\r\n"
            );
            let parsed = parse_message(raw.as_bytes()).unwrap();
            assert_eq!(parsed.retry_after, Some(5), "value {value:?}");
        }
        let bad = parse_message(
            b"SIP/2.0 503 Service Unavailable\r\n\
              Via: SIP/2.0/UDP c:1;branch=z9hG4bK5\r\n\
              From: sip:a@c\r\nTo: sip:b@h\r\nCall-ID: z\r\nCSeq: 1 INVITE\r\n\
              Retry-After: soon\r\nContent-Length: 0\r\n\r\n",
        );
        assert_eq!(bad, Err(ParseError::BadValue("Retry-After")));
    }

    #[test]
    fn unknown_headers_preserved() {
        let msg = sample_request();
        let parsed = parse_message(&msg.to_bytes()).unwrap();
        assert_eq!(parsed.extra, vec![("User-Agent".into(), "siperf".into())]);
    }

    #[test]
    fn errors_display_lowercase() {
        let e = ParseError::Missing("CSeq");
        assert_eq!(e.to_string(), "missing required header CSeq");
    }
}
