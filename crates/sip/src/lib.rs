//! # siperf-sip
//!
//! The SIP protocol layer for the SIPerf study — a reproduction of
//! *"Explaining the Impact of Network Transport Protocols on SIP Proxy
//! Performance"* (ISPASS 2008).
//!
//! The proxy under study parses, routes, and retransmits real SIP messages;
//! this crate provides those pieces as pure, kernel-independent code:
//!
//! * [`msg`] — the message model: methods, status codes, URIs, Via stacks
//!   with branch transaction ids, and wire serialization.
//! * [`parse`] — a genuine textual parser for the RFC 3261 subset a proxy's
//!   hot path touches (compact forms, display names, parameters).
//! * [`framer`] — `Content-Length`-based reassembly of messages from TCP
//!   byte streams, the reason a connection can only be read by one worker.
//! * [`txn`] — transaction keys and the RFC 3261 §17 retransmission
//!   clocks a stateful proxy runs on unreliable transports.
//! * [`gen`] — builders for the benchmark flows: REGISTER, and the
//!   INVITE/ACK and BYE transactions of each call.
//!
//! # Example
//!
//! ```
//! use siperf_sip::gen::{self, CallParty};
//! use siperf_sip::msg::{Method, StatusCode};
//! use siperf_sip::parse::parse_message;
//!
//! let alice = CallParty::new("alice", "client1:40000");
//! let bob = CallParty::new("bob", "client2:40000");
//! let invite = gen::invite(&alice, &bob, "proxy.lab", "call-1", "z9hG4bK1", "UDP");
//!
//! // What goes on the wire parses back identically.
//! let parsed = parse_message(&invite.to_bytes())?;
//! assert_eq!(parsed.method(), Some(Method::Invite));
//!
//! // The callee answers; the response carries the same transaction id.
//! let ok = gen::response(StatusCode::OK, &parsed, Some("tag-bob"), Some(bob.contact()));
//! assert_eq!(ok.branch(), invite.branch());
//! # Ok::<(), siperf_sip::parse::ParseError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod framer;
pub mod gen;
pub mod msg;
pub mod parse;
pub mod txn;

pub use framer::{FrameError, StreamFramer};
pub use msg::{Method, NameAddr, SipMessage, SipUri, StartLine, StatusCode, Via};
pub use parse::{parse_message, ParseError};
pub use txn::{RetransClock, TimerVerdict, TxnKey};
