//! Property-based tests for the SIP layer: serialization round-trips and
//! framing under arbitrary stream segmentation.

use proptest::prelude::*;

use siperf_sip::framer::StreamFramer;
use siperf_sip::msg::{Method, NameAddr, SipMessage, SipUri, StartLine, StatusCode, Via};
use siperf_sip::parse::parse_message;

fn token() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9]{1,12}".prop_map(|s| s)
}

fn method() -> impl Strategy<Value = Method> {
    prop_oneof![
        Just(Method::Invite),
        Just(Method::Ack),
        Just(Method::Bye),
        Just(Method::Cancel),
        Just(Method::Register),
        Just(Method::Options),
    ]
}

fn status() -> impl Strategy<Value = StatusCode> {
    prop_oneof![
        Just(StatusCode::TRYING),
        Just(StatusCode::RINGING),
        Just(StatusCode::OK),
        Just(StatusCode::NOT_FOUND),
        Just(StatusCode::BUSY_HERE),
        (100u16..700).prop_map(StatusCode),
    ]
}

fn uri() -> impl Strategy<Value = SipUri> {
    (token(), token()).prop_map(|(u, h)| SipUri::new(u, h))
}

fn name_addr() -> impl Strategy<Value = NameAddr> {
    (uri(), proptest::option::of(token())).prop_map(|(uri, tag)| NameAddr { uri, tag })
}

fn via() -> impl Strategy<Value = Via> {
    (
        prop_oneof![Just("UDP"), Just("TCP"), Just("SCTP")],
        token(),
        token(),
    )
        .prop_map(|(t, host, b)| Via::new(t, format!("{host}:5060"), format!("z9hG4bK{b}")))
}

prop_compose! {
    fn message()(
        is_request in any::<bool>(),
        m in method(),
        code in status(),
        req_uri in uri(),
        vias in proptest::collection::vec(via(), 1..4),
        from in name_addr(),
        to in name_addr(),
        call_id in token(),
        cseq in 1u32..1000,
        cseq_method in method(),
        contact in proptest::option::of(uri()),
        max_forwards in 0u32..100,
        expires in proptest::option::of(0u32..100_000),
        retry_after in proptest::option::of(0u32..100_000),
        extra_vals in proptest::collection::vec((token(), token()), 0..3),
        body in proptest::collection::vec(any::<u8>(), 0..600),
    ) -> SipMessage {
        let start = if is_request {
            StartLine::Request { method: m, uri: req_uri }
        } else {
            StartLine::Response { code }
        };
        // Avoid header names that collide with parsed ones.
        let extra = extra_vals
            .into_iter()
            .map(|(n, v)| (format!("X-{n}"), v))
            .collect();
        SipMessage {
            start, vias, from, to, call_id, cseq, cseq_method,
            contact, max_forwards, expires, retry_after, extra, body,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Anything we can serialize parses back to an identical message.
    #[test]
    fn serialize_parse_roundtrip(msg in message()) {
        let wire = msg.to_bytes();
        let parsed = parse_message(&wire).expect("own output must parse");
        prop_assert_eq!(parsed, msg);
    }

    /// Any Retry-After value survives the 503 generate → serialize → parse
    /// path the overload-control subsystem rides on.
    #[test]
    fn retry_after_roundtrips_on_503(req in message(), secs in 0u32..1_000_000) {
        if req.is_request() {
            let resp = siperf_sip::gen::service_unavailable(&req, secs);
            let wire = resp.to_bytes();
            let parsed = parse_message(&wire).expect("own output must parse");
            prop_assert_eq!(parsed.retry_after, Some(secs));
            prop_assert_eq!(parsed.status(), Some(StatusCode(503)));
            prop_assert_eq!(parsed, resp);
        }
    }

    /// A stream of messages survives any segmentation: however the bytes
    /// are chunked, the framer yields exactly the original messages.
    #[test]
    fn framer_is_segmentation_invariant(
        msgs in proptest::collection::vec(message(), 1..6),
        cuts in proptest::collection::vec(1usize..200, 0..40),
    ) {
        let wires: Vec<Vec<u8>> = msgs.iter().map(|m| m.to_bytes()).collect();
        let stream: Vec<u8> = wires.concat();

        let mut framer = StreamFramer::new();
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut_iter = cuts.into_iter();
        while pos < stream.len() {
            let step = cut_iter.next().unwrap_or(stream.len());
            let end = (pos + step).min(stream.len());
            framer.push(&stream[pos..end]);
            while let Some(m) = framer.next_message().expect("valid stream") {
                got.push(m);
            }
            pos = end;
        }
        prop_assert_eq!(got, wires);
        prop_assert_eq!(framer.buffered(), 0);
    }

    /// Truncated messages never parse, never panic.
    #[test]
    fn truncation_fails_cleanly(msg in message(), keep in 0.0f64..1.0) {
        let wire = msg.to_bytes();
        let cut = ((wire.len() as f64) * keep) as usize;
        if cut < wire.len() {
            // Either a clean error or (for cuts inside a trailing body that
            // content-length happens to cover) success — never a panic.
            let _ = parse_message(&wire[..cut]);
        }
    }

    /// The framer never hands out a partial message.
    #[test]
    fn framer_output_always_parses(msg in message(), split in 1usize..64) {
        let wire = msg.to_bytes();
        let mut framer = StreamFramer::new();
        for chunk in wire.chunks(split) {
            framer.push(chunk);
            if let Some(m) = framer.next_message().expect("valid stream") {
                prop_assert!(parse_message(&m).is_ok());
            }
        }
    }
}
