//! A torture battery for the SIP parser, in the spirit of RFC 4475: every
//! malformation a proxy's hot path can meet must map to a clean error (the
//! proxy counts it and drops the message), never a panic or a bogus parse.

use siperf_sip::msg::{Method, StatusCode};
use siperf_sip::parse::{parse_message, ParseError};

fn parses(raw: &[u8]) -> Result<(), ParseError> {
    parse_message(raw).map(|_| ())
}

#[test]
fn a_fully_loaded_valid_request_parses() {
    let raw = b"INVITE sip:bob@biloxi.example.com SIP/2.0\r\n\
        Via: SIP/2.0/TCP h9:5060;branch=z9hG4bK776asdhds;received=192.0.2.1\r\n\
        Via: SIP/2.0/UDP h1:20001;branch=z9hG4bKnashds8\r\n\
        Max-Forwards: 68\r\n\
        To: Bob <sip:bob@biloxi.example.com>\r\n\
        From: Alice <sip:alice@atlanta.example.com>;tag=1928301774\r\n\
        Call-ID: a84b4c76e66710@pc33.atlanta.example.com\r\n\
        CSeq: 314159 INVITE\r\n\
        Contact: <sip:alice@h1:20001;transport=tcp>\r\n\
        Subject: lunch\r\n\
        X-Custom: anything goes ;;; here\r\n\
        Content-Length: 4\r\n\r\nbody";
    let msg = parse_message(raw).expect("valid request");
    assert_eq!(msg.method(), Some(Method::Invite));
    assert_eq!(msg.vias.len(), 2);
    assert_eq!(msg.cseq, 314159);
    assert_eq!(msg.max_forwards, 68);
    assert_eq!(msg.body, b"body");
    assert_eq!(
        msg.extra.len(),
        2,
        "unknown headers preserved: {:?}",
        msg.extra
    );
}

#[test]
fn responses_with_unusual_codes_parse() {
    for code in [
        100u16, 181, 199, 200, 299, 300, 404, 499, 500, 599, 600, 699,
    ] {
        let raw = format!(
            "SIP/2.0 {code} Whatever Reason Text Here\r\n\
             Via: SIP/2.0/UDP h1:1;branch=z9hG4bKx\r\n\
             From: sip:a@b\r\nTo: sip:c@d\r\nCall-ID: x\r\nCSeq: 1 INVITE\r\n\
             Content-Length: 0\r\n\r\n"
        );
        let msg = parse_message(raw.as_bytes()).expect("valid response");
        assert_eq!(msg.status(), Some(StatusCode(code)));
    }
}

#[test]
fn garbage_start_lines_fail_cleanly() {
    for raw in [
        &b""[..],
        b"\r\n\r\n",
        b" \r\n\r\n",
        b"INVITE\r\n\r\n",
        b"INVITE sip:a@b\r\n\r\n",
        b"INVITE sip:a@b HTTP/1.1\r\n\r\n",
        b"GET sip:a@b SIP/2.0\r\n\r\n",
        b"SIP/2.0\r\n\r\n",
        b"SIP/2.0 abc Huh\r\n\r\n",
        b"SIP/2.0 20 TooSmall\r\n\r\n",
        b"SIP/2.0 1000 TooBig\r\n\r\n",
        b"sip/2.0 200 lowercase\r\n\r\n",
        b"INVITE mailto:a@b SIP/2.0\r\n\r\n",
    ] {
        assert!(
            parses(raw).is_err(),
            "should reject {:?}",
            String::from_utf8_lossy(raw)
        );
    }
}

#[test]
fn missing_each_required_header_fails_with_its_name() {
    let full = "INVITE sip:a@b SIP/2.0\r\n\
        Via: SIP/2.0/UDP h1:1;branch=z9hG4bKq\r\n\
        From: sip:x@y\r\nTo: sip:a@b\r\nCall-ID: cid\r\nCSeq: 1 INVITE\r\n\
        Content-Length: 0\r\n\r\n";
    for (field, expect) in [
        ("From:", ParseError::Missing("From")),
        ("To:", ParseError::Missing("To")),
        ("Call-ID:", ParseError::Missing("Call-ID")),
        ("CSeq:", ParseError::Missing("CSeq")),
        ("Content-Length:", ParseError::Missing("Content-Length")),
    ] {
        let raw: String = full
            .split("\r\n")
            .filter(|line| !line.starts_with(field))
            .collect::<Vec<_>>()
            .join("\r\n");
        assert_eq!(
            parse_message(raw.as_bytes()).unwrap_err(),
            expect,
            "dropping {field}"
        );
    }
}

#[test]
fn malformed_values_fail_cleanly() {
    let cases: &[(&str, &str)] = &[
        ("CSeq", "CSeq: banana INVITE"),
        ("CSeq", "CSeq: 1"),
        ("CSeq", "CSeq: 1 NOTAMETHOD"),
        ("Via", "Via: not a via at all"),
        ("Via", "Via: SIP/2.0/UDP"),
        ("Via", "Via: SIP/2.0/UDP host:1"), // no branch
        ("Max-Forwards", "Max-Forwards: many"),
        ("Content-Length", "Content-Length: -1"),
        ("Content-Length", "Content-Length: 4e2"),
        ("Expires", "Expires: soon"),
        ("From", "From: <not-a-uri>"),
        ("To", "To: @@@"),
    ];
    for (what, line) in cases {
        let raw = format!(
            "OPTIONS sip:a@b SIP/2.0\r\n\
             Via: SIP/2.0/UDP h1:1;branch=z9hG4bKok\r\n\
             From: sip:x@y\r\nTo: sip:a@b\r\nCall-ID: cid\r\nCSeq: 9 OPTIONS\r\n\
             {line}\r\nContent-Length: 0\r\n\r\n"
        );
        let got = parse_message(raw.as_bytes());
        assert!(got.is_err(), "{what}: {line:?} should fail, got {got:?}");
    }
}

#[test]
fn binary_garbage_and_truncations_never_panic() {
    // Deterministic pseudo-garbage of many lengths and seeds.
    let mut state = 0x9E37u64;
    for len in [0usize, 1, 2, 3, 7, 64, 513, 4096] {
        let mut buf = Vec::with_capacity(len);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            buf.push((state >> 33) as u8);
        }
        let _ = parse_message(&buf); // must not panic
                                     // Also garbage after a valid-looking prefix.
        let mut mixed = b"INVITE sip:a@b SIP/2.0\r\n".to_vec();
        mixed.extend_from_slice(&buf);
        let _ = parse_message(&mixed);
    }
}

#[test]
fn whitespace_and_casing_liberality() {
    let raw = b"REGISTER sip:u@dom SIP/2.0\r\n\
        VIA:   SIP/2.0/UDP   h3:9;branch=z9hG4bKw  \r\n\
        from:\tsip:u@dom;tag=abc\r\n\
        TO: sip:u@dom\r\n\
        call-id:    spaced-out   \r\n\
        cseq: 2 REGISTER\r\n\
        content-length:  0  \r\n\r\n";
    let msg = parse_message(raw).expect("liberal header parsing");
    assert_eq!(msg.method(), Some(Method::Register));
    assert_eq!(msg.vias[0].sent_by, "h3:9");
    assert_eq!(msg.from.tag.as_deref(), Some("abc"));
    assert_eq!(msg.call_id, "spaced-out");
}

#[test]
fn utf8_boundary_in_headers_is_rejected_not_panicked() {
    let mut raw = b"INVITE sip:a@b SIP/2.0\r\nX-Bin: ".to_vec();
    raw.extend_from_slice(&[0xFF, 0xFE, 0x80]);
    raw.extend_from_slice(b"\r\n\r\n");
    assert_eq!(parse_message(&raw).unwrap_err(), ParseError::BadEncoding);
}

#[test]
fn enormous_but_bounded_messages_parse() {
    let body = vec![b'x'; 100_000];
    let raw = format!(
        "INVITE sip:a@b SIP/2.0\r\n\
         Via: SIP/2.0/UDP h1:1;branch=z9hG4bKbig\r\n\
         From: sip:x@y\r\nTo: sip:a@b\r\nCall-ID: big\r\nCSeq: 1 INVITE\r\n\
         Content-Length: {}\r\n\r\n",
        body.len()
    );
    let mut buf = raw.into_bytes();
    buf.extend_from_slice(&body);
    let msg = parse_message(&buf).expect("large body");
    assert_eq!(msg.body.len(), 100_000);
}
