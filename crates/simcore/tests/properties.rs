//! Property-based tests for the simulation engine's core invariants.

use proptest::prelude::*;

use siperf_simcore::arena::Arena;
use siperf_simcore::queue::EventQueue;
use siperf_simcore::rng::SimRng;
use siperf_simcore::stats::Histogram;
use siperf_simcore::time::{SimDuration, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, FIFO within a tie,
    /// and nothing is lost or invented.
    #[test]
    fn event_queue_is_a_stable_time_sort(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut popped = Vec::new();
        while let Some((at, idx)) = q.pop() {
            popped.push((at.as_nanos(), idx));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Non-decreasing time; ties in schedule order.
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        // Exactly the scheduled (time, index) pairs.
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        prop_assert_eq!(popped, expected);
    }

    /// The arena behaves exactly like a map from issued handles to values,
    /// with stale handles never resolving.
    #[test]
    fn arena_matches_model(ops in proptest::collection::vec((0u8..3, 0usize..32, 0i64..1000), 1..300)) {
        let mut arena: Arena<i64> = Arena::new();
        let mut model: Vec<(siperf_simcore::arena::Handle<i64>, i64, bool)> = Vec::new();
        for (op, pick, value) in ops {
            match op {
                0 => {
                    let h = arena.insert(value);
                    model.push((h, value, true));
                }
                1 if !model.is_empty() => {
                    let k = pick % model.len();
                    let (h, v, live) = model[k];
                    let removed = arena.remove(h);
                    if live {
                        prop_assert_eq!(removed, Some(v));
                        model[k].2 = false;
                    } else {
                        prop_assert_eq!(removed, None);
                    }
                }
                _ if !model.is_empty() => {
                    let k = pick % model.len();
                    let (h, v, live) = model[k];
                    if live {
                        prop_assert_eq!(arena.get(h), Some(&v));
                    } else {
                        prop_assert_eq!(arena.get(h), None);
                    }
                }
                _ => {}
            }
        }
        let live = model.iter().filter(|(_, _, l)| *l).count();
        prop_assert_eq!(arena.len(), live);
        prop_assert_eq!(arena.iter().count(), live);
    }

    /// Histogram percentiles stay within the log-linear bucket error bound
    /// of the exact quantiles, and min/mean/count are exact.
    #[test]
    fn histogram_quantiles_are_bucket_accurate(samples in proptest::collection::vec(1u64..10_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(SimDuration::from_nanos(s));
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        let exact_min = *samples.iter().min().unwrap();
        prop_assert_eq!(h.min().as_nanos(), exact_min);
        let exact_mean: u64 =
            (samples.iter().map(|&s| s as u128).sum::<u128>() / samples.len() as u128) as u64;
        prop_assert_eq!(h.mean().as_nanos(), exact_mean);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for p in [10.0, 50.0, 90.0, 99.0] {
            let idx = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
            let exact = sorted[idx.min(sorted.len() - 1)] as f64;
            let got = h.percentile(p).as_nanos() as f64;
            // One sub-bucket of relative error (1/32), plus slack for the
            // representative being the bucket's lower bound.
            prop_assert!(
                got <= exact * 1.01 && got >= exact * (1.0 - 2.0 / 32.0) - 1.0,
                "p{p}: got {got}, exact {exact}"
            );
        }
    }

    /// Forked RNG streams are deterministic functions of (seed, salt).
    #[test]
    fn rng_forks_are_reproducible(seed in any::<u64>(), salt in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut fa = a.fork(salt);
        let mut fb = b.fork(salt);
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    /// range_u64 never leaves its bounds for arbitrary non-empty ranges.
    #[test]
    fn rng_range_stays_in_bounds(seed in any::<u64>(), lo in 0u64..1_000_000, span in 1u64..1_000_000) {
        let mut rng = SimRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = rng.range_u64(lo..lo + span);
            prop_assert!((lo..lo + span).contains(&x));
        }
    }
}
