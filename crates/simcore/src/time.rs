//! Virtual time for the discrete-event simulation.
//!
//! All simulation time is expressed in integer nanoseconds. Two newtypes keep
//! instants and durations from being confused ([`SimTime`] vs
//! [`SimDuration`]), mirroring `std::time::{Instant, Duration}` but with a
//! globally-ordered, serializable representation that starts at
//! [`SimTime::ZERO`] when the simulation boots.
//!
//! # Examples
//!
//! ```
//! use siperf_simcore::time::{SimDuration, SimTime};
//!
//! let t = SimTime::ZERO + SimDuration::from_millis(5);
//! assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(5_000));
//! assert!(t < t + SimDuration::from_nanos(1));
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in nanoseconds since simulation boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch: the instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far"
    /// deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds since boot.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since boot.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole seconds since boot as a float, for report formatting.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`; saturates to
    /// zero in release builds.
    #[inline]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(earlier.0 <= self.0, "duration_since: earlier > self");
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable duration; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration seconds: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds, truncating.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds, truncating.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }

    /// Multiplies by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "inf")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert_eq!(SimTime::from_nanos(42).as_nanos(), 42);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_micros(10);
        assert_eq!(t1 - t0, SimDuration::from_micros(10));
        assert_eq!(t1 - SimDuration::from_micros(10), t0);
        let mut t = t0;
        t += SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 5);
        assert_eq!(
            SimDuration::from_micros(3) * 4,
            SimDuration::from_micros(12)
        );
        assert_eq!(
            SimDuration::from_micros(12) / 4,
            SimDuration::from_micros(3)
        );
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::MAX.max(a), SimTime::MAX);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::MAX.saturating_mul(3), SimDuration::MAX);
        assert_eq!(
            SimDuration::MAX.checked_add(SimDuration::from_nanos(1)),
            None
        );
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_nanos(999).to_string(), "999ns");
        assert_eq!(SimDuration::from_micros(1).to_string(), "1.000us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
        assert_eq!(format!("{:?}", SimTime::from_nanos(1500)), "T+1.500us");
    }

    #[test]
    fn duration_since_saturates_in_release() {
        // Only meaningful in release; in debug this would assert, so guard.
        if !cfg!(debug_assertions) {
            let early = SimTime::from_nanos(10);
            let late = SimTime::from_nanos(20);
            assert_eq!(early.duration_since(late), SimDuration::ZERO);
        }
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
