//! # siperf-simcore
//!
//! The discrete-event simulation engine underneath the SIPerf study — a
//! reproduction of *"Explaining the Impact of Network Transport Protocols on
//! SIP Proxy Performance"* (Ram, Fedeli, Cox, Rixner; ISPASS 2008).
//!
//! This crate is domain-agnostic: it knows nothing about SIP, sockets, or
//! schedulers. It provides the primitives every layer above builds on:
//!
//! * [`time`] — virtual instants and durations in integer nanoseconds.
//! * [`queue`] — the deterministic, FIFO-tie-broken event queue.
//! * [`rng`] — seeded, platform-stable random numbers.
//! * [`stats`] — counters, log-linear latency histograms, windowed rates.
//! * [`profile`] — OProfile-style per-function CPU accounting, used to
//!   reproduce the paper's §5 execution-profile evidence.
//! * [`arena`] — generational arenas for entities with small `Copy` handles.
//!
//! Determinism is the central contract: given identical inputs and seeds,
//! every simulation built on this crate replays bit-identically, which makes
//! the paper's figures exactly reproducible and failures debuggable.
//!
//! # Example
//!
//! ```
//! use siperf_simcore::prelude::*;
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_millis(1), "tick");
//! let (at, what) = queue.pop().unwrap();
//! assert_eq!(what, "tick");
//! assert_eq!(at.as_nanos(), 1_000_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod stats;
pub mod time;

/// Convenient glob-import of the types almost every consumer needs.
pub mod prelude {
    pub use crate::arena::{Arena, Handle};
    pub use crate::profile::{ProfileReport, Profiler};
    pub use crate::queue::EventQueue;
    pub use crate::rng::SimRng;
    pub use crate::stats::{Counter, Histogram, WindowRate};
    pub use crate::time::{SimDuration, SimTime};
}
