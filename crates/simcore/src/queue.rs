//! The central event queue of the discrete-event simulation.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs ordered by
//! time, with FIFO tie-breaking for events scheduled at the same instant.
//! Determinism is a hard requirement for the whole simulator: two runs with
//! the same inputs must pop events in exactly the same order, which the
//! monotone sequence number guarantees.
//!
//! # Examples
//!
//! ```
//! use siperf_simcore::queue::EventQueue;
//! use siperf_simcore::time::{SimDuration, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_nanos(20), "late");
//! q.schedule(SimTime::from_nanos(10), "early");
//! q.schedule(SimTime::from_nanos(10), "early-second");
//!
//! assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
//! assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early-second")));
//! assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
//! assert_eq!(q.pop(), None);
//! ```

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
///
/// Events with equal timestamps pop in the order they were scheduled.
#[derive(Default)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Time of the most recently popped event; used to reject scheduling in
    /// the past, which would violate causality.
    watermark: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            watermark: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the time of the last popped event:
    /// scheduling into the past is always a simulator bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.watermark,
            "event scheduled in the past: {at:?} < {:?}",
            self.watermark
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, advancing the causality
    /// watermark to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.watermark = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimTime {
        self.watermark
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("now", &self.watermark)
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_nanos(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn watermark_tracks_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.schedule(SimTime::from_nanos(20), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(10));
        // Scheduling at the watermark is allowed (same-instant causality).
        q.schedule(SimTime::from_nanos(10), ());
        assert_eq!(q.pop().unwrap().0, SimTime::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_scheduling_in_the_past() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        let run = || {
            let mut q = EventQueue::new();
            let mut out = Vec::new();
            q.schedule(SimTime::from_nanos(1), 100);
            q.schedule(SimTime::from_nanos(3), 300);
            while let Some((t, e)) = q.pop() {
                out.push(e);
                if e == 100 {
                    q.schedule(t, 101); // same instant, goes after pending equals
                    q.schedule(SimTime::from_nanos(2), 200);
                }
            }
            out
        };
        assert_eq!(run(), run());
        assert_eq!(run(), vec![100, 101, 200, 300]);
    }
}
