//! A generational arena for simulation entities.
//!
//! Connections, processes, timers, and sockets are created and destroyed
//! constantly during a run. A generational arena gives O(1)
//! insert/remove/lookup with small, `Copy` handles, and the generation check
//! turns use-after-free (e.g. a worker touching a connection the supervisor
//! already destroyed — a real OpenSER hazard) into a detectable `None`
//! instead of silent corruption.
//!
//! # Examples
//!
//! ```
//! use siperf_simcore::arena::Arena;
//!
//! let mut arena: Arena<&str> = Arena::new();
//! let id = arena.insert("conn");
//! assert_eq!(arena[id], "conn");
//! arena.remove(id);
//! assert!(arena.get(id).is_none()); // stale handle detected
//! ```

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Index, IndexMut};

/// A small `Copy` handle into an [`Arena<T>`].
///
/// The type parameter ties a handle to its arena's element type so handles
/// for different entity kinds cannot be mixed up.
pub struct Handle<T> {
    index: u32,
    generation: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    /// A sentinel handle that never resolves; useful as "no entity yet".
    pub const DANGLING: Handle<T> = Handle {
        index: u32::MAX,
        generation: u32::MAX,
        _marker: PhantomData,
    };

    /// Raw slot index; stable for the lifetime of the entity and suitable as
    /// a compact map key alongside [`Handle::generation`].
    pub fn index(self) -> u32 {
        self.index
    }

    /// Generation of the slot at handle creation time.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

// Manual impls: `derive` would bound on `T`, but handles are always Copy.
impl<T> Clone for Handle<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index && self.generation == other.generation
    }
}
impl<T> Eq for Handle<T> {}
impl<T> std::hash::Hash for Handle<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
        self.generation.hash(state);
    }
}
impl<T> PartialOrd for Handle<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Handle<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.index, self.generation).cmp(&(other.index, other.generation))
    }
}
impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}v{}", self.index, self.generation)
    }
}

enum Slot<T> {
    Occupied {
        generation: u32,
        value: T,
    },
    Free {
        generation: u32,
        next_free: Option<u32>,
    },
}

/// A generational arena: O(1) insert, remove, and checked lookup.
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free_head: Option<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free_head: None,
            len: 0,
        }
    }

    /// Creates an empty arena with room for `cap` entities.
    pub fn with_capacity(cap: usize) -> Self {
        Arena {
            slots: Vec::with_capacity(cap),
            free_head: None,
            len: 0,
        }
    }

    /// Inserts a value and returns its handle.
    pub fn insert(&mut self, value: T) -> Handle<T> {
        self.len += 1;
        if let Some(idx) = self.free_head {
            let slot = &mut self.slots[idx as usize];
            let generation = match *slot {
                Slot::Free {
                    generation,
                    next_free,
                } => {
                    self.free_head = next_free;
                    generation
                }
                Slot::Occupied { .. } => unreachable!("free list points at occupied slot"),
            };
            *slot = Slot::Occupied { generation, value };
            Handle {
                index: idx,
                generation,
                _marker: PhantomData,
            }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot::Occupied {
                generation: 0,
                value,
            });
            Handle {
                index: idx,
                generation: 0,
                _marker: PhantomData,
            }
        }
    }

    /// Removes the entity behind `handle`, returning it if the handle was
    /// still live.
    pub fn remove(&mut self, handle: Handle<T>) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        match slot {
            Slot::Occupied { generation, .. } if *generation == handle.generation => {
                let next_gen = generation.wrapping_add(1);
                let old = std::mem::replace(
                    slot,
                    Slot::Free {
                        generation: next_gen,
                        next_free: self.free_head,
                    },
                );
                self.free_head = Some(handle.index);
                self.len -= 1;
                match old {
                    Slot::Occupied { value, .. } => Some(value),
                    Slot::Free { .. } => unreachable!(),
                }
            }
            _ => None,
        }
    }

    /// Checked lookup; `None` if the handle is stale or dangling.
    pub fn get(&self, handle: Handle<T>) -> Option<&T> {
        match self.slots.get(handle.index as usize)? {
            Slot::Occupied { generation, value } if *generation == handle.generation => Some(value),
            _ => None,
        }
    }

    /// Checked mutable lookup.
    pub fn get_mut(&mut self, handle: Handle<T>) -> Option<&mut T> {
        match self.slots.get_mut(handle.index as usize)? {
            Slot::Occupied { generation, value } if *generation == handle.generation => Some(value),
            _ => None,
        }
    }

    /// True if the handle still refers to a live entity.
    pub fn contains(&self, handle: Handle<T>) -> bool {
        self.get(handle).is_some()
    }

    /// Number of live entities.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entities are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(handle, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle<T>, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Slot::Occupied { generation, value } => Some((
                    Handle {
                        index: i as u32,
                        generation: *generation,
                        _marker: PhantomData,
                    },
                    value,
                )),
                Slot::Free { .. } => None,
            })
    }

    /// Iterates over `(handle, &mut value)` pairs in slot order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Handle<T>, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Slot::Occupied { generation, value } => Some((
                    Handle {
                        index: i as u32,
                        generation: *generation,
                        _marker: PhantomData,
                    },
                    value,
                )),
                Slot::Free { .. } => None,
            })
    }

    /// Collects the handles of all live entities (useful when mutation during
    /// iteration is needed, e.g. scan-and-close loops).
    pub fn handles(&self) -> Vec<Handle<T>> {
        self.iter().map(|(h, _)| h).collect()
    }
}

impl<T> Index<Handle<T>> for Arena<T> {
    type Output = T;
    /// # Panics
    ///
    /// Panics if the handle is stale or dangling.
    fn index(&self, handle: Handle<T>) -> &T {
        self.get(handle).expect("stale arena handle")
    }
}

impl<T> IndexMut<Handle<T>> for Arena<T> {
    fn index_mut(&mut self, handle: Handle<T>) -> &mut T {
        self.get_mut(handle).expect("stale arena handle")
    }
}

impl<T: fmt::Debug> fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut a = Arena::new();
        let h1 = a.insert(10);
        let h2 = a.insert(20);
        assert_eq!(a.len(), 2);
        assert_eq!(a[h1], 10);
        assert_eq!(a[h2], 20);
        assert_eq!(a.remove(h1), Some(10));
        assert_eq!(a.len(), 1);
        assert!(a.get(h1).is_none());
        assert_eq!(a[h2], 20);
    }

    #[test]
    fn stale_handles_do_not_resolve_after_reuse() {
        let mut a = Arena::new();
        let h1 = a.insert("first");
        a.remove(h1);
        let h2 = a.insert("second");
        // Slot is reused but the generation differs.
        assert_eq!(h1.index(), h2.index());
        assert_ne!(h1.generation(), h2.generation());
        assert!(a.get(h1).is_none());
        assert_eq!(a[h2], "second");
        assert_eq!(a.remove(h1), None);
    }

    #[test]
    fn dangling_never_resolves() {
        let a: Arena<i32> = Arena::new();
        assert!(a.get(Handle::DANGLING).is_none());
        assert!(!a.contains(Handle::DANGLING));
    }

    #[test]
    fn iteration_visits_only_live() {
        let mut a = Arena::new();
        let h1 = a.insert(1);
        let _h2 = a.insert(2);
        let h3 = a.insert(3);
        a.remove(h1);
        let values: Vec<i32> = a.iter().map(|(_, v)| *v).collect();
        assert_eq!(values, vec![2, 3]);
        assert!(a.contains(h3));
        assert_eq!(a.handles().len(), 2);
    }

    #[test]
    fn iter_mut_allows_updates() {
        let mut a = Arena::new();
        a.insert(1);
        a.insert(2);
        for (_, v) in a.iter_mut() {
            *v *= 10;
        }
        let sum: i32 = a.iter().map(|(_, v)| *v).sum();
        assert_eq!(sum, 30);
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut a = Arena::new();
        let handles: Vec<_> = (0..100).map(|i| a.insert(i)).collect();
        for h in &handles {
            a.remove(*h);
        }
        for i in 0..100 {
            a.insert(i);
        }
        // All inserts should have reused freed slots.
        assert_eq!(a.len(), 100);
        assert!(a.handles().iter().all(|h| h.index() < 100));
    }

    #[test]
    fn get_mut_respects_generation() {
        let mut a = Arena::new();
        let h = a.insert(5);
        *a.get_mut(h).unwrap() = 6;
        assert_eq!(a[h], 6);
        a.remove(h);
        assert!(a.get_mut(h).is_none());
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn index_panics_on_stale() {
        let mut a = Arena::new();
        let h = a.insert(1);
        a.remove(h);
        let _ = a[h];
    }
}
