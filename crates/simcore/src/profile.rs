//! OProfile-style virtual-CPU accounting.
//!
//! The paper's argument rests on execution profiles: the fd-request IPC
//! function consumes 12.0% of CPU time in baseline TCP and 4.6% with the
//! file-descriptor cache, the idle-connection scan triples under the 50
//! ops/connection workload, and the kernel's top functions fill with
//! scheduler entries during sched_yield storms (§5.1–5.2). [`Profiler`]
//! reproduces that evidence: every simulated CPU burst is charged to a
//! function *tag*, and [`ProfileReport`] renders the same kind of
//! "top functions by %" table OProfile produced.
//!
//! Tags follow the convention `"domain/function"`, with domains `user`,
//! `kernel`, and `sched`, e.g. `"user/parse_msg"` or `"kernel/ipc_recv"`.
//!
//! # Examples
//!
//! ```
//! use siperf_simcore::profile::Profiler;
//!
//! let mut p = Profiler::new();
//! p.record("user/parse_msg", 750);
//! p.record("kernel/ipc_send", 250);
//! let report = p.report();
//! assert_eq!(report.share("user/parse_msg"), 0.75);
//! assert_eq!(report.top(1)[0].0, "user/parse_msg");
//! ```

use std::collections::HashMap;
use std::fmt;

/// Accumulates virtual CPU time per function tag.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    ns_by_tag: HashMap<&'static str, u64>,
    total_ns: u64,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Charges `ns` nanoseconds of CPU time to `tag`.
    #[inline]
    pub fn record(&mut self, tag: &'static str, ns: u64) {
        if ns == 0 {
            return;
        }
        *self.ns_by_tag.entry(tag).or_insert(0) += ns;
        self.total_ns += ns;
    }

    /// Total CPU time charged across all tags.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// CPU time charged to one tag.
    pub fn ns_for(&self, tag: &str) -> u64 {
        self.ns_by_tag.get(tag).copied().unwrap_or(0)
    }

    /// Snapshot suitable for sorting and display.
    pub fn report(&self) -> ProfileReport {
        let mut rows: Vec<(&'static str, u64)> =
            self.ns_by_tag.iter().map(|(&t, &ns)| (t, ns)).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        ProfileReport {
            rows,
            total_ns: self.total_ns,
        }
    }

    /// Clears all accumulated samples.
    pub fn reset(&mut self) {
        self.ns_by_tag.clear();
        self.total_ns = 0;
    }

    /// Merges another profiler's samples into this one.
    pub fn merge(&mut self, other: &Profiler) {
        for (&tag, &ns) in &other.ns_by_tag {
            *self.ns_by_tag.entry(tag).or_insert(0) += ns;
        }
        self.total_ns += other.total_ns;
    }
}

/// A sorted snapshot of a [`Profiler`].
#[derive(Debug, Clone)]
pub struct ProfileReport {
    rows: Vec<(&'static str, u64)>,
    total_ns: u64,
}

impl ProfileReport {
    /// The `n` hottest tags with their CPU nanoseconds, descending.
    pub fn top(&self, n: usize) -> &[(&'static str, u64)] {
        &self.rows[..n.min(self.rows.len())]
    }

    /// All rows, hottest first.
    pub fn rows(&self) -> &[(&'static str, u64)] {
        &self.rows
    }

    /// Fraction of total CPU time spent in `tag` (0 when nothing recorded).
    pub fn share(&self, tag: &str) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        let ns = self
            .rows
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, ns)| *ns)
            .unwrap_or(0);
        ns as f64 / self.total_ns as f64
    }

    /// Fraction of total CPU time spent in tags under `domain/` (e.g.
    /// `"kernel"` sums every `kernel/...` tag).
    pub fn domain_share(&self, domain: &str) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        let ns: u64 = self
            .rows
            .iter()
            .filter(|(t, _)| {
                t.strip_prefix(domain)
                    .is_some_and(|rest| rest.starts_with('/'))
            })
            .map(|(_, ns)| *ns)
            .sum();
        ns as f64 / self.total_ns as f64
    }

    /// Total CPU time in the snapshot.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Renders an OProfile-style "top functions" table.
    pub fn to_table(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<34} {:>9} {:>12}\n", "function", "%", "cpu"));
        for (tag, ns) in self.top(top) {
            out.push_str(&format!(
                "{:<34} {:>8.2}% {:>10.3}ms\n",
                tag,
                100.0 * *ns as f64 / self.total_ns.max(1) as f64,
                *ns as f64 / 1e6,
            ));
        }
        out
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table(15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut p = Profiler::new();
        p.record("user/a", 10);
        p.record("user/a", 20);
        p.record("kernel/b", 70);
        assert_eq!(p.total_ns(), 100);
        assert_eq!(p.ns_for("user/a"), 30);
        assert_eq!(p.ns_for("missing"), 0);
    }

    #[test]
    fn zero_charge_is_ignored() {
        let mut p = Profiler::new();
        p.record("user/a", 0);
        assert_eq!(p.total_ns(), 0);
        assert!(p.report().rows().is_empty());
    }

    #[test]
    fn report_sorted_descending_with_stable_ties() {
        let mut p = Profiler::new();
        p.record("user/z", 50);
        p.record("user/a", 50);
        p.record("user/big", 100);
        let r = p.report();
        let tags: Vec<_> = r.rows().iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, vec!["user/big", "user/a", "user/z"]);
    }

    #[test]
    fn shares() {
        let mut p = Profiler::new();
        p.record("user/parse", 30);
        p.record("kernel/ipc_send", 50);
        p.record("kernel/ipc_recv", 20);
        let r = p.report();
        assert!((r.share("user/parse") - 0.3).abs() < 1e-12);
        assert!((r.domain_share("kernel") - 0.7).abs() < 1e-12);
        assert_eq!(r.domain_share("nope"), 0.0);
        // "kern" must not match "kernel/..."
        assert_eq!(r.domain_share("kern"), 0.0);
    }

    #[test]
    fn empty_report_is_safe() {
        let r = Profiler::new().report();
        assert_eq!(r.share("x"), 0.0);
        assert_eq!(r.total_ns(), 0);
        assert!(r.top(5).is_empty());
    }

    #[test]
    fn merge_and_reset() {
        let mut a = Profiler::new();
        let mut b = Profiler::new();
        a.record("user/x", 10);
        b.record("user/x", 5);
        b.record("user/y", 5);
        a.merge(&b);
        assert_eq!(a.total_ns(), 20);
        assert_eq!(a.ns_for("user/x"), 15);
        a.reset();
        assert_eq!(a.total_ns(), 0);
    }

    #[test]
    fn table_contains_rows() {
        let mut p = Profiler::new();
        p.record("kernel/ipc_send", 120);
        let table = p.report().to_table(10);
        assert!(table.contains("kernel/ipc_send"));
        assert!(table.contains("100.00%"));
    }
}
