//! Measurement primitives: counters, gauges, and latency histograms.
//!
//! The workload harness reports throughput and latency percentiles the same
//! way the paper does (operations per second over a measurement window,
//! §4.2). [`Histogram`] uses logarithmic buckets with linear sub-buckets —
//! the HdrHistogram idea reduced to what a simulator needs — giving ~4%
//! relative error across nanoseconds-to-minutes without per-sample
//! allocation.
//!
//! # Examples
//!
//! ```
//! use siperf_simcore::stats::Histogram;
//! use siperf_simcore::time::SimDuration;
//!
//! let mut h = Histogram::new();
//! for ms in 1..=100 {
//!     h.record(SimDuration::from_millis(ms));
//! }
//! assert_eq!(h.count(), 100);
//! let p50 = h.percentile(50.0).as_millis();
//! assert!((45..=55).contains(&p50));
//! ```

use std::fmt;

use crate::time::SimDuration;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

const SUB_BUCKET_BITS: u32 = 5; // 32 linear sub-buckets per power of two
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const BUCKETS: usize = 64 - SUB_BUCKET_BITS as usize;

/// A log-linear histogram of durations.
///
/// Values are bucketed by the position of their highest set bit (log2) and
/// `2^5 = 32` linear sub-buckets within each power of two, bounding relative
/// quantile error to about 1/32.
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u32>,
    total: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS * SUB_BUCKETS],
            total: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn index_of(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let log = 63 - ns.leading_zeros();
        let bucket = (log - SUB_BUCKET_BITS + 1) as usize;
        let sub = ((ns >> (log - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        bucket * SUB_BUCKETS + sub
    }

    fn value_of(index: usize) -> u64 {
        let bucket = index / SUB_BUCKETS;
        let sub = index % SUB_BUCKETS;
        if bucket == 0 {
            return sub as u64;
        }
        // Midpoint-ish representative: the lower bound of the sub-bucket.
        ((SUB_BUCKETS + sub) as u64) << (bucket - 1)
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = Self::index_of(ns).min(BUCKETS * SUB_BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of all samples, zero when empty.
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.total as u128) as u64)
        }
    }

    /// Smallest recorded sample, zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded sample (bucket-exact), zero when empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Value at or below which `p` percent of samples fall.
    ///
    /// Returns zero for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let target = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c as u64;
            if seen >= target {
                return SimDuration::from_nanos(Self::value_of(i).min(self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Clears all samples.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum_ns = 0;
        self.min_ns = u64::MAX;
        self.max_ns = 0;
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("mean", &self.mean())
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .field("max", &self.max())
            .finish()
    }
}

/// Throughput over an explicit measurement window, as the paper reports
/// (operations per second of the measured phase only).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowRate {
    ops: u64,
    window_secs: f64,
}

impl WindowRate {
    /// Builds a rate from an operation count and a window length in seconds.
    /// A non-positive (or non-finite) window is stored as-is; [`per_sec`]
    /// reports 0 for it rather than NaN/infinity, so a degenerate window
    /// degrades to "no rate" instead of poisoning downstream arithmetic.
    ///
    /// [`per_sec`]: WindowRate::per_sec
    pub fn new(ops: u64, window_secs: f64) -> Self {
        WindowRate { ops, window_secs }
    }

    /// Operations per second; 0 when the window is empty or inverted.
    pub fn per_sec(self) -> f64 {
        if self.window_secs > 0.0 && self.window_secs.is_finite() {
            self.ops as f64 / self.window_secs
        } else {
            0.0
        }
    }

    /// Raw operation count.
    pub fn ops(self) -> u64 {
        self.ops
    }
}

impl fmt::Display for WindowRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0} ops/s", self.per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn histogram_exact_small_values() {
        let mut h = Histogram::new();
        for ns in 0..32u64 {
            h.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::from_nanos(31));
        // Small values are exact.
        assert_eq!(h.percentile(100.0), SimDuration::from_nanos(31));
    }

    #[test]
    fn histogram_percentiles_within_bucket_error() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        let p50 = h.percentile(50.0).as_micros() as f64;
        assert!((450.0..=550.0).contains(&p50), "p50 {p50}");
        let p99 = h.percentile(99.0).as_micros() as f64;
        assert!((930.0..=1000.0).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn histogram_mean_is_exact() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(100));
        h.record(SimDuration::from_nanos(300));
        assert_eq!(h.mean(), SimDuration::from_nanos(200));
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(50.0), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn merge_combines_samples() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_micros(15));
        assert_eq!(a.max(), SimDuration::from_micros(20));
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_secs(1));
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_nanos(u64::MAX));
        h.record(SimDuration::from_nanos(u64::MAX / 2));
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0).as_nanos() > 0);
    }

    #[test]
    fn window_rate() {
        let r = WindowRate::new(30_000, 2.0);
        assert_eq!(r.per_sec(), 15_000.0);
        assert_eq!(r.ops(), 30_000);
        assert_eq!(r.to_string(), "15000 ops/s");
    }

    #[test]
    fn window_rate_degenerate_windows_report_zero() {
        assert_eq!(WindowRate::new(1, 0.0).per_sec(), 0.0);
        assert_eq!(WindowRate::new(1, -3.0).per_sec(), 0.0);
        assert_eq!(WindowRate::new(1, f64::NAN).per_sec(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_out_of_range_panics() {
        Histogram::new().percentile(101.0);
    }
}
