//! Deterministic random-number generation for simulations.
//!
//! [`SimRng`] is a small, fast, fully deterministic generator
//! (xoshiro256++) with convenience methods for the distributions the
//! simulator needs (uniform ranges, Bernoulli trials, exponential
//! inter-arrival jitter). Reproducibility matters more than statistical
//! perfection here: the same seed must produce bit-identical simulations on
//! every platform, so we implement the generator ourselves rather than
//! depending on a crate whose stream might change between versions.
//!
//! # Examples
//!
//! ```
//! use siperf_simcore::rng::SimRng;
//!
//! let mut a = SimRng::seed_from_u64(7);
//! let mut b = SimRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.range_u64(10..20);
//! assert!((10..20).contains(&x));
//! ```

use std::ops::Range;

/// A deterministic xoshiro256++ pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator whose stream is fully determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated entity its own stream so entity ordering does not perturb
    /// other entities' randomness.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::seed_from_u64(self.next_u64() ^ salt.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_u64(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping (Lemire); bias is negligible
        // for simulation purposes and determinism is preserved.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// Uniform `usize` in the half-open range.
    pub fn range_usize(&mut self, range: Range<usize>) -> usize {
        self.range_u64(range.start as u64..range.end as u64) as usize
    }

    /// Bernoulli trial: true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Sample from an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "invalid mean: {mean}");
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0..i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds_and_covers() {
        let mut r = SimRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.range_u64(5..15);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should occur");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::seed_from_u64(6);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(10.0)).sum();
        let mean = sum / n as f64;
        assert!((9.0..11.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::seed_from_u64(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should change order");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from_u64(9).range_u64(5..5);
    }
}
