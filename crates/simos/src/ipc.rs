//! Bounded bidirectional IPC channels (unix socketpairs).
//!
//! OpenSER's TCP supervisor talks to each worker over unix sockets: new
//! connections are assigned by passing descriptors, and workers request
//! descriptors for connections they need to write to (§3.1). The channels
//! have **finite buffers** and OpenSER uses **blocking** sends and receives
//! on them — the combination the paper's §6 identifies as a deadlock: a
//! worker blocked receiving a response while the supervisor is blocked
//! sending an assignment to that same worker.
//!
//! A channel has two [`Side`]s; each side has its own receive queue fed by
//! the other side's sends.

use std::collections::VecDeque;

use crate::syscall::IpcMsg;

/// Identifies a channel within the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId(pub u32);

/// Which end of a channel a descriptor speaks from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// Conventionally the supervisor end.
    A,
    /// Conventionally the worker end.
    B,
}

impl Side {
    /// The opposite end.
    pub fn other(self) -> Side {
        match self {
            Side::A => Side::B,
            Side::B => Side::A,
        }
    }
}

/// A queued message, with any passed descriptor already resolved to the
/// kernel object it references (so the sender closing its copy cannot
/// invalidate the transfer).
#[derive(Debug, Clone)]
pub struct Parcel<K> {
    /// The message as sent (its `fd` field is meaningless in flight).
    pub msg: IpcMsg,
    /// Kernel object behind the passed descriptor, if one was attached.
    pub passed: Option<K>,
}

/// A bidirectional bounded channel. Generic over the kernel's descriptor
/// object type `K` to keep this module independent of the fd table.
#[derive(Debug)]
pub struct Channel<K> {
    to_a: VecDeque<Parcel<K>>,
    to_b: VecDeque<Parcel<K>>,
    capacity: usize,
}

impl<K> Channel<K> {
    /// Creates a channel whose per-direction buffer holds `capacity`
    /// messages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a zero-capacity unix socket cannot
    /// transfer anything).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be positive");
        Channel {
            to_a: VecDeque::new(),
            to_b: VecDeque::new(),
            capacity,
        }
    }

    fn queue_towards(&mut self, dst: Side) -> &mut VecDeque<Parcel<K>> {
        match dst {
            Side::A => &mut self.to_a,
            Side::B => &mut self.to_b,
        }
    }

    /// True if a send *from* `from` would block.
    pub fn full_towards(&self, from: Side) -> bool {
        let q = match from.other() {
            Side::A => &self.to_a,
            Side::B => &self.to_b,
        };
        q.len() >= self.capacity
    }

    /// Queues a parcel sent from `from`. Returns `false` (and drops nothing)
    /// if the buffer is full — the caller blocks the sender.
    pub fn send_from(&mut self, from: Side, parcel: Parcel<K>) -> Result<(), Parcel<K>> {
        if self.full_towards(from) {
            return Err(parcel);
        }
        self.queue_towards(from.other()).push_back(parcel);
        Ok(())
    }

    /// Dequeues the next parcel destined for `side`.
    pub fn recv_at(&mut self, side: Side) -> Option<Parcel<K>> {
        self.queue_towards(side).pop_front()
    }

    /// Number of messages waiting for `side`.
    pub fn pending_for(&self, side: Side) -> usize {
        match side {
            Side::A => self.to_a.len(),
            Side::B => self.to_b.len(),
        }
    }

    /// The per-direction capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parcel(kind: u32) -> Parcel<()> {
        Parcel {
            msg: IpcMsg::new(kind, 0, 0),
            passed: None,
        }
    }

    #[test]
    fn directions_are_independent() {
        let mut ch: Channel<()> = Channel::new(2);
        ch.send_from(Side::A, parcel(1)).unwrap();
        ch.send_from(Side::B, parcel(2)).unwrap();
        assert_eq!(ch.pending_for(Side::B), 1);
        assert_eq!(ch.pending_for(Side::A), 1);
        assert_eq!(ch.recv_at(Side::B).unwrap().msg.kind, 1);
        assert_eq!(ch.recv_at(Side::A).unwrap().msg.kind, 2);
        assert!(ch.recv_at(Side::A).is_none());
    }

    #[test]
    fn fifo_order() {
        let mut ch: Channel<()> = Channel::new(8);
        for k in 0..5 {
            ch.send_from(Side::A, parcel(k)).unwrap();
        }
        for k in 0..5 {
            assert_eq!(ch.recv_at(Side::B).unwrap().msg.kind, k);
        }
    }

    #[test]
    fn capacity_blocks_sender() {
        let mut ch: Channel<()> = Channel::new(1);
        ch.send_from(Side::A, parcel(1)).unwrap();
        assert!(ch.full_towards(Side::A));
        let rejected = ch.send_from(Side::A, parcel(2)).unwrap_err();
        assert_eq!(rejected.msg.kind, 2);
        // The other direction is unaffected.
        assert!(!ch.full_towards(Side::B));
        ch.recv_at(Side::B).unwrap();
        ch.send_from(Side::A, parcel(2)).unwrap();
    }

    #[test]
    fn side_other() {
        assert_eq!(Side::A.other(), Side::B);
        assert_eq!(Side::B.other(), Side::A);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: Channel<()> = Channel::new(0);
    }
}
