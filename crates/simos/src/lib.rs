//! # siperf-simos
//!
//! A simulated operating-system kernel for the SIPerf study — a
//! reproduction of *"Explaining the Impact of Network Transport Protocols on
//! SIP Proxy Performance"* (ISPASS 2008).
//!
//! The paper's findings are operating-system findings: blocking IPC round
//! trips between a supervisor and its workers, scheduler starvation cured by
//! `nice -20`, spinlocks that degrade into `sched_yield` storms, descriptor
//! budgets, and a deadlock between two blocking endpoints. This crate
//! provides the substrate on which all of those phenomena can *emerge*
//! rather than being scripted:
//!
//! * [`process`] — processes as resumable syscall state machines.
//! * [`syscall`] — the syscall surface: sockets, poll, IPC with descriptor
//!   passing, locks, timers.
//! * [`kernel`] — the preemptive priority scheduler over per-host cores,
//!   blocking semantics, wakeups, descriptor tables, and the global event
//!   loop; plus IPC deadlock detection.
//! * [`ipc`] — bounded bidirectional channels (unix socketpairs).
//! * [`lock`] — OpenSER-style spin-then-`sched_yield` locks.
//! * [`cost`] — the calibrated per-syscall CPU cost model.
//!
//! # Example
//!
//! A process that binds a UDP socket, waits for one datagram, and echoes it
//! back:
//!
//! ```
//! use siperf_simcore::time::{SimDuration, SimTime};
//! use siperf_simnet::NetConfig;
//! use siperf_simos::cost::CostModel;
//! use siperf_simos::kernel::Kernel;
//! use siperf_simos::process::{Nice, ResumeCtx};
//! use siperf_simos::syscall::{Syscall, SysResult};
//!
//! let mut kernel = Kernel::new(NetConfig::lan(), CostModel::free(), 1);
//! let host = kernel.add_host(1);
//! let mut step = 0;
//! kernel.spawn(host, Nice::NORMAL, "echo", Box::new(
//!     move |_ctx: &mut ResumeCtx, last: SysResult| {
//!         step += 1;
//!         match step {
//!             1 => Syscall::UdpBind { port: 5060 },
//!             2 => Syscall::UdpRecv { fd: last.expect_fd() },
//!             _ => Syscall::Exit,
//!         }
//!     },
//! ));
//! kernel.run_until(SimTime::ZERO + SimDuration::from_secs(1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod ipc;
pub mod kernel;
pub mod lock;
pub mod process;
pub mod syscall;

#[cfg(test)]
mod kernel_tests;

pub use cost::CostModel;
pub use ipc::{ChanId, Side};
pub use kernel::{FdKind, Kernel, KernelStats, RunOutcome};
pub use lock::LockId;
pub use process::{Nice, ProcId, Process, ResumeCtx};
pub use syscall::{Fd, IpcMsg, SysResult, Syscall};
