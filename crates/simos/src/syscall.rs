//! The syscall interface between simulated processes and the kernel.

use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::addr::{Port, SockAddr};
use siperf_simnet::endpoint::Bytes;
use siperf_simnet::error::Errno;

use crate::ipc::{ChanId, Side};
use crate::lock::LockId;

/// A per-process file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

impl std::fmt::Display for Fd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fd{}", self.0)
    }
}

/// A small fixed-shape IPC message, modelled on OpenSER's fixed-size control
/// messages between the TCP supervisor and its workers. The `fd` field
/// carries a descriptor `SCM_RIGHTS`-style: the kernel resolves the sender's
/// descriptor at send time and installs a fresh one in the receiver's table
/// at receive time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IpcMsg {
    /// Application-defined message type.
    pub kind: u32,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Descriptor to pass (sender-local on send, receiver-local on receive).
    pub fd: Option<Fd>,
}

impl IpcMsg {
    /// A message with no descriptor attached.
    pub fn new(kind: u32, a: u64, b: u64) -> Self {
        IpcMsg {
            kind,
            a,
            b,
            fd: None,
        }
    }

    /// A message passing a descriptor.
    pub fn with_fd(kind: u32, a: u64, b: u64, fd: Fd) -> Self {
        IpcMsg {
            kind,
            a,
            b,
            fd: Some(fd),
        }
    }
}

/// What a process asks the kernel to do next. Exactly one syscall is
/// outstanding per process; the kernel charges its CPU cost, performs it
/// (blocking the process if necessary), and resumes the process with a
/// [`SysResult`].
#[derive(Debug, Clone)]
pub enum Syscall {
    /// Burn CPU for `ns` nanoseconds, attributed to `tag` in the profile.
    /// This is how application-level work (parsing, table lookups, …) is
    /// modelled.
    Compute {
        /// Nanoseconds of CPU.
        ns: u64,
        /// Profile tag, conventionally `"user/<function>"`.
        tag: &'static str,
    },
    /// Sleep for a duration (timer arm + wakeup).
    Sleep(SimDuration),
    /// Sleep until an absolute instant (used for phased workloads).
    SleepUntil(SimTime),
    /// Give up the CPU, go to the back of the run queue.
    Yield,
    /// Terminate; all descriptors are closed.
    Exit,
    /// Bind a UDP socket on this process's host.
    UdpBind {
        /// Port to bind.
        port: Port,
    },
    /// Bind a UDP socket on an ephemeral port.
    UdpBindEphemeral,
    /// Send a datagram.
    UdpSend {
        /// Sending socket.
        fd: Fd,
        /// Destination.
        to: SockAddr,
        /// Payload.
        data: Bytes,
    },
    /// Receive a datagram, blocking until one arrives.
    UdpRecv {
        /// Receiving socket.
        fd: Fd,
    },
    /// Open a TCP listening socket.
    TcpListen {
        /// Port to listen on.
        port: Port,
        /// Accept-queue depth.
        backlog: usize,
    },
    /// Connect to a remote listener, blocking until the handshake resolves.
    TcpConnect {
        /// Destination.
        to: SockAddr,
    },
    /// Accept a connection, blocking until one is queued.
    TcpAccept {
        /// Listening socket.
        fd: Fd,
    },
    /// Write a whole buffer to a stream, blocking on backpressure.
    TcpSend {
        /// Connected socket.
        fd: Fd,
        /// Payload.
        data: Bytes,
    },
    /// Read up to `max` bytes, blocking until data or EOF.
    TcpRecv {
        /// Connected socket.
        fd: Fd,
        /// Maximum bytes to return.
        max: usize,
    },
    /// Bind an SCTP one-to-many endpoint.
    SctpBind {
        /// Port to bind.
        port: Port,
    },
    /// Bind an SCTP endpoint on an ephemeral port.
    SctpBindEphemeral,
    /// Send one SCTP message (association managed by the kernel).
    SctpSend {
        /// Sending endpoint.
        fd: Fd,
        /// Destination.
        to: SockAddr,
        /// Whole message.
        data: Bytes,
    },
    /// Receive one SCTP message, blocking until one arrives.
    SctpRecv {
        /// Receiving endpoint.
        fd: Fd,
    },
    /// Close a descriptor.
    Close {
        /// Descriptor to close.
        fd: Fd,
    },
    /// Wait until any of `fds` is readable (epoll-style). Returns the ready
    /// subset, or [`SysResult::TimedOut`] after `timeout`.
    Poll {
        /// Descriptors to watch.
        fds: Vec<Fd>,
        /// Optional timeout.
        timeout: Option<SimDuration>,
    },
    /// Attach to one side of an IPC channel, returning a descriptor.
    IpcAttach {
        /// Channel created at world-building time.
        chan: ChanId,
        /// Which side this process speaks from.
        side: Side,
    },
    /// Send an IPC message, blocking while the channel is full — the
    /// blocking send at the heart of the paper's §6 deadlock.
    IpcSend {
        /// Channel descriptor from [`Syscall::IpcAttach`].
        fd: Fd,
        /// Message (may carry a descriptor).
        msg: IpcMsg,
    },
    /// Receive an IPC message, blocking while the channel is empty.
    IpcRecv {
        /// Channel descriptor.
        fd: Fd,
    },
    /// Acquire a shared-memory spinlock. Contention is modelled as OpenSER
    /// implements it: bounded spin, then `sched_yield`, then retry.
    LockAcquire {
        /// The lock.
        lock: LockId,
    },
    /// Release a lock this process holds.
    LockRelease {
        /// The lock.
        lock: LockId,
    },
}

/// The completion value delivered to [`crate::process::Process::resume`].
#[derive(Debug, Clone)]
pub enum SysResult {
    /// First activation of the process; no syscall has completed.
    Start,
    /// The syscall completed with nothing to return.
    Done,
    /// A descriptor (bind/listen/connect/attach).
    NewFd(Fd),
    /// A descriptor plus the ephemeral port that was chosen.
    NewFdPort {
        /// The descriptor.
        fd: Fd,
        /// The bound port.
        port: Port,
    },
    /// A received datagram.
    Datagram {
        /// Sender address.
        from: SockAddr,
        /// Payload.
        data: Bytes,
    },
    /// Bytes read from a TCP stream.
    Data(Vec<u8>),
    /// The TCP peer closed; the stream is drained.
    Eof,
    /// An accepted connection.
    Accepted {
        /// Descriptor for the new connection.
        fd: Fd,
        /// Peer address.
        peer: SockAddr,
    },
    /// A received SCTP message.
    SctpMsg {
        /// Source association address.
        from: SockAddr,
        /// Whole message.
        data: Bytes,
    },
    /// A received IPC message; `fd` (if any) is receiver-local.
    Ipc(IpcMsg),
    /// The ready descriptors from a poll.
    Ready(Vec<Fd>),
    /// A poll timed out with nothing ready.
    TimedOut,
    /// The syscall failed.
    Err(Errno),
}

impl SysResult {
    /// Unwraps a new descriptor, panicking otherwise — for process state
    /// machines at points where any other result is a logic error.
    ///
    /// # Panics
    ///
    /// Panics if the result is not [`SysResult::NewFd`] or
    /// [`SysResult::NewFdPort`].
    pub fn expect_fd(&self) -> Fd {
        match self {
            SysResult::NewFd(fd) => *fd,
            SysResult::NewFdPort { fd, .. } => *fd,
            other => panic!("expected fd result, got {other:?}"),
        }
    }

    /// True if this is an error result.
    pub fn is_err(&self) -> bool {
        matches!(self, SysResult::Err(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_msg_constructors() {
        let m = IpcMsg::new(1, 2, 3);
        assert_eq!(m.fd, None);
        let m = IpcMsg::with_fd(1, 2, 3, Fd(7));
        assert_eq!(m.fd, Some(Fd(7)));
    }

    #[test]
    fn expect_fd_unwraps() {
        assert_eq!(SysResult::NewFd(Fd(3)).expect_fd(), Fd(3));
        assert_eq!(
            SysResult::NewFdPort {
                fd: Fd(4),
                port: 99
            }
            .expect_fd(),
            Fd(4)
        );
    }

    #[test]
    #[should_panic(expected = "expected fd result")]
    fn expect_fd_panics_on_other() {
        SysResult::Done.expect_fd();
    }

    #[test]
    fn is_err() {
        assert!(SysResult::Err(Errno::BadFd).is_err());
        assert!(!SysResult::Done.is_err());
    }
}
