//! Behavioural tests for the simulated kernel: scheduling, blocking I/O,
//! IPC with descriptor passing, locks, preemption, and deadlock detection.

use std::cell::RefCell;
use std::rc::Rc;

use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::addr::SockAddr;
use siperf_simnet::endpoint::bytes_from;
use siperf_simnet::NetConfig;

use crate::cost::CostModel;
use crate::ipc::Side;
use crate::kernel::{Kernel, RunOutcome};
use crate::process::{Nice, ResumeCtx};
use crate::syscall::{Fd, IpcMsg, SysResult, Syscall};

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

fn free_kernel() -> Kernel {
    Kernel::new(NetConfig::lan(), CostModel::free(), 9)
}

#[test]
fn compute_and_exit_advance_time_and_account_cpu() {
    let mut k = free_kernel();
    let h = k.add_host(1);
    let mut step = 0;
    let pid = k.spawn(
        h,
        Nice::NORMAL,
        "worker",
        Box::new(move |_: &mut ResumeCtx, _| {
            step += 1;
            if step <= 3 {
                Syscall::Compute {
                    ns: 1_000_000,
                    tag: "user/work",
                }
            } else {
                Syscall::Exit
            }
        }),
    );
    let outcome = k.run_until(secs(1));
    assert!(matches!(outcome, RunOutcome::Quiescent { .. }));
    assert!(k.proc_cpu_ns(pid) >= 3_000_000);
    assert_eq!(k.profiler(h).ns_for("user/work"), 3_000_000);
    assert!(k.stats().syscalls >= 4);
}

#[test]
fn udp_echo_roundtrip_between_hosts() {
    let mut k = free_kernel();
    let server_host = k.add_host(1);
    let client_host = k.add_host(1);
    let got = Rc::new(RefCell::new(Vec::<Vec<u8>>::new()));

    // Server: bind 5060, echo one datagram back, exit.
    let mut sstep = 0;
    let mut sfd = Fd(0);
    k.spawn(
        server_host,
        Nice::NORMAL,
        "server",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            sstep += 1;
            match sstep {
                1 => Syscall::UdpBind { port: 5060 },
                2 => {
                    sfd = last.expect_fd();
                    Syscall::UdpRecv { fd: sfd }
                }
                3 => match last {
                    SysResult::Datagram { from, data } => Syscall::UdpSend {
                        fd: sfd,
                        to: from,
                        data,
                    },
                    other => panic!("expected datagram, got {other:?}"),
                },
                _ => Syscall::Exit,
            }
        }),
    );

    // Client: bind ephemeral, ping, await echo.
    let got2 = got.clone();
    let mut cstep = 0;
    let mut cfd = Fd(0);
    k.spawn(
        client_host,
        Nice::NORMAL,
        "client",
        Box::new(move |ctx: &mut ResumeCtx, last: SysResult| {
            cstep += 1;
            match cstep {
                1 => Syscall::UdpBindEphemeral,
                2 => {
                    cfd = last.expect_fd();
                    Syscall::UdpSend {
                        fd: cfd,
                        to: SockAddr::new(siperf_simnet::HostId(0), 5060),
                        data: bytes_from(b"ping".to_vec()),
                    }
                }
                3 => Syscall::UdpRecv { fd: cfd },
                4 => {
                    if let SysResult::Datagram { data, .. } = last {
                        got2.borrow_mut().push(data.to_vec());
                    }
                    assert!(ctx.now > SimTime::ZERO);
                    Syscall::Exit
                }
                _ => Syscall::Exit,
            }
        }),
    );

    k.run_until(secs(2));
    assert_eq!(got.borrow().as_slice(), &[b"ping".to_vec()]);
    assert_eq!(k.net().stats().udp_sent, 2);
}

#[test]
fn tcp_connect_accept_send_recv_eof() {
    let mut k = free_kernel();
    let sh = k.add_host(1);
    let ch = k.add_host(1);
    let log = Rc::new(RefCell::new(Vec::<String>::new()));

    let log_s = log.clone();
    let mut sstep = 0;
    let mut conn = Fd(0);
    k.spawn(
        sh,
        Nice::NORMAL,
        "server",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            sstep += 1;
            match sstep {
                1 => Syscall::TcpListen {
                    port: 5060,
                    backlog: 8,
                },
                2 => Syscall::TcpAccept {
                    fd: last.expect_fd(),
                },
                3 => match last {
                    SysResult::Accepted { fd, .. } => {
                        conn = fd;
                        Syscall::TcpRecv { fd: conn, max: 64 }
                    }
                    other => panic!("expected accept, got {other:?}"),
                },
                4 => match last {
                    SysResult::Data(d) => {
                        log_s
                            .borrow_mut()
                            .push(format!("got:{}", String::from_utf8(d).unwrap()));
                        Syscall::TcpSend {
                            fd: conn,
                            data: bytes_from(b"pong".to_vec()),
                        }
                    }
                    other => panic!("expected data, got {other:?}"),
                },
                5 => Syscall::TcpRecv { fd: conn, max: 64 },
                6 => {
                    assert!(matches!(last, SysResult::Eof), "expected eof, got {last:?}");
                    log_s.borrow_mut().push("eof".into());
                    Syscall::Close { fd: conn }
                }
                _ => Syscall::Exit,
            }
        }),
    );

    let log_c = log.clone();
    let mut cstep = 0;
    let mut cfd = Fd(0);
    k.spawn(
        ch,
        Nice::NORMAL,
        "client",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            cstep += 1;
            match cstep {
                1 => Syscall::TcpConnect {
                    to: SockAddr::new(siperf_simnet::HostId(0), 5060),
                },
                2 => {
                    cfd = last.expect_fd();
                    Syscall::TcpSend {
                        fd: cfd,
                        data: bytes_from(b"ping".to_vec()),
                    }
                }
                3 => Syscall::TcpRecv { fd: cfd, max: 64 },
                4 => {
                    if let SysResult::Data(d) = last {
                        log_c
                            .borrow_mut()
                            .push(format!("reply:{}", String::from_utf8(d).unwrap()));
                    }
                    Syscall::Close { fd: cfd }
                }
                _ => Syscall::Exit,
            }
        }),
    );

    // Not quiescent at 2 s: the client's active close leaves a TIME_WAIT
    // port-release event pending at +60 s.
    let outcome = k.run_until(secs(2));
    assert!(matches!(outcome, RunOutcome::ReachedTime));
    let log = log.borrow();
    assert!(log.contains(&"got:ping".to_string()), "{log:?}");
    assert!(log.contains(&"reply:pong".to_string()), "{log:?}");
    assert!(log.contains(&"eof".to_string()), "{log:?}");
    // All endpoints released after the closes.
    assert_eq!(k.net().endpoints_on(siperf_simnet::HostId(1)), 0);
}

#[test]
fn connect_to_nobody_fails_and_autocloses() {
    let mut k = free_kernel();
    let _server = k.add_host(1);
    let ch = k.add_host(1);
    let saw_err = Rc::new(RefCell::new(false));
    let saw = saw_err.clone();
    let mut step = 0;
    k.spawn(
        ch,
        Nice::NORMAL,
        "client",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            step += 1;
            match step {
                1 => Syscall::TcpConnect {
                    to: SockAddr::new(siperf_simnet::HostId(0), 5060),
                },
                _ => {
                    *saw.borrow_mut() = last.is_err();
                    Syscall::Exit
                }
            }
        }),
    );
    k.run_until(secs(2));
    assert!(*saw_err.borrow());
    // The half-open endpoint was cleaned up by the kernel.
    assert_eq!(k.net().endpoints_on(siperf_simnet::HostId(1)), 0);
    assert_eq!(
        k.net().ports_available(siperf_simnet::HostId(1)),
        NetConfig::lan().ephemeral_count()
    );
}

#[test]
fn poll_times_out_then_reports_ready_fd() {
    let mut k = free_kernel();
    let h = k.add_host(1);
    let ch = k.add_host(1);
    let events = Rc::new(RefCell::new(Vec::<String>::new()));

    let ev = events.clone();
    let mut step = 0;
    let mut fd_a = Fd(0);
    let mut fd_b = Fd(0);
    k.spawn(
        h,
        Nice::NORMAL,
        "poller",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            step += 1;
            match step {
                1 => Syscall::UdpBind { port: 1000 },
                2 => {
                    fd_a = last.expect_fd();
                    Syscall::UdpBind { port: 2000 }
                }
                3 => {
                    fd_b = last.expect_fd();
                    Syscall::Poll {
                        fds: vec![fd_a, fd_b],
                        timeout: Some(SimDuration::from_millis(5)),
                    }
                }
                4 => {
                    assert!(matches!(last, SysResult::TimedOut), "got {last:?}");
                    ev.borrow_mut().push("timeout".into());
                    Syscall::Poll {
                        fds: vec![fd_a, fd_b],
                        timeout: None,
                    }
                }
                5 => {
                    match last {
                        SysResult::Ready(fds) => {
                            assert_eq!(fds, vec![fd_b]);
                            ev.borrow_mut().push("ready".into());
                        }
                        other => panic!("expected ready, got {other:?}"),
                    }
                    Syscall::UdpRecv { fd: fd_b }
                }
                _ => Syscall::Exit,
            }
        }),
    );

    let mut cstep = 0;
    let mut cfd = Fd(0);
    k.spawn(
        ch,
        Nice::NORMAL,
        "sender",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            cstep += 1;
            match cstep {
                1 => Syscall::UdpBindEphemeral,
                2 => {
                    cfd = last.expect_fd();
                    Syscall::Sleep(SimDuration::from_millis(20))
                }
                3 => Syscall::UdpSend {
                    fd: cfd,
                    to: SockAddr::new(siperf_simnet::HostId(0), 2000),
                    data: bytes_from(vec![42]),
                },
                _ => Syscall::Exit,
            }
        }),
    );

    k.run_until(secs(1));
    assert_eq!(
        events.borrow().as_slice(),
        &["timeout".to_string(), "ready".to_string()]
    );
}

#[test]
fn ipc_fd_passing_transfers_working_descriptor() {
    let mut k = free_kernel();
    let h = k.add_host(2);
    let server_host = k.add_host(1);
    let chan = k.create_ipc_pair(16);
    let received = Rc::new(RefCell::new(Vec::<u16>::new()));

    // Receiver of the datagram (on another host).
    let rec = received.clone();
    let mut sstep = 0;
    k.spawn(
        server_host,
        Nice::NORMAL,
        "sink",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            sstep += 1;
            match sstep {
                1 => Syscall::UdpBind { port: 5060 },
                2 => Syscall::UdpRecv {
                    fd: last.expect_fd(),
                },
                3 => {
                    if let SysResult::Datagram { from, .. } = last {
                        rec.borrow_mut().push(from.port);
                    }
                    Syscall::Exit
                }
                _ => Syscall::Exit,
            }
        }),
    );

    // Passer: creates a UDP socket, ships it over IPC, closes its copy.
    let port_holder = Rc::new(RefCell::new(0u16));
    let ph = port_holder.clone();
    let mut pstep = 0;
    let mut ipc_fd = Fd(0);
    let mut sock = Fd(0);
    k.spawn(
        h,
        Nice::NORMAL,
        "passer",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            pstep += 1;
            match pstep {
                1 => Syscall::IpcAttach {
                    chan,
                    side: Side::A,
                },
                2 => {
                    ipc_fd = last.expect_fd();
                    Syscall::UdpBindEphemeral
                }
                3 => {
                    if let SysResult::NewFdPort { fd, port } = last {
                        sock = fd;
                        *ph.borrow_mut() = port;
                    }
                    Syscall::IpcSend {
                        fd: ipc_fd,
                        msg: IpcMsg::with_fd(7, 0, 0, sock),
                    }
                }
                4 => Syscall::Close { fd: sock }, // sender's copy goes away
                _ => Syscall::Exit,
            }
        }),
    );

    // User: receives the descriptor and sends through it.
    let mut ustep = 0;
    k.spawn(
        h,
        Nice::NORMAL,
        "user",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            ustep += 1;
            match ustep {
                1 => Syscall::IpcAttach {
                    chan,
                    side: Side::B,
                },
                2 => Syscall::IpcRecv {
                    fd: last.expect_fd(),
                },
                3 => match last {
                    SysResult::Ipc(msg) => {
                        assert_eq!(msg.kind, 7);
                        Syscall::UdpSend {
                            fd: msg.fd.expect("descriptor passed"),
                            to: SockAddr::new(siperf_simnet::HostId(1), 5060),
                            data: bytes_from(b"via passed fd".to_vec()),
                        }
                    }
                    other => panic!("expected ipc msg, got {other:?}"),
                },
                _ => Syscall::Exit,
            }
        }),
    );

    k.run_until(secs(2));
    // The sink saw a datagram sourced from the *passer's* ephemeral port —
    // the descriptor really was transferred, and survived the passer's
    // close because the kernel refcounts the underlying socket.
    assert_eq!(received.borrow().as_slice(), &[*port_holder.borrow()]);
}

#[test]
fn bounded_ipc_blocks_sender_until_drained() {
    let mut k = free_kernel();
    let h = k.add_host(2);
    let chan = k.create_ipc_pair(2);
    let sent = Rc::new(RefCell::new(0u32));
    let drained = Rc::new(RefCell::new(0u32));

    let s = sent.clone();
    let mut pstep = 0;
    let mut fd = Fd(0);
    k.spawn(
        h,
        Nice::NORMAL,
        "producer",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            pstep += 1;
            match pstep {
                1 => Syscall::IpcAttach {
                    chan,
                    side: Side::A,
                },
                2..=6 => {
                    if pstep == 2 {
                        fd = last.expect_fd();
                    } else {
                        *s.borrow_mut() += 1;
                    }
                    Syscall::IpcSend {
                        fd,
                        msg: IpcMsg::new(pstep, 0, 0),
                    }
                }
                _ => {
                    *s.borrow_mut() += 1;
                    Syscall::Exit
                }
            }
        }),
    );

    let d = drained.clone();
    let mut cstep = 0;
    let mut cfd = Fd(0);
    k.spawn(
        h,
        Nice::NORMAL,
        "consumer",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            cstep += 1;
            match cstep {
                1 => Syscall::IpcAttach {
                    chan,
                    side: Side::B,
                },
                2 => {
                    cfd = last.expect_fd();
                    // Let the producer hit the capacity limit first.
                    Syscall::Sleep(SimDuration::from_millis(50))
                }
                3..=7 => {
                    if cstep > 3 {
                        *d.borrow_mut() += 1;
                    }
                    Syscall::IpcRecv { fd: cfd }
                }
                _ => {
                    *d.borrow_mut() += 1;
                    Syscall::Exit
                }
            }
        }),
    );

    k.run_until(secs(2));
    assert_eq!(*sent.borrow(), 5, "all sends eventually complete");
    assert_eq!(*drained.borrow(), 5);
}

#[test]
fn ipc_deadlock_is_detected() {
    let mut k = free_kernel();
    let h = k.add_host(2);
    let chan = k.create_ipc_pair(1);

    // Both sides fill their direction and then block on a second send;
    // neither ever receives: the §6 supervisor/worker deadlock in miniature.
    for side in [Side::A, Side::B] {
        let mut step = 0;
        let mut fd = Fd(0);
        k.spawn(
            h,
            Nice::NORMAL,
            format!("peer-{side:?}"),
            Box::new(move |_: &mut ResumeCtx, last: SysResult| {
                step += 1;
                match step {
                    1 => Syscall::IpcAttach { chan, side },
                    _ => {
                        if step == 2 {
                            fd = last.expect_fd();
                        }
                        Syscall::IpcSend {
                            fd,
                            msg: IpcMsg::new(step, 0, 0),
                        }
                    }
                }
            }),
        );
    }

    let outcome = k.run_until(secs(1));
    assert!(matches!(outcome, RunOutcome::Quiescent { .. }));
    let cycle = k.find_ipc_deadlock().expect("deadlock should be detected");
    assert_eq!(cycle.len(), 2);
    assert_eq!(k.blocked_summary().len(), 2);
}

#[test]
fn lock_contention_yields_and_eventually_acquires() {
    let mut k = Kernel::new(NetConfig::lan(), CostModel::opteron_2006(), 5);
    let h = k.add_host(2);
    let lock = k.create_lock("shared_table");
    let finished = Rc::new(RefCell::new(0u32));

    for i in 0..2 {
        let fin = finished.clone();
        let mut step = 0;
        k.spawn(
            h,
            Nice::NORMAL,
            format!("locker{i}"),
            Box::new(move |_: &mut ResumeCtx, _| {
                step += 1;
                match step {
                    1 => Syscall::LockAcquire { lock },
                    2 => Syscall::Compute {
                        ns: 5_000_000, // hold the lock for 5 ms
                        tag: "user/critical_section",
                    },
                    3 => Syscall::LockRelease { lock },
                    _ => {
                        *fin.borrow_mut() += 1;
                        Syscall::Exit
                    }
                }
            }),
        );
    }

    k.run_until(secs(1));
    assert_eq!(*finished.borrow(), 2);
    let l = k.lock(lock);
    assert_eq!(l.acquisitions, 2);
    assert!(l.contentions > 0, "the second locker must have spun");
    assert!(k.stats().lock_yields > 0);
    assert!(k.profiler(h).ns_for("kernel/sched_yield") > 0);
}

#[test]
fn high_priority_process_preempts_cpu_hogs() {
    // One core, one infinite hog, plus a sleeper that must run promptly
    // after its timer despite the hog — but only at high priority.
    fn latency_with(nice: Nice) -> SimDuration {
        let mut k = Kernel::new(NetConfig::lan(), CostModel::opteron_2006(), 5);
        let h = k.add_host(1);
        k.spawn(
            h,
            Nice::NORMAL,
            "hog",
            Box::new(move |_: &mut ResumeCtx, _| Syscall::Compute {
                ns: 1_000_000,
                tag: "user/hog",
            }),
        );
        let woke_at = Rc::new(RefCell::new(SimTime::ZERO));
        let woke = woke_at.clone();
        let mut step = 0;
        k.spawn(
            h,
            nice,
            "sleeper",
            Box::new(move |ctx: &mut ResumeCtx, _| {
                step += 1;
                match step {
                    1 => Syscall::Sleep(SimDuration::from_millis(10)),
                    _ => {
                        *woke.borrow_mut() = ctx.now;
                        Syscall::Exit
                    }
                }
            }),
        );
        k.run_until(SimTime::ZERO + SimDuration::from_millis(800));
        let woke = *woke_at.borrow();
        assert!(woke > SimTime::ZERO, "sleeper never ran");
        woke - (SimTime::ZERO + SimDuration::from_millis(10))
    }

    let fast = latency_with(Nice::HIGHEST);
    let slow = latency_with(Nice::NORMAL);
    assert!(
        fast < SimDuration::from_millis(1),
        "high priority should preempt promptly, took {fast}"
    );
    assert!(
        slow > fast * 10,
        "normal priority should wait behind the hog's quantum: slow={slow} fast={fast}"
    );
}

#[test]
fn equal_priority_hogs_share_core_via_quantum() {
    let mut k = Kernel::new(NetConfig::lan(), CostModel::opteron_2006(), 5);
    let h = k.add_host(1);
    let mut pids = Vec::new();
    for i in 0..2 {
        pids.push(k.spawn(
            h,
            Nice::NORMAL,
            format!("hog{i}"),
            Box::new(move |_: &mut ResumeCtx, _| Syscall::Compute {
                ns: 1_000_000,
                tag: "user/hog",
            }),
        ));
    }
    k.run_until(SimTime::ZERO + SimDuration::from_millis(400));
    let a = k.proc_cpu_ns(pids[0]);
    let b = k.proc_cpu_ns(pids[1]);
    assert!(a > 100_000_000, "hog0 starved: {a}");
    assert!(b > 100_000_000, "hog1 starved: {b}");
    // Timeslice-grained sharing, not per-burst ping-pong: few switches.
    assert!(
        k.stats().context_switches < 32,
        "too many context switches: {}",
        k.stats().context_switches
    );
}

#[test]
fn identical_seeds_replay_identically() {
    fn run() -> (u64, u64, u64) {
        let mut k = free_kernel();
        let sh = k.add_host(2);
        let ch = k.add_host(2);
        // A small mesh of senders and one sink.
        let mut sstep = 0;
        k.spawn(
            sh,
            Nice::NORMAL,
            "sink",
            Box::new(move |_: &mut ResumeCtx, last: SysResult| {
                sstep += 1;
                match sstep {
                    1 => Syscall::UdpBind { port: 5060 },
                    2 => Syscall::UdpRecv {
                        fd: last.expect_fd(),
                    },
                    n if n < 30 => Syscall::UdpRecv { fd: Fd(0) },
                    _ => Syscall::Exit,
                }
            }),
        );
        for i in 0..4 {
            let mut cstep = 0;
            let mut fd = Fd(0);
            k.spawn(
                ch,
                Nice::NORMAL,
                format!("gen{i}"),
                Box::new(move |_: &mut ResumeCtx, last: SysResult| {
                    cstep += 1;
                    match cstep {
                        1 => Syscall::UdpBindEphemeral,
                        n if n < 9 => {
                            if n == 2 {
                                fd = last.expect_fd();
                            }
                            Syscall::UdpSend {
                                fd,
                                to: SockAddr::new(siperf_simnet::HostId(0), 5060),
                                data: bytes_from(vec![i as u8]),
                            }
                        }
                        _ => Syscall::Exit,
                    }
                }),
            );
        }
        k.run_until(secs(1));
        (
            k.stats().syscalls,
            k.profiler(sh).total_ns(),
            k.net().stats().udp_sent,
        )
    }
    assert_eq!(run(), run());
}

#[test]
fn close_releases_endpoint_budget() {
    let mut k = free_kernel();
    let h = k.add_host(1);
    let mut step = 0;
    let mut fd = Fd(0);
    k.spawn(
        h,
        Nice::NORMAL,
        "binder",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            step += 1;
            match step {
                1 => Syscall::UdpBind { port: 5060 },
                2 => {
                    fd = last.expect_fd();
                    Syscall::Close { fd }
                }
                3 => {
                    assert!(matches!(last, SysResult::Done));
                    // Double close is an error.
                    Syscall::Close { fd }
                }
                4 => {
                    assert!(last.is_err());
                    Syscall::Exit
                }
                _ => Syscall::Exit,
            }
        }),
    );
    k.run_until(secs(1));
    assert_eq!(k.net().endpoints_on(siperf_simnet::HostId(0)), 0);
}

#[test]
fn exit_closes_leaked_descriptors() {
    let mut k = free_kernel();
    let h = k.add_host(1);
    let mut step = 0;
    k.spawn(
        h,
        Nice::NORMAL,
        "leaker",
        Box::new(move |_: &mut ResumeCtx, _| {
            step += 1;
            match step {
                1 => Syscall::UdpBind { port: 5060 },
                2 => Syscall::UdpBind { port: 5061 },
                _ => Syscall::Exit,
            }
        }),
    );
    k.run_until(secs(1));
    assert_eq!(k.net().endpoints_on(siperf_simnet::HostId(0)), 0);
}

#[test]
fn sctp_message_roundtrip_via_syscalls() {
    let mut k = free_kernel();
    let sh = k.add_host(1);
    let ch = k.add_host(1);
    let got = Rc::new(RefCell::new(Vec::<Vec<u8>>::new()));

    let g = got.clone();
    let mut sstep = 0;
    let mut sfd = Fd(0);
    k.spawn(
        sh,
        Nice::NORMAL,
        "server",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            sstep += 1;
            match sstep {
                1 => Syscall::SctpBind { port: 5060 },
                2 => {
                    sfd = last.expect_fd();
                    Syscall::SctpRecv { fd: sfd }
                }
                3 => match last {
                    SysResult::SctpMsg { from, data } => {
                        g.borrow_mut().push(data.to_vec());
                        Syscall::SctpSend {
                            fd: sfd,
                            to: from,
                            data: bytes_from(b"ack".to_vec()),
                        }
                    }
                    other => panic!("expected sctp msg, got {other:?}"),
                },
                _ => Syscall::Exit,
            }
        }),
    );

    let g2 = got.clone();
    let mut cstep = 0;
    let mut cfd = Fd(0);
    k.spawn(
        ch,
        Nice::NORMAL,
        "client",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            cstep += 1;
            match cstep {
                1 => Syscall::SctpBindEphemeral,
                2 => {
                    cfd = last.expect_fd();
                    Syscall::SctpSend {
                        fd: cfd,
                        to: SockAddr::new(siperf_simnet::HostId(0), 5060),
                        data: bytes_from(b"hello".to_vec()),
                    }
                }
                3 => Syscall::SctpRecv { fd: cfd },
                4 => {
                    if let SysResult::SctpMsg { data, .. } = last {
                        g2.borrow_mut().push(data.to_vec());
                    }
                    Syscall::Exit
                }
                _ => Syscall::Exit,
            }
        }),
    );

    k.run_until(secs(2));
    assert_eq!(
        got.borrow().as_slice(),
        &[b"hello".to_vec(), b"ack".to_vec()]
    );
}

#[test]
fn threads_share_one_descriptor_table() {
    let mut k = free_kernel();
    let h = k.add_host(2);
    let sink_host = k.add_host(1);
    let got = Rc::new(RefCell::new(Vec::<Vec<u8>>::new()));

    // Sink on another host.
    let g = got.clone();
    let mut sstep = 0;
    k.spawn(
        sink_host,
        Nice::NORMAL,
        "sink",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            sstep += 1;
            match sstep {
                1 => Syscall::UdpBind { port: 5060 },
                2 => Syscall::UdpRecv {
                    fd: last.expect_fd(),
                },
                3 => {
                    if let SysResult::Datagram { data, .. } = last {
                        g.borrow_mut().push(data.to_vec());
                    }
                    Syscall::Exit
                }
                _ => Syscall::Exit,
            }
        }),
    );

    // Thread A binds a socket and parks; it never sends anything.
    let fd_cell = Rc::new(RefCell::new(None::<Fd>));
    let fc = fd_cell.clone();
    let mut astep = 0;
    let binder = k.spawn(
        h,
        Nice::NORMAL,
        "binder",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            astep += 1;
            match astep {
                1 => Syscall::UdpBindEphemeral,
                2 => {
                    *fc.borrow_mut() = Some(last.expect_fd());
                    Syscall::Sleep(SimDuration::from_millis(50))
                }
                _ => Syscall::Exit,
            }
        }),
    );

    // Thread B (same fd table) uses the descriptor thread A created,
    // without any descriptor passing.
    let fc2 = fd_cell.clone();
    let mut bstep = 0;
    k.spawn_thread(
        Nice::NORMAL,
        "user_thread",
        Box::new(move |_: &mut ResumeCtx, _| {
            bstep += 1;
            match bstep {
                1 => Syscall::Sleep(SimDuration::from_millis(10)),
                2 => match *fc2.borrow() {
                    Some(fd) => Syscall::UdpSend {
                        fd,
                        to: SockAddr::new(siperf_simnet::HostId(1), 5060),
                        data: bytes_from(b"from sibling thread".to_vec()),
                    },
                    None => panic!("binder thread should have run first"),
                },
                _ => Syscall::Exit,
            }
        }),
        binder,
    );

    k.run_until(secs(1));
    assert_eq!(got.borrow().as_slice(), &[b"from sibling thread".to_vec()]);
}

#[test]
fn shared_fd_table_survives_first_thread_exit() {
    let mut k = free_kernel();
    let h = k.add_host(1);

    // Thread A binds then exits immediately; its exit must NOT close the
    // shared descriptor, because thread B is still alive.
    let fd_cell = Rc::new(RefCell::new(None::<Fd>));
    let fc = fd_cell.clone();
    let mut astep = 0;
    let a = k.spawn(
        h,
        Nice::NORMAL,
        "short_lived",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            astep += 1;
            match astep {
                1 => Syscall::UdpBind { port: 7000 },
                _ => {
                    *fc.borrow_mut() = Some(last.expect_fd());
                    Syscall::Exit
                }
            }
        }),
    );
    let ok = Rc::new(RefCell::new(false));
    let ok2 = ok.clone();
    let fc2 = fd_cell.clone();
    let mut bstep = 0;
    k.spawn_thread(
        Nice::NORMAL,
        "long_lived",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            bstep += 1;
            match bstep {
                1 => Syscall::Sleep(SimDuration::from_millis(20)),
                2 => Syscall::UdpSend {
                    fd: fd_cell.borrow().expect("bound"),
                    to: SockAddr::new(siperf_simnet::HostId(0), 7000),
                    data: bytes_from(vec![1]),
                },
                3 => {
                    // Send succeeded: the descriptor was still valid after
                    // the sibling's exit.
                    *ok2.borrow_mut() = !last.is_err();
                    Syscall::Exit
                }
                _ => Syscall::Exit,
            }
        }),
        a,
    );
    let _ = fc2;
    k.run_until(secs(1));
    assert!(
        *ok.borrow(),
        "shared descriptor must outlive the first thread"
    );
    // Once the whole group exited, the endpoint is gone.
    assert_eq!(k.net().endpoints_on(siperf_simnet::HostId(0)), 0);
}

#[test]
fn preemption_statistics_are_recorded() {
    let mut k = Kernel::new(NetConfig::lan(), CostModel::opteron_2006(), 5);
    let h = k.add_host(1);
    k.spawn(
        h,
        Nice::NORMAL,
        "hog",
        Box::new(move |_: &mut ResumeCtx, _| Syscall::Compute {
            ns: 2_000_000,
            tag: "user/hog",
        }),
    );
    let mut step = 0;
    k.spawn(
        h,
        Nice::HIGHEST,
        "vip",
        Box::new(move |_: &mut ResumeCtx, _| {
            step += 1;
            if step > 20 {
                Syscall::Exit
            } else {
                Syscall::Sleep(SimDuration::from_millis(5))
            }
        }),
    );
    k.run_until(SimTime::ZERO + SimDuration::from_millis(200));
    assert!(
        k.stats().preemptions >= 10,
        "the vip must preempt the hog on most wakeups: {:?}",
        k.stats()
    );
}

#[test]
fn kill_frees_core_and_force_releases_locks() {
    let mut k = free_kernel();
    let h = k.add_host(1);
    let lock = k.create_lock("table");

    // The hog grabs the lock and computes forever while holding it.
    let mut hstep = 0;
    let hog = k.spawn(
        h,
        Nice::NORMAL,
        "hog",
        Box::new(move |_: &mut ResumeCtx, _| {
            hstep += 1;
            if hstep == 1 {
                Syscall::LockAcquire { lock }
            } else {
                Syscall::Compute {
                    ns: 1_000_000,
                    tag: "user/hog",
                }
            }
        }),
    );
    k.run_until(SimTime::ZERO + SimDuration::from_millis(10));
    assert!(k.alive(hog));
    assert_eq!(k.lock(lock).holder(), Some(hog));

    assert!(k.kill(hog), "first kill reports success");
    assert!(!k.alive(hog));
    assert!(!k.kill(hog), "second kill is a no-op");
    assert_eq!(
        k.lock(lock).holder(),
        None,
        "crashed holder must be evicted"
    );

    // With the core and the lock free, a newcomer runs to completion.
    let done = Rc::new(RefCell::new(false));
    let done2 = done.clone();
    let mut step = 0;
    k.spawn(
        h,
        Nice::NORMAL,
        "heir",
        Box::new(move |_: &mut ResumeCtx, _| {
            step += 1;
            match step {
                1 => Syscall::LockAcquire { lock },
                2 => Syscall::LockRelease { lock },
                _ => {
                    *done2.borrow_mut() = true;
                    Syscall::Exit
                }
            }
        }),
    );
    let outcome = k.run_until(secs(1));
    assert!(matches!(outcome, RunOutcome::Quiescent { .. }));
    assert!(*done.borrow());
}

#[test]
fn kill_cancels_pending_timers_and_closes_descriptors() {
    let mut k = free_kernel();
    let h = k.add_host(1);
    let woke = Rc::new(RefCell::new(false));
    let woke2 = woke.clone();
    let mut step = 0;
    let pid = k.spawn(
        h,
        Nice::NORMAL,
        "sleeper",
        Box::new(move |_: &mut ResumeCtx, _| {
            step += 1;
            match step {
                1 => Syscall::UdpBind { port: 6000 },
                2 => Syscall::Sleep(SimDuration::from_millis(50)),
                _ => {
                    *woke2.borrow_mut() = true;
                    Syscall::Exit
                }
            }
        }),
    );
    // Let it bind and fall asleep, then crash it mid-sleep.
    k.run_until(SimTime::ZERO + SimDuration::from_millis(5));
    assert_eq!(k.net().endpoints_on(h), 1);
    assert!(k.kill(pid));
    assert_eq!(
        k.net().endpoints_on(h),
        0,
        "descriptors must be reclaimed on kill"
    );
    let outcome = k.run_until(secs(1));
    assert!(matches!(outcome, RunOutcome::Quiescent { .. }));
    assert!(!*woke.borrow(), "the cancelled timer must never fire");
}

#[test]
fn dup_to_keeps_a_socket_alive_across_the_donor_exit() {
    let mut k = free_kernel();
    let h = k.add_host(2);
    let peer = k.add_host(1);

    // Receiver on the peer host records what arrives on port 7000.
    let got = Rc::new(RefCell::new(Vec::<u8>::new()));
    let got2 = got.clone();
    let mut rstep = 0;
    k.spawn(
        peer,
        Nice::NORMAL,
        "receiver",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            rstep += 1;
            match rstep {
                1 => Syscall::UdpBind { port: 7000 },
                2 => {
                    let fd = last.expect_fd();
                    Syscall::UdpRecv { fd }
                }
                _ => {
                    if let SysResult::Datagram { data, .. } = last {
                        got2.borrow_mut().extend_from_slice(&data);
                    }
                    Syscall::Exit
                }
            }
        }),
    );

    // Donor binds a socket, parks forever; the driver dups its descriptor
    // into a fresh worker (the respawn path) and then kills the donor.
    let donor_fd = Rc::new(RefCell::new(None::<Fd>));
    let donor_fd2 = donor_fd.clone();
    let mut dstep = 0;
    let donor = k.spawn(
        h,
        Nice::NORMAL,
        "donor",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            dstep += 1;
            match dstep {
                1 => Syscall::UdpBind { port: 6001 },
                _ => {
                    if dstep == 2 {
                        *donor_fd2.borrow_mut() = Some(last.expect_fd());
                    }
                    Syscall::Sleep(SimDuration::from_secs(10))
                }
            }
        }),
    );
    k.run_until(SimTime::ZERO + SimDuration::from_millis(5));
    let dfd = donor_fd.borrow().expect("donor bound");

    let heir_fd = Rc::new(RefCell::new(None::<Fd>));
    let heir_fd2 = heir_fd.clone();
    let mut hstep = 0;
    let heir = k.spawn(
        h,
        Nice::NORMAL,
        "heir",
        Box::new(move |_: &mut ResumeCtx, _| {
            hstep += 1;
            match hstep {
                1 => Syscall::UdpSend {
                    fd: heir_fd2.borrow().expect("dup before first run"),
                    to: SockAddr::new(siperf_simnet::HostId(1), 7000),
                    data: bytes_from(b"hi".to_vec()),
                },
                _ => Syscall::Exit,
            }
        }),
    );
    let dup = k.dup_to(donor, dfd, heir).expect("dup_to");
    *heir_fd.borrow_mut() = Some(dup);
    assert!(k.kill(donor), "donor crashes before the heir ever runs");

    k.run_until(secs(1));
    assert_eq!(&*got.borrow(), b"hi", "the dup'd socket must still work");
}
