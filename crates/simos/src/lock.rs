//! Shared-memory spinlocks, modelled as OpenSER implements them.
//!
//! OpenSER guards its shared structures (the transaction table, the TCP
//! connection hash table, the timer list) with userspace spinlocks that
//! spin briefly and then call `sched_yield` when the lock stays held. Under
//! contention this floods the run queue — the paper's §5.2 profile found
//! "the top ten kernel functions are all in the Linux scheduler" while the
//! supervisor scanned the connection table under its lock.
//!
//! The kernel charges [`crate::cost::CostModel::lock_spin_yield`] per failed
//! attempt and requeues the process, so that scheduler storm emerges rather
//! than being scripted.

use crate::process::ProcId;

/// Identifies a lock within the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LockId(pub u32);

/// One spinlock's state plus contention accounting.
#[derive(Debug)]
pub struct Lock {
    /// Human-readable name for reports ("tcpconn_hash", "txn_table", …).
    pub name: &'static str,
    holder: Option<ProcId>,
    /// Successful acquisitions.
    pub acquisitions: u64,
    /// Failed attempts (spin + yield episodes).
    pub contentions: u64,
}

impl Lock {
    /// Creates a free lock.
    pub fn new(name: &'static str) -> Self {
        Lock {
            name,
            holder: None,
            acquisitions: 0,
            contentions: 0,
        }
    }

    /// Attempts acquisition for `pid`. Returns `true` on success.
    pub fn try_acquire(&mut self, pid: ProcId) -> bool {
        match self.holder {
            None => {
                self.holder = Some(pid);
                self.acquisitions += 1;
                true
            }
            Some(holder) => {
                assert_ne!(holder, pid, "lock {:?} re-acquired by holder", self.name);
                self.contentions += 1;
                false
            }
        }
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is not the holder — always an application bug worth
    /// failing loudly on.
    pub fn release(&mut self, pid: ProcId) {
        assert_eq!(
            self.holder,
            Some(pid),
            "lock {:?} released by non-holder",
            self.name
        );
        self.holder = None;
    }

    /// Releases the lock if `pid` holds it, returning whether it did.
    ///
    /// This is crash cleanup — the robust-futex `EOWNERDEAD` path — used by
    /// the kernel when a process is killed mid-critical-section. Unlike
    /// [`release`](Self::release) it never panics, because a killed holder
    /// is a fault being injected, not an application bug.
    pub fn force_release(&mut self, pid: ProcId) -> bool {
        if self.holder == Some(pid) {
            self.holder = None;
            true
        } else {
            false
        }
    }

    /// The current holder, if any.
    pub fn holder(&self) -> Option<ProcId> {
        self.holder
    }

    /// Fraction of attempts that failed; a direct contention signal for the
    /// ablation reports.
    pub fn contention_ratio(&self) -> f64 {
        let attempts = self.acquisitions + self.contentions;
        if attempts == 0 {
            0.0
        } else {
            self.contentions as f64 / attempts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut l = Lock::new("test");
        let p1 = ProcId(1);
        let p2 = ProcId(2);
        assert!(l.try_acquire(p1));
        assert_eq!(l.holder(), Some(p1));
        assert!(!l.try_acquire(p2));
        l.release(p1);
        assert!(l.try_acquire(p2));
    }

    #[test]
    fn contention_accounting() {
        let mut l = Lock::new("test");
        assert!(l.try_acquire(ProcId(1)));
        for _ in 0..3 {
            assert!(!l.try_acquire(ProcId(2)));
        }
        assert_eq!(l.acquisitions, 1);
        assert_eq!(l.contentions, 3);
        assert!((l.contention_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn fresh_lock_has_zero_contention() {
        assert_eq!(Lock::new("x").contention_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "released by non-holder")]
    fn release_by_non_holder_panics() {
        let mut l = Lock::new("test");
        l.try_acquire(ProcId(1));
        l.release(ProcId(2));
    }

    #[test]
    #[should_panic(expected = "re-acquired by holder")]
    fn reentrant_acquire_panics() {
        let mut l = Lock::new("test");
        l.try_acquire(ProcId(1));
        l.try_acquire(ProcId(1));
    }
}
