//! The kernel cost model: virtual CPU charged per syscall.
//!
//! Every syscall a simulated process issues consumes CPU time on one of its
//! host's cores. The constants here are calibrated to a 2006-era 2.4 GHz
//! Opteron running Linux 2.6.20 (the paper's testbed, §4.1): micro-benchmarks
//! of that generation put a trivial syscall at a few hundred nanoseconds,
//! UDP send/receive at a handful of microseconds, TCP slightly above UDP,
//! and unix-socket IPC with `SCM_RIGHTS` descriptor passing at several
//! microseconds per message — the numbers behind the paper's observation
//! that fd-request IPC consumed 12% of CPU time.
//!
//! Calibration targets *ratios*, not absolute throughput; see
//! `EXPERIMENTS.md` for the validation against the paper's figures.

/// Per-syscall CPU costs in nanoseconds.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Floor for any charged burst; guarantees virtual time advances.
    pub compute_min: u64,
    /// Process creation (charged to the spawned process's first burst).
    pub spawn: u64,
    /// Added to every syscall: mode switch, entry/exit.
    pub syscall_base: u64,
    /// `sendto` on a UDP socket: copy, route, enqueue on the NIC.
    pub udp_send: u64,
    /// `recvfrom` on a UDP socket with data ready.
    pub udp_recv: u64,
    /// Binding a socket.
    pub bind: u64,
    /// `send` on an established TCP socket (segmentation, cwnd bookkeeping).
    pub tcp_send: u64,
    /// `recv` on a TCP socket with data ready.
    pub tcp_recv: u64,
    /// Client-side `connect` processing (not counting the round trip).
    pub tcp_connect: u64,
    /// `accept` plus socket setup on the server.
    pub tcp_accept: u64,
    /// Tearing down a TCP socket.
    pub tcp_close: u64,
    /// Closing a non-TCP descriptor.
    pub close: u64,
    /// SCTP message send (UDP-like plus association lookup).
    pub sctp_send: u64,
    /// SCTP message receive.
    pub sctp_recv: u64,
    /// `epoll_wait`-style readiness query, empty set.
    pub poll_base: u64,
    /// Added per ready descriptor returned by a poll.
    pub poll_per_ready: u64,
    /// Writing a control message to a unix socket (IPC).
    pub ipc_send: u64,
    /// Reading a control message from a unix socket.
    pub ipc_recv: u64,
    /// Extra cost when a message carries a descriptor (`SCM_RIGHTS`
    /// reference installation in the receiver's table).
    pub ipc_fd_install: u64,
    /// Attaching to an IPC channel (socketpair setup share).
    pub ipc_attach: u64,
    /// Uncontended userspace lock acquisition.
    pub lock_acquire: u64,
    /// Lock release.
    pub lock_release: u64,
    /// One failed lock attempt: the bounded spin plus the `sched_yield`
    /// syscall OpenSER's lock implementation falls back to.
    pub lock_spin_yield: u64,
    /// Explicit `sched_yield`.
    pub sched_yield: u64,
    /// Arming a timer / going to sleep.
    pub sleep: u64,
    /// Scheduler work when a process is put on a core.
    pub context_switch: u64,
    /// Scheduler work to wake and re-run a blocked process (runqueue
    /// insertion, cache warmup share).
    pub wake_retry: u64,
}

impl CostModel {
    /// The calibration used for all paper-reproduction experiments.
    pub fn opteron_2006() -> Self {
        CostModel {
            compute_min: 10,
            spawn: 50_000,
            syscall_base: 300,
            udp_send: 4_700,
            udp_recv: 4_300,
            bind: 2_000,
            tcp_send: 10_200,
            tcp_recv: 9_200,
            tcp_connect: 14_000,
            tcp_accept: 11_000,
            tcp_close: 3_500,
            close: 800,
            sctp_send: 4_800,
            sctp_recv: 4_200,
            poll_base: 1_800,
            poll_per_ready: 150,
            ipc_send: 5_200,
            ipc_recv: 4_600,
            ipc_fd_install: 4_200,
            ipc_attach: 2_000,
            lock_acquire: 120,
            lock_release: 90,
            lock_spin_yield: 1_400,
            sched_yield: 900,
            sleep: 600,
            context_switch: 1_100,
            wake_retry: 650,
        }
    }

    /// A cost model where everything is nearly free — for functional tests
    /// that assert behaviour, not performance.
    pub fn free() -> Self {
        CostModel {
            compute_min: 10,
            spawn: 10,
            syscall_base: 10,
            udp_send: 10,
            udp_recv: 10,
            bind: 10,
            tcp_send: 10,
            tcp_recv: 10,
            tcp_connect: 10,
            tcp_accept: 10,
            tcp_close: 10,
            close: 10,
            sctp_send: 10,
            sctp_recv: 10,
            poll_base: 10,
            poll_per_ready: 0,
            ipc_send: 10,
            ipc_recv: 10,
            ipc_fd_install: 10,
            ipc_attach: 10,
            lock_acquire: 10,
            lock_release: 10,
            lock_spin_yield: 10,
            sched_yield: 10,
            sleep: 10,
            context_switch: 10,
            wake_retry: 10,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::opteron_2006()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_orderings_hold() {
        let c = CostModel::opteron_2006();
        // TCP data path is costlier than UDP but in the same league — the
        // paper's core premise that raw protocol overhead is not the story.
        assert!(c.tcp_send > c.udp_send);
        assert!(c.tcp_send < 5 * c.udp_send / 2 + 1_000);
        assert!(c.tcp_recv > c.udp_recv);
        // Connection setup clearly exceeds per-message costs.
        assert!(c.tcp_connect + c.tcp_accept > 2 * c.tcp_send);
        // A full fd-request IPC round trip (send+recv both sides + install)
        // rivals the entire UDP forward path.
        let ipc_round = 2 * (c.ipc_send + c.ipc_recv) + c.ipc_fd_install;
        assert!(ipc_round > c.udp_send + c.udp_recv);
        // SCTP sits between UDP and TCP.
        assert!(c.sctp_send >= c.udp_send && c.sctp_send <= c.tcp_send);
    }

    #[test]
    fn free_model_is_fast_but_nonzero() {
        let c = CostModel::free();
        assert!(c.compute_min > 0);
        assert!(c.udp_send <= 10);
    }
}
