//! The process abstraction.
//!
//! A simulated process is a state machine that advances one syscall at a
//! time — the same shape as OpenSER's worker event loops. The kernel calls
//! [`Process::resume`] with the result of the previous syscall; the process
//! does any in-memory work (mutating its own state and any `Rc`-shared
//! application state) and returns the next syscall. CPU consumption is
//! modelled exclusively through syscall costs and explicit
//! [`crate::syscall::Syscall::Compute`] bursts.

use siperf_simcore::time::SimTime;
use siperf_simnet::addr::HostId;

use crate::syscall::{SysResult, Syscall};

/// Identifies a process within the kernel. Never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Scheduling priority as a Unix nice value: −20 (highest) to 19 (lowest).
///
/// The paper's §4.3 fix of running the TCP supervisor at nice −20 is
/// expressed directly with this type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Nice(pub i8);

impl Nice {
    /// Default timesharing priority.
    pub const NORMAL: Nice = Nice(0);
    /// The highest priority (the paper's supervisor setting).
    pub const HIGHEST: Nice = Nice(-20);
}

impl Default for Nice {
    fn default() -> Self {
        Nice::NORMAL
    }
}

/// Context handed to a process on every resume.
#[derive(Debug)]
pub struct ResumeCtx {
    /// Current virtual time.
    pub now: SimTime,
    /// The process's own id.
    pub pid: ProcId,
    /// The host this process runs on.
    pub host: HostId,
}

/// A simulated process.
///
/// Implementations are state machines: store where you are, advance on each
/// call. Returning [`Syscall::Exit`] terminates the process.
pub trait Process {
    /// Advances the process: `last` is the completion of the previously
    /// returned syscall ([`SysResult::Start`] on first activation). Returns
    /// the next syscall to perform.
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall;
}

/// Blanket impl so closures can serve as quick test processes.
impl<F> Process for F
where
    F: FnMut(&mut ResumeCtx, SysResult) -> Syscall,
{
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        self(ctx, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nice_ordering() {
        assert!(Nice::HIGHEST < Nice::NORMAL);
        assert!(Nice(-5) < Nice(0));
        assert!(Nice(0) < Nice(19));
        assert_eq!(Nice::default(), Nice::NORMAL);
    }

    #[test]
    fn closure_is_a_process() {
        let mut calls = 0;
        let mut ctx = ResumeCtx {
            now: SimTime::ZERO,
            pid: ProcId(0),
            host: HostId(0),
        };
        {
            let mut p = |_ctx: &mut ResumeCtx, _r: SysResult| {
                calls += 1;
                Syscall::Exit
            };
            let s = p.resume(&mut ctx, SysResult::Start);
            assert!(matches!(s, Syscall::Exit));
        }
        assert_eq!(calls, 1);
    }
}
