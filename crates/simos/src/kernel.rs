//! The simulated kernel: scheduler, blocking syscalls, descriptors, IPC.
//!
//! [`Kernel`] ties everything together. It owns the network fabric, all
//! processes, the per-host CPU schedulers, IPC channels, and locks, and it
//! runs the single global event queue. The model it implements:
//!
//! * **Preemptive priority scheduling** on N cores per host. Ready queues
//!   are FIFO per nice level; a waking process preempts a strictly
//!   lower-priority running process; a process that keeps issuing syscalls
//!   keeps its core until its timeslice expires (Linux 2.6 O(1)-scheduler
//!   behaviour at the granularity that matters here). This is the machinery
//!   behind the paper's §4.3 supervisor-starvation finding.
//! * **Syscalls cost CPU**: every syscall is a charged burst on a core,
//!   attributed to a profile tag per host — reproducing the paper's
//!   OProfile evidence (§5).
//! * **Blocking semantics**: receive on empty, send on full (TCP
//!   backpressure and bounded IPC), accept on empty, connect until the
//!   handshake resolves. Blocked processes wake through readiness outcomes
//!   from the network or channel activity, then pay a scheduler wake cost
//!   and wait for a core — so IPC round-trip latency includes real queueing
//!   delay, the heart of the paper's TCP results.
//! * **Spinlock contention as sched_yield storms**, as OpenSER's userspace
//!   locks behave (§5.2).

use std::collections::{BTreeMap, HashMap, VecDeque};

use siperf_simcore::profile::Profiler;
use siperf_simcore::queue::EventQueue;
use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::addr::HostId;
use siperf_simnet::endpoint::EpId;
use siperf_simnet::error::Errno;
use siperf_simnet::event::{NetEvent, NetOutcome};
use siperf_simnet::net::Network;
use siperf_simnet::NetConfig;

use crate::cost::CostModel;
use crate::ipc::{ChanId, Channel, Parcel, Side};
use crate::lock::{Lock, LockId};
use crate::process::{Nice, ProcId, Process, ResumeCtx};
use crate::syscall::{Fd, IpcMsg, SysResult, Syscall};

/// What a descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdKind {
    /// A UDP socket.
    Udp(EpId),
    /// A TCP listening socket.
    TcpListen(EpId),
    /// A TCP connection.
    Tcp(EpId),
    /// An SCTP endpoint.
    Sctp(EpId),
    /// One side of an IPC channel.
    Ipc(ChanId, Side),
}

impl FdKind {
    fn endpoint(self) -> Option<EpId> {
        match self {
            FdKind::Udp(e) | FdKind::TcpListen(e) | FdKind::Tcp(e) | FdKind::Sctp(e) => Some(e),
            FdKind::Ipc(..) => None,
        }
    }
}

/// Why a process is not runnable.
#[derive(Debug, Clone)]
enum WaitCond {
    EpRead(EpId),
    EpWrite(EpId),
    Connect { ep: EpId, fd: Fd },
    IpcRead(ChanId, Side),
    IpcWrite(ChanId, Side),
    Poll(Vec<Fd>),
    Sleep,
}

/// Key under which waiters register for wakeups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WaitKey {
    EpRead(EpId),
    EpWrite(EpId),
    IpcRead(ChanId, Side),
    IpcWrite(ChanId, Side),
}

#[derive(Debug)]
enum ProcState {
    Ready,
    Running {
        core: usize,
        end: SimTime,
        start: SimTime,
    },
    Blocked(WaitCond),
    Exited,
}

#[derive(Debug)]
enum Pending {
    /// First activation: deliver [`SysResult::Start`].
    Fresh,
    /// A syscall to (re)apply once the current burst completes.
    Apply(Syscall),
    /// A result to hand straight to the process.
    Deliver(SysResult),
}

/// A descriptor table; threads share one, processes own one each.
type FdTable = std::rc::Rc<std::cell::RefCell<Vec<Option<FdKind>>>>;

struct ProcEntry {
    proc: Option<Box<dyn Process>>,
    name: String,
    host: HostId,
    nice: Nice,
    state: ProcState,
    fds: FdTable,
    pending: Pending,
    remaining_ns: u64,
    burst_tag: &'static str,
    token: u64,
    quantum_left: u64,
    cpu_ns: u64,
}

struct HostSched {
    cores: Vec<Option<ProcId>>,
    last_on_core: Vec<Option<ProcId>>,
    ready: BTreeMap<i8, VecDeque<ProcId>>,
    busy_ns: u64,
}

impl HostSched {
    fn idle_core(&self) -> Option<usize> {
        self.cores.iter().position(|c| c.is_none())
    }

    fn pop_ready(&mut self) -> Option<ProcId> {
        let (&nice, _) = self.ready.iter().find(|(_, q)| !q.is_empty())?;
        let q = self.ready.get_mut(&nice).unwrap();
        q.pop_front()
    }

    fn best_ready_nice(&self) -> Option<i8> {
        self.ready
            .iter()
            .find(|(_, q)| !q.is_empty())
            .map(|(&n, _)| n)
    }
}

/// Kernel events on the global queue.
enum KEvent {
    Burst { pid: ProcId, token: u64 },
    Timer { pid: ProcId, token: u64 },
    Net(NetEvent),
}

/// Why [`Kernel::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Virtual time reached the requested instant.
    ReachedTime,
    /// The event queue drained: nothing can ever happen again (all
    /// processes exited, blocked, or deadlocked).
    Quiescent {
        /// When the last event ran.
        last_event: SimTime,
    },
}

/// Scheduler-level statistics for a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelStats {
    /// Process-to-core placements that switched processes.
    pub context_switches: u64,
    /// Priority preemptions performed.
    pub preemptions: u64,
    /// Failed lock attempts (spin + sched_yield episodes).
    pub lock_yields: u64,
    /// Blocked-process wakeups.
    pub wakeups: u64,
    /// Syscalls executed.
    pub syscalls: u64,
}

/// The simulated operating system.
pub struct Kernel {
    net: Network,
    queue: EventQueue<KEvent>,
    now: SimTime,
    procs: Vec<ProcEntry>,
    scheds: Vec<HostSched>,
    chans: Vec<Channel<FdKind>>,
    chan_attach: HashMap<(ChanId, Side), Vec<ProcId>>,
    locks: Vec<Lock>,
    cost: CostModel,
    profilers: Vec<Profiler>,
    waiters_one: HashMap<WaitKey, VecDeque<ProcId>>,
    poll_waiters: HashMap<WaitKey, Vec<ProcId>>,
    connect_waiters: HashMap<EpId, (ProcId, Fd)>,
    ep_refs: HashMap<EpId, u32>,
    stats: KernelStats,
    /// Timeslice for SCHED_OTHER processes.
    quantum: u64,
}

impl Kernel {
    /// Builds a kernel over a fresh network.
    pub fn new(net_cfg: NetConfig, cost: CostModel, seed: u64) -> Self {
        Kernel {
            net: Network::new(net_cfg, seed),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            procs: Vec::new(),
            scheds: Vec::new(),
            chans: Vec::new(),
            chan_attach: HashMap::new(),
            locks: Vec::new(),
            cost,
            profilers: Vec::new(),
            waiters_one: HashMap::new(),
            poll_waiters: HashMap::new(),
            connect_waiters: HashMap::new(),
            ep_refs: HashMap::new(),
            stats: KernelStats::default(),
            quantum: 100_000_000, // 100 ms, Linux 2.6 default timeslice
        }
    }

    // ------------------------------------------------------------- setup

    /// Registers a machine with `cores` CPUs.
    pub fn add_host(&mut self, cores: usize) -> HostId {
        assert!(cores > 0, "a host needs at least one core");
        let id = self.net.add_host();
        self.scheds.push(HostSched {
            cores: vec![None; cores],
            last_on_core: vec![None; cores],
            ready: BTreeMap::new(),
            busy_ns: 0,
        });
        self.profilers.push(Profiler::new());
        id
    }

    /// Creates a bounded bidirectional IPC channel (a unix socketpair whose
    /// per-direction buffer holds `capacity` messages).
    pub fn create_ipc_pair(&mut self, capacity: usize) -> ChanId {
        let id = ChanId(self.chans.len() as u32);
        self.chans.push(Channel::new(capacity));
        id
    }

    /// Creates a named shared-memory spinlock.
    pub fn create_lock(&mut self, name: &'static str) -> LockId {
        let id = LockId(self.locks.len() as u32);
        self.locks.push(Lock::new(name));
        id
    }

    /// Spawns a process on `host` at priority `nice`. It first runs after
    /// the spawn cost elapses.
    pub fn spawn(
        &mut self,
        host: HostId,
        nice: Nice,
        name: impl Into<String>,
        proc: Box<dyn Process>,
    ) -> ProcId {
        let fds = FdTable::default();
        self.spawn_inner(host, nice, name.into(), proc, fds)
    }

    /// Spawns a *thread*: a process sharing the descriptor table of
    /// `share_with`. This models the §6 multi-threaded server architecture,
    /// where any thread can use any descriptor without passing it over IPC.
    pub fn spawn_thread(
        &mut self,
        nice: Nice,
        name: impl Into<String>,
        proc: Box<dyn Process>,
        share_with: ProcId,
    ) -> ProcId {
        let (host, fds) = {
            let peer = &self.procs[share_with.0 as usize];
            (peer.host, peer.fds.clone())
        };
        self.spawn_inner(host, nice, name.into(), proc, fds)
    }

    fn spawn_inner(
        &mut self,
        host: HostId,
        nice: Nice,
        name: String,
        proc: Box<dyn Process>,
        fds: FdTable,
    ) -> ProcId {
        let pid = ProcId(self.procs.len() as u32);
        self.procs.push(ProcEntry {
            proc: Some(proc),
            name,
            host,
            nice,
            state: ProcState::Ready,
            fds,
            pending: Pending::Fresh,
            remaining_ns: self.cost.spawn,
            burst_tag: "kernel/fork",
            token: 0,
            quantum_left: self.quantum,
            cpu_ns: 0,
        });
        self.enqueue_ready(pid, false);
        self.dispatch(host);
        pid
    }

    /// Creates a bound UDP socket at world-building time and installs a
    /// descriptor for it in each of `pids` — the fork-inheritance pattern:
    /// OpenSER's main process binds the SIP socket once and every forked
    /// worker inherits it.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn setup_shared_udp(
        &mut self,
        host: HostId,
        port: siperf_simnet::Port,
        pids: &[ProcId],
    ) -> Result<Vec<Fd>, Errno> {
        let ep = self.net.udp_bind(host, port)?;
        Ok(pids
            .iter()
            .map(|&pid| self.install_fd(pid, FdKind::Udp(ep)))
            .collect())
    }

    /// Creates a bound SCTP endpoint at world-building time and installs a
    /// descriptor in each of `pids` (fork inheritance, as with UDP).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn setup_shared_sctp(
        &mut self,
        host: HostId,
        port: siperf_simnet::Port,
        pids: &[ProcId],
    ) -> Result<Vec<Fd>, Errno> {
        let ep = self.net.sctp_bind(host, port)?;
        Ok(pids
            .iter()
            .map(|&pid| self.install_fd(pid, FdKind::Sctp(ep)))
            .collect())
    }

    // ----------------------------------------------------- fault injection

    /// Kills a process immediately (`SIGKILL`): frees its core or ready-queue
    /// slot, cancels in-flight bursts and timers, force-releases any locks it
    /// held (robust-futex semantics), closes its descriptors unless threads
    /// still share the table, and marks it exited. Returns `false` if the
    /// process had already exited.
    ///
    /// The process object gets no notification — exactly like a real
    /// `SIGKILL`, which is what makes worker-crash experiments honest: any
    /// in-flight transaction state dies with the process.
    pub fn kill(&mut self, pid: ProcId) -> bool {
        let state = std::mem::replace(&mut self.procs[pid.0 as usize].state, ProcState::Exited);
        match state {
            ProcState::Exited => return false,
            ProcState::Running { core, start, .. } => {
                // Account the partial burst, then free the core.
                let elapsed = (self.now - start).as_nanos();
                let (host, tag) = {
                    let e = &mut self.procs[pid.0 as usize];
                    e.cpu_ns += elapsed;
                    (e.host, e.burst_tag)
                };
                self.scheds[host.0 as usize].cores[core] = None;
                self.scheds[host.0 as usize].busy_ns += elapsed;
                self.profilers[host.0 as usize].record(tag, elapsed);
            }
            ProcState::Ready => {
                let host = self.procs[pid.0 as usize].host;
                for q in self.scheds[host.0 as usize].ready.values_mut() {
                    q.retain(|&p| p != pid);
                }
            }
            ProcState::Blocked(WaitCond::Connect { ep, .. }) => {
                self.connect_waiters.remove(&ep);
            }
            // Stale waiters_one/poll_waiters entries are tolerated: wakers
            // re-check that the process is still validly blocked.
            ProcState::Blocked(_) => {}
        }
        self.procs[pid.0 as usize].token += 1; // cancels burst/timer events
        for lock in &mut self.locks {
            lock.force_release(pid);
        }
        let host = self.procs[pid.0 as usize].host;
        self.exit_proc(pid);
        self.dispatch(host);
        true
    }

    /// True until a process exits (or is killed).
    pub fn alive(&self, pid: ProcId) -> bool {
        !matches!(self.procs[pid.0 as usize].state, ProcState::Exited)
    }

    /// Duplicates a descriptor of `from` into `to`'s table (the supervisor
    /// re-sharing an inherited socket with a respawned worker). The
    /// underlying object gains a reference, exactly as with fd passing.
    ///
    /// # Errors
    ///
    /// [`Errno::BadFd`] if `from_fd` is not open in `from`.
    pub fn dup_to(&mut self, from: ProcId, from_fd: Fd, to: ProcId) -> Result<Fd, Errno> {
        let kind = self.fd_kind(from, from_fd)?;
        Ok(self.install_fd(to, kind))
    }

    /// Applies a fault to the network fabric at the current virtual time,
    /// then drains the readiness outcomes it produced so blocked processes
    /// observe the fault immediately (an injected RST must wake blocked
    /// readers just like a real one).
    pub fn inject_fault<R>(&mut self, f: impl FnOnce(&mut Network, SimTime) -> R) -> R {
        let now = self.now;
        let r = f(&mut self.net, now);
        self.drain_net();
        r
    }

    // ---------------------------------------------------------- accessors

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read-only view of the network fabric.
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// Scheduler statistics.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// The per-host CPU profile (OProfile equivalent).
    pub fn profiler(&self, host: HostId) -> &Profiler {
        &self.profilers[host.0 as usize]
    }

    /// Total CPU nanoseconds consumed by a process.
    pub fn proc_cpu_ns(&self, pid: ProcId) -> u64 {
        self.procs[pid.0 as usize].cpu_ns
    }

    /// The name a process was spawned with.
    pub fn proc_name(&self, pid: ProcId) -> &str {
        &self.procs[pid.0 as usize].name
    }

    /// Lock state for reports.
    pub fn lock(&self, id: LockId) -> &Lock {
        &self.locks[id.0 as usize]
    }

    /// Busy core-nanoseconds accumulated on a host.
    pub fn host_busy_ns(&self, host: HostId) -> u64 {
        self.scheds[host.0 as usize].busy_ns
    }

    /// Core count of a host.
    pub fn host_cores(&self, host: HostId) -> usize {
        self.scheds[host.0 as usize].cores.len()
    }

    /// Human-readable description of every non-exited process that cannot
    /// currently run — the first thing to look at when a run goes quiescent.
    pub fn blocked_summary(&self) -> Vec<(ProcId, String)> {
        self.procs
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match &p.state {
                ProcState::Blocked(cond) => Some((
                    ProcId(i as u32),
                    format!("{} blocked on {:?}", p.name, cond),
                )),
                _ => None,
            })
            .collect()
    }

    /// Detects a cycle of processes blocked on each other's IPC channels —
    /// the §6 supervisor/worker deadlock. Returns the processes in one
    /// cycle if found.
    pub fn find_ipc_deadlock(&self) -> Option<Vec<ProcId>> {
        // Wait-for edges: a process blocked on a channel operation waits for
        // every process attached to the other side.
        let mut edges: HashMap<ProcId, Vec<ProcId>> = HashMap::new();
        for (i, p) in self.procs.iter().enumerate() {
            let pid = ProcId(i as u32);
            let (chan, side) = match &p.state {
                ProcState::Blocked(WaitCond::IpcRead(c, s)) => (*c, *s),
                ProcState::Blocked(WaitCond::IpcWrite(c, s)) => (*c, *s),
                _ => continue,
            };
            let others = self
                .chan_attach
                .get(&(chan, side.other()))
                .cloned()
                .unwrap_or_default();
            edges.insert(pid, others);
        }
        // DFS cycle detection restricted to IPC-blocked processes.
        fn dfs(
            node: ProcId,
            edges: &HashMap<ProcId, Vec<ProcId>>,
            visiting: &mut Vec<ProcId>,
            done: &mut Vec<ProcId>,
        ) -> Option<Vec<ProcId>> {
            if done.contains(&node) {
                return None;
            }
            if let Some(pos) = visiting.iter().position(|&n| n == node) {
                return Some(visiting[pos..].to_vec());
            }
            visiting.push(node);
            if let Some(next) = edges.get(&node) {
                for &n in next {
                    if edges.contains_key(&n) {
                        if let Some(cycle) = dfs(n, edges, visiting, done) {
                            return Some(cycle);
                        }
                    }
                }
            }
            visiting.pop();
            done.push(node);
            None
        }
        let nodes: Vec<ProcId> = edges.keys().copied().collect();
        let mut done = Vec::new();
        for node in nodes {
            if let Some(cycle) = dfs(node, &edges, &mut Vec::new(), &mut done) {
                return Some(cycle);
            }
        }
        None
    }

    // ------------------------------------------------------------ running

    /// Runs the simulation until `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        loop {
            let Some(ts) = self.queue.peek_time() else {
                let last = self.now;
                self.now = deadline.max(self.now);
                return RunOutcome::Quiescent { last_event: last };
            };
            if ts > deadline {
                self.now = deadline;
                return RunOutcome::ReachedTime;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            self.now = t;
            match ev {
                KEvent::Burst { pid, token } => self.on_burst(pid, token),
                KEvent::Timer { pid, token } => self.on_timer(pid, token),
                KEvent::Net(nev) => {
                    self.net.handle_event(t, nev);
                    self.drain_net();
                }
            }
        }
    }

    // -------------------------------------------------------- scheduling

    fn enqueue_ready(&mut self, pid: ProcId, front: bool) {
        let e = &mut self.procs[pid.0 as usize];
        e.state = ProcState::Ready;
        let nice = e.nice.0;
        let host = e.host;
        let q = self.scheds[host.0 as usize].ready.entry(nice).or_default();
        if front {
            q.push_front(pid);
        } else {
            q.push_back(pid);
        }
    }

    fn dispatch(&mut self, host: HostId) {
        loop {
            let sched = &mut self.scheds[host.0 as usize];
            let Some(core) = sched.idle_core() else {
                break;
            };
            let Some(pid) = sched.pop_ready() else {
                break;
            };
            self.start_burst(pid, core, true);
        }
        self.maybe_preempt(host);
    }

    /// Preempts the lowest-priority running process if a strictly
    /// higher-priority process is waiting.
    fn maybe_preempt(&mut self, host: HostId) {
        loop {
            let sched = &self.scheds[host.0 as usize];
            let Some(best) = sched.best_ready_nice() else {
                return;
            };
            // Find the running process with the largest nice value.
            let victim = sched
                .cores
                .iter()
                .filter_map(|c| *c)
                .max_by_key(|pid| self.procs[pid.0 as usize].nice.0);
            let Some(victim) = victim else {
                return;
            };
            let victim_nice = self.procs[victim.0 as usize].nice.0;
            if best >= victim_nice {
                return;
            }
            self.preempt(victim);
            self.stats.preemptions += 1;
            // Fill the freed core with the high-priority process.
            let sched = &mut self.scheds[host.0 as usize];
            let (core, pid) = match (sched.idle_core(), sched.pop_ready()) {
                (Some(c), Some(p)) => (c, p),
                _ => return,
            };
            self.start_burst(pid, core, true);
        }
    }

    fn preempt(&mut self, pid: ProcId) {
        let e = &mut self.procs[pid.0 as usize];
        let ProcState::Running { core, end, start } = e.state else {
            panic!("preempting a non-running process");
        };
        let elapsed = (self.now - start).as_nanos();
        let remaining = (end - self.now).as_nanos();
        e.remaining_ns = remaining.max(self.cost.compute_min);
        e.cpu_ns += elapsed;
        e.token += 1; // cancels the in-flight burst event
        let host = e.host;
        let tag = e.burst_tag;
        self.scheds[host.0 as usize].cores[core] = None;
        self.scheds[host.0 as usize].busy_ns += elapsed;
        self.profilers[host.0 as usize].record(tag, elapsed);
        self.enqueue_ready(pid, true); // preempted tasks keep queue headship
    }

    fn start_burst(&mut self, pid: ProcId, core: usize, from_queue: bool) {
        let quantum = self.quantum;
        let e = &mut self.procs[pid.0 as usize];
        let host = e.host;
        let sched = &mut self.scheds[host.0 as usize];
        let switched = sched.last_on_core[core] != Some(pid);
        let cs = if switched && from_queue {
            self.stats.context_switches += 1;
            self.cost.context_switch
        } else {
            0
        };
        let e = &mut self.procs[pid.0 as usize];
        if from_queue && e.quantum_left == 0 {
            e.quantum_left = quantum;
        }
        let burst = e.remaining_ns + cs;
        e.token += 1;
        let token = e.token;
        let end = self.now + SimDuration::from_nanos(burst);
        e.state = ProcState::Running {
            core,
            end,
            start: self.now,
        };
        let sched = &mut self.scheds[host.0 as usize];
        sched.cores[core] = Some(pid);
        sched.last_on_core[core] = Some(pid);
        self.queue.schedule(end, KEvent::Burst { pid, token });
    }

    fn on_burst(&mut self, pid: ProcId, token: u64) {
        {
            let e = &self.procs[pid.0 as usize];
            if e.token != token {
                return; // cancelled by preemption or wake
            }
        }
        let (host, core, elapsed, tag) = {
            let e = &mut self.procs[pid.0 as usize];
            let ProcState::Running { core, end, start } = e.state else {
                return;
            };
            debug_assert_eq!(end, self.now, "burst completing off-schedule");
            let elapsed = (self.now - start).as_nanos();
            e.cpu_ns += elapsed;
            e.quantum_left = e.quantum_left.saturating_sub(elapsed);
            (e.host, core, elapsed, e.burst_tag)
        };
        self.scheds[host.0 as usize].cores[core] = None;
        self.scheds[host.0 as usize].busy_ns += elapsed;
        self.profilers[host.0 as usize].record(tag, elapsed);

        // Perform the syscall whose cost was just paid.
        let pending = std::mem::replace(&mut self.procs[pid.0 as usize].pending, Pending::Fresh);
        match pending {
            Pending::Fresh => self.resume_proc(pid, SysResult::Start, Some(core)),
            Pending::Deliver(result) => self.resume_proc(pid, result, Some(core)),
            Pending::Apply(syscall) => self.apply_syscall(pid, syscall, core),
        }
        self.dispatch(host);
    }

    fn on_timer(&mut self, pid: ProcId, token: u64) {
        if self.procs[pid.0 as usize].token != token {
            return;
        }
        let deliver = match &self.procs[pid.0 as usize].state {
            ProcState::Blocked(WaitCond::Sleep) => Some(SysResult::Done),
            ProcState::Blocked(WaitCond::Poll(_)) => Some(SysResult::TimedOut),
            _ => None,
        };
        if let Some(result) = deliver {
            self.wake(pid, Some(result));
        }
    }

    /// Calls into the process for its next syscall and begins charging it.
    /// `core_hint` lets a process that still has quantum continue on the
    /// core it already occupies; `None` forces a trip through the ready
    /// queue (the semantics of a completed `sched_yield`).
    fn resume_proc(&mut self, pid: ProcId, result: SysResult, core_hint: Option<usize>) {
        let (host, mut proc_box) = {
            let e = &mut self.procs[pid.0 as usize];
            (e.host, e.proc.take())
        };
        let mut ctx = ResumeCtx {
            now: self.now,
            pid,
            host,
        };
        let syscall = proc_box
            .as_mut()
            .expect("process re-entered")
            .resume(&mut ctx, result);
        self.procs[pid.0 as usize].proc = proc_box;
        self.stats.syscalls += 1;

        if matches!(syscall, Syscall::Exit) {
            self.exit_proc(pid);
            return;
        }

        let (cost, tag) = self.cost_of(pid, &syscall);
        {
            let e = &mut self.procs[pid.0 as usize];
            e.pending = Pending::Apply(syscall);
            e.remaining_ns = cost;
            e.burst_tag = tag;
        }
        self.place(pid, core_hint);
    }

    /// Puts a runnable process either straight back on its previous core
    /// (still has quantum, nobody better is waiting) or at the back of the
    /// ready queue.
    fn place(&mut self, pid: ProcId, core_hint: Option<usize>) {
        let (host, quantum_left, nice) = {
            let e = &self.procs[pid.0 as usize];
            (e.host, e.quantum_left, e.nice.0)
        };
        let sched = &self.scheds[host.0 as usize];
        let core_free =
            core_hint.is_some_and(|c| sched.cores.get(c).is_some_and(|slot| slot.is_none()));
        let better_waiting = sched.best_ready_nice().is_some_and(|n| n < nice);
        let expired = quantum_left == 0;
        if core_free && !better_waiting && !expired {
            self.start_burst(pid, core_hint.expect("checked"), false);
        } else {
            if expired {
                self.procs[pid.0 as usize].quantum_left = self.quantum;
            }
            self.enqueue_ready(pid, false);
            self.dispatch(host);
        }
    }

    fn exit_proc(&mut self, pid: ProcId) {
        // Threads share a descriptor table: only the last member of the
        // group to exit tears it down.
        let table = std::mem::take(&mut self.procs[pid.0 as usize].fds);
        if std::rc::Rc::strong_count(&table) == 1 {
            let fds: Vec<Fd> = {
                let t = table.borrow();
                (0..t.len() as u32)
                    .map(Fd)
                    .filter(|fd| t[fd.0 as usize].is_some())
                    .collect()
            };
            self.procs[pid.0 as usize].fds = table;
            for fd in fds {
                let _ = self.close_fd(pid, fd);
            }
        }
        for lock in &self.locks {
            debug_assert_ne!(
                lock.holder(),
                Some(pid),
                "process exited holding lock {}",
                lock.name
            );
        }
        self.procs[pid.0 as usize].state = ProcState::Exited;
        self.drain_net();
    }

    // ------------------------------------------------------------ waking

    /// Makes a blocked process runnable. `deliver` overrides the pending
    /// operation with a direct result; `None` re-applies the blocked
    /// syscall.
    fn wake(&mut self, pid: ProcId, deliver: Option<SysResult>) {
        let host = {
            let e = &mut self.procs[pid.0 as usize];
            debug_assert!(matches!(e.state, ProcState::Blocked(_)));
            e.token += 1; // cancel any stale timer
            if let Some(result) = deliver {
                e.pending = Pending::Deliver(result);
            }
            e.remaining_ns = self.cost.wake_retry;
            e.burst_tag = "sched/wakeup";
            e.quantum_left = self.quantum;
            e.host
        };
        self.stats.wakeups += 1;
        self.enqueue_ready(pid, false);
        self.dispatch(host);
    }

    fn block(&mut self, pid: ProcId, syscall: Syscall, cond: WaitCond) {
        let keys: Vec<WaitKey> = match &cond {
            WaitCond::EpRead(ep) => vec![WaitKey::EpRead(*ep)],
            WaitCond::EpWrite(ep) => vec![WaitKey::EpWrite(*ep)],
            WaitCond::IpcRead(c, s) => vec![WaitKey::IpcRead(*c, *s)],
            WaitCond::IpcWrite(c, s) => vec![WaitKey::IpcWrite(*c, *s)],
            WaitCond::Connect { .. } | WaitCond::Poll(_) | WaitCond::Sleep => vec![],
        };
        for key in keys {
            self.waiters_one.entry(key).or_default().push_back(pid);
        }
        if let WaitCond::Poll(fds) = &cond {
            for fd in fds {
                if let Ok(kind) = self.fd_kind(pid, *fd) {
                    let key = match kind {
                        FdKind::Ipc(c, s) => WaitKey::IpcRead(c, s),
                        other => WaitKey::EpRead(other.endpoint().expect("net fd")),
                    };
                    self.poll_waiters.entry(key).or_default().push(pid);
                }
            }
        }
        if let WaitCond::Connect { ep, fd } = cond {
            self.connect_waiters.insert(ep, (pid, fd));
        }
        let e = &mut self.procs[pid.0 as usize];
        e.pending = Pending::Apply(syscall);
        e.state = ProcState::Blocked(cond);
    }

    fn cond_matches(cond: &WaitCond, key: WaitKey) -> bool {
        match (cond, key) {
            (WaitCond::EpRead(e), WaitKey::EpRead(k)) => *e == k,
            (WaitCond::EpWrite(e), WaitKey::EpWrite(k)) => *e == k,
            (WaitCond::IpcRead(c, s), WaitKey::IpcRead(kc, ks)) => *c == kc && *s == ks,
            (WaitCond::IpcWrite(c, s), WaitKey::IpcWrite(kc, ks)) => *c == kc && *s == ks,
            _ => false,
        }
    }

    /// Wakes the first process validly blocked under `key`.
    fn wake_one(&mut self, key: WaitKey) {
        let Some(queue) = self.waiters_one.get_mut(&key) else {
            return;
        };
        while let Some(pid) = queue.pop_front() {
            let valid = matches!(
                &self.procs[pid.0 as usize].state,
                ProcState::Blocked(cond) if Self::cond_matches(cond, key)
            );
            if valid {
                self.wake(pid, None);
                return;
            }
        }
    }

    /// Wakes every process validly blocked under `key` (writers after a
    /// window opens, where fairness races are resolved by retry).
    fn wake_all(&mut self, key: WaitKey) {
        let Some(queue) = self.waiters_one.get_mut(&key) else {
            return;
        };
        let pids: Vec<ProcId> = queue.drain(..).collect();
        for pid in pids {
            let valid = matches!(
                &self.procs[pid.0 as usize].state,
                ProcState::Blocked(cond) if Self::cond_matches(cond, key)
            );
            if valid {
                self.wake(pid, None);
            }
        }
    }

    /// Wakes pollers watching `key`.
    fn wake_polls(&mut self, key: WaitKey) {
        let Some(list) = self.poll_waiters.get_mut(&key) else {
            return;
        };
        let pids = std::mem::take(list);
        for pid in pids {
            let valid = matches!(
                &self.procs[pid.0 as usize].state,
                ProcState::Blocked(WaitCond::Poll(_))
            );
            if valid {
                self.wake(pid, None);
            }
        }
    }

    fn drain_net(&mut self) {
        for (t, ev) in self.net.take_events() {
            self.queue.schedule(t.max(self.now), KEvent::Net(ev));
        }
        let outcomes = self.net.take_outcomes();
        for outcome in outcomes {
            match outcome {
                NetOutcome::Readable(ep) => {
                    self.wake_one(WaitKey::EpRead(ep));
                    self.wake_polls(WaitKey::EpRead(ep));
                }
                NetOutcome::Writable(ep) => {
                    self.wake_all(WaitKey::EpWrite(ep));
                }
                NetOutcome::ConnectOk(ep) => {
                    if let Some((pid, fd)) = self.connect_waiters.remove(&ep) {
                        self.wake(pid, Some(SysResult::NewFd(fd)));
                    }
                }
                NetOutcome::ConnectErr(ep, errno) => {
                    if let Some((pid, fd)) = self.connect_waiters.remove(&ep) {
                        let _ = self.close_fd(pid, fd);
                        self.wake(pid, Some(SysResult::Err(errno)));
                    }
                }
            }
        }
    }

    // ------------------------------------------------------- descriptors

    fn install_fd(&mut self, pid: ProcId, kind: FdKind) -> Fd {
        if let Some(ep) = kind.endpoint() {
            *self.ep_refs.entry(ep).or_insert(0) += 1;
        }
        if let FdKind::Ipc(chan, side) = kind {
            self.chan_attach.entry((chan, side)).or_default().push(pid);
        }
        let mut fds = self.procs[pid.0 as usize].fds.borrow_mut();
        let slot = fds.iter().position(|f| f.is_none());
        match slot {
            Some(i) => {
                fds[i] = Some(kind);
                Fd(i as u32)
            }
            None => {
                fds.push(Some(kind));
                Fd((fds.len() - 1) as u32)
            }
        }
    }

    fn fd_kind(&self, pid: ProcId, fd: Fd) -> Result<FdKind, Errno> {
        self.procs[pid.0 as usize]
            .fds
            .borrow()
            .get(fd.0 as usize)
            .copied()
            .flatten()
            .ok_or(Errno::BadFd)
    }

    fn close_fd(&mut self, pid: ProcId, fd: Fd) -> Result<(), Errno> {
        let kind = self.procs[pid.0 as usize]
            .fds
            .borrow_mut()
            .get_mut(fd.0 as usize)
            .and_then(|slot| slot.take())
            .ok_or(Errno::BadFd)?;
        if let FdKind::Ipc(chan, side) = kind {
            if let Some(list) = self.chan_attach.get_mut(&(chan, side)) {
                if let Some(pos) = list.iter().position(|&p| p == pid) {
                    list.remove(pos);
                }
            }
        }
        if let Some(ep) = kind.endpoint() {
            self.release_ep_ref(ep);
        }
        Ok(())
    }

    /// Drops one reference to a network endpoint, closing it at zero.
    fn release_ep_ref(&mut self, ep: EpId) {
        let refs = self.ep_refs.get_mut(&ep).expect("untracked endpoint");
        *refs -= 1;
        if *refs == 0 {
            self.ep_refs.remove(&ep);
            self.net.close(self.now, ep);
            self.drain_net();
        }
    }

    // ---------------------------------------------------------- syscalls

    fn cost_of(&self, pid: ProcId, s: &Syscall) -> (u64, &'static str) {
        let c = &self.cost;
        let (ns, tag) = match s {
            Syscall::Compute { ns, tag } => (*ns, *tag),
            Syscall::Sleep(_) | Syscall::SleepUntil(_) => (c.sleep, "kernel/nanosleep"),
            Syscall::Yield => (c.sched_yield, "kernel/sched_yield"),
            Syscall::Exit => (c.compute_min, "kernel/exit"),
            Syscall::UdpBind { .. } | Syscall::UdpBindEphemeral => (c.bind, "kernel/bind"),
            Syscall::UdpSend { .. } => (c.udp_send, "kernel/udp_send"),
            Syscall::UdpRecv { .. } => (c.udp_recv, "kernel/udp_recv"),
            Syscall::TcpListen { .. } => (c.bind, "kernel/listen"),
            Syscall::TcpConnect { .. } => (c.tcp_connect, "kernel/tcp_connect"),
            Syscall::TcpAccept { .. } => (c.tcp_accept, "kernel/tcp_accept"),
            Syscall::TcpSend { .. } => (c.tcp_send, "kernel/tcp_send"),
            Syscall::TcpRecv { .. } => (c.tcp_recv, "kernel/tcp_recv"),
            Syscall::SctpBind { .. } | Syscall::SctpBindEphemeral => (c.bind, "kernel/bind"),
            Syscall::SctpSend { .. } => (c.sctp_send, "kernel/sctp_send"),
            Syscall::SctpRecv { .. } => (c.sctp_recv, "kernel/sctp_recv"),
            Syscall::Close { fd } => match self.fd_kind(pid, *fd) {
                // TCP teardown is costlier than releasing other sockets.
                Ok(FdKind::Tcp(_)) => (c.tcp_close, "kernel/tcp_close"),
                _ => (c.close, "kernel/close"),
            },
            Syscall::Poll { fds, .. } => (
                c.poll_base + c.poll_per_ready * fds.len() as u64,
                "kernel/epoll_wait",
            ),
            Syscall::IpcAttach { .. } => (c.ipc_attach, "kernel/socketpair"),
            Syscall::IpcSend { msg, .. } => (
                c.ipc_send
                    + if msg.fd.is_some() {
                        c.ipc_fd_install
                    } else {
                        0
                    },
                "kernel/ipc_send",
            ),
            Syscall::IpcRecv { .. } => (c.ipc_recv, "kernel/ipc_recv"),
            Syscall::LockAcquire { .. } => (c.lock_acquire, "kernel/lock_acquire"),
            Syscall::LockRelease { .. } => (c.lock_release, "kernel/lock_release"),
        };
        (ns.max(c.compute_min) + c.syscall_base_for(s), tag)
    }

    fn apply_syscall(&mut self, pid: ProcId, syscall: Syscall, core_hint: usize) {
        use Syscall as S;
        let host = self.procs[pid.0 as usize].host;
        // A completed sched_yield must go through the ready queue rather
        // than continuing on its core.
        let hint = if matches!(syscall, S::Yield) {
            None
        } else {
            Some(core_hint)
        };
        let result: Result<SysResult, WaitCond> = match &syscall {
            S::Compute { .. } | S::Yield => Ok(SysResult::Done),
            S::Sleep(d) => {
                if d.is_zero() {
                    Ok(SysResult::Done)
                } else {
                    let e = &mut self.procs[pid.0 as usize];
                    e.token += 1;
                    let token = e.token;
                    self.queue
                        .schedule(self.now + *d, KEvent::Timer { pid, token });
                    Err(WaitCond::Sleep)
                }
            }
            S::SleepUntil(t) => {
                if *t <= self.now {
                    Ok(SysResult::Done)
                } else {
                    let e = &mut self.procs[pid.0 as usize];
                    e.token += 1;
                    let token = e.token;
                    self.queue.schedule(*t, KEvent::Timer { pid, token });
                    Err(WaitCond::Sleep)
                }
            }
            S::Exit => unreachable!("Exit handled at resume"),
            S::UdpBind { port } => match self.net.udp_bind(host, *port) {
                Ok(ep) => Ok(SysResult::NewFd(self.install_fd(pid, FdKind::Udp(ep)))),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::UdpBindEphemeral => match self.net.udp_bind_ephemeral(host) {
                Ok((ep, port)) => Ok(SysResult::NewFdPort {
                    fd: self.install_fd(pid, FdKind::Udp(ep)),
                    port,
                }),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::UdpSend { fd, to, data } => match self.fd_kind(pid, *fd) {
                Ok(FdKind::Udp(ep)) => match self.net.udp_send(self.now, ep, *to, data.clone()) {
                    Ok(()) => Ok(SysResult::Done),
                    Err(e) => Ok(SysResult::Err(e)),
                },
                Ok(_) => Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::UdpRecv { fd } => match self.fd_kind(pid, *fd) {
                Ok(FdKind::Udp(ep)) => match self.net.udp_try_recv(ep) {
                    Ok(d) => Ok(SysResult::Datagram {
                        from: d.from,
                        data: d.data,
                    }),
                    Err(Errno::WouldBlock) => Err(WaitCond::EpRead(ep)),
                    Err(e) => Ok(SysResult::Err(e)),
                },
                Ok(_) => Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::TcpListen { port, backlog } => match self.net.tcp_listen(host, *port, *backlog) {
                Ok(ep) => Ok(SysResult::NewFd(
                    self.install_fd(pid, FdKind::TcpListen(ep)),
                )),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::TcpConnect { to } => match self.net.tcp_connect(self.now, host, *to) {
                Ok(ep) => {
                    let fd = self.install_fd(pid, FdKind::Tcp(ep));
                    Err(WaitCond::Connect { ep, fd })
                }
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::TcpAccept { fd } => match self.fd_kind(pid, *fd) {
                Ok(FdKind::TcpListen(ep)) => match self.net.tcp_try_accept(ep) {
                    Ok((conn, peer)) => Ok(SysResult::Accepted {
                        fd: self.install_fd(pid, FdKind::Tcp(conn)),
                        peer,
                    }),
                    Err(Errno::WouldBlock) => Err(WaitCond::EpRead(ep)),
                    Err(e) => Ok(SysResult::Err(e)),
                },
                Ok(_) => Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::TcpSend { fd, data } => match self.fd_kind(pid, *fd) {
                Ok(FdKind::Tcp(ep)) => match self.net.tcp_send(self.now, ep, data.clone()) {
                    Ok(()) => Ok(SysResult::Done),
                    Err(Errno::WouldBlock) => Err(WaitCond::EpWrite(ep)),
                    Err(e) => Ok(SysResult::Err(e)),
                },
                Ok(_) => Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::TcpRecv { fd, max } => match self.fd_kind(pid, *fd) {
                Ok(FdKind::Tcp(ep)) => match self.net.tcp_try_recv(ep, *max) {
                    Ok((data, eof)) => {
                        if data.is_empty() && eof {
                            Ok(SysResult::Eof)
                        } else {
                            Ok(SysResult::Data(data))
                        }
                    }
                    Err(Errno::WouldBlock) => Err(WaitCond::EpRead(ep)),
                    Err(e) => Ok(SysResult::Err(e)),
                },
                Ok(_) => Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::SctpBind { port } => match self.net.sctp_bind(host, *port) {
                Ok(ep) => Ok(SysResult::NewFd(self.install_fd(pid, FdKind::Sctp(ep)))),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::SctpBindEphemeral => match self.net.sctp_bind_ephemeral(host) {
                Ok((ep, port)) => Ok(SysResult::NewFdPort {
                    fd: self.install_fd(pid, FdKind::Sctp(ep)),
                    port,
                }),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::SctpSend { fd, to, data } => match self.fd_kind(pid, *fd) {
                Ok(FdKind::Sctp(ep)) => match self.net.sctp_send(self.now, ep, *to, data.clone()) {
                    Ok(()) => Ok(SysResult::Done),
                    Err(e) => Ok(SysResult::Err(e)),
                },
                Ok(_) => Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::SctpRecv { fd } => match self.fd_kind(pid, *fd) {
                Ok(FdKind::Sctp(ep)) => match self.net.sctp_try_recv(ep) {
                    Ok((from, data)) => Ok(SysResult::SctpMsg { from, data }),
                    Err(Errno::WouldBlock) => Err(WaitCond::EpRead(ep)),
                    Err(e) => Ok(SysResult::Err(e)),
                },
                Ok(_) => Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::Close { fd } => match self.close_fd(pid, *fd) {
                Ok(()) => Ok(SysResult::Done),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::Poll { fds, timeout } => {
                let mut ready = Vec::new();
                for fd in fds {
                    if let Ok(kind) = self.fd_kind(pid, *fd) {
                        let is_ready = match kind {
                            FdKind::Ipc(chan, side) => {
                                self.chans[chan.0 as usize].pending_for(side) > 0
                            }
                            other => self.net.readable(other.endpoint().expect("net fd")),
                        };
                        if is_ready {
                            ready.push(*fd);
                        }
                    }
                }
                if !ready.is_empty() {
                    Ok(SysResult::Ready(ready))
                } else {
                    if let Some(d) = timeout {
                        let e = &mut self.procs[pid.0 as usize];
                        e.token += 1;
                        let token = e.token;
                        self.queue
                            .schedule(self.now + *d, KEvent::Timer { pid, token });
                    }
                    Err(WaitCond::Poll(fds.clone()))
                }
            }
            S::IpcAttach { chan, side } => {
                if (chan.0 as usize) < self.chans.len() {
                    Ok(SysResult::NewFd(
                        self.install_fd(pid, FdKind::Ipc(*chan, *side)),
                    ))
                } else {
                    Ok(SysResult::Err(Errno::BadFd))
                }
            }
            S::IpcSend { fd, msg } => match self.fd_kind(pid, *fd) {
                Ok(FdKind::Ipc(chan, side)) => self.ipc_send(pid, chan, side, *msg),
                Ok(_) => Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::IpcRecv { fd } => match self.fd_kind(pid, *fd) {
                Ok(FdKind::Ipc(chan, side)) => {
                    match self.chans[chan.0 as usize].recv_at(side) {
                        Some(parcel) => {
                            let mut msg = parcel.msg;
                            msg.fd = parcel
                                .passed
                                .map(|kind| self.install_fd_transfer(pid, kind));
                            // Senders towards us may be blocked on the queue
                            // we just drained.
                            self.wake_all(WaitKey::IpcWrite(chan, side.other()));
                            Ok(SysResult::Ipc(msg))
                        }
                        None => Err(WaitCond::IpcRead(chan, side)),
                    }
                }
                Ok(_) => Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => Ok(SysResult::Err(e)),
            },
            S::LockAcquire { lock } => {
                if self.locks[lock.0 as usize].try_acquire(pid) {
                    Ok(SysResult::Done)
                } else {
                    // Spin failed: charge a spin+sched_yield episode, go to
                    // the back of the queue, retry when scheduled again.
                    self.stats.lock_yields += 1;
                    let e = &mut self.procs[pid.0 as usize];
                    e.pending = Pending::Apply(syscall.clone());
                    e.remaining_ns = self.cost.lock_spin_yield;
                    e.burst_tag = "kernel/sched_yield";
                    self.enqueue_ready(pid, false);
                    self.dispatch(host);
                    return;
                }
            }
            S::LockRelease { lock } => {
                self.locks[lock.0 as usize].release(pid);
                Ok(SysResult::Done)
            }
        };

        self.drain_net();
        match result {
            Ok(result) => self.resume_proc(pid, result, hint),
            Err(cond) => self.block(pid, syscall, cond),
        }
    }

    fn ipc_send(
        &mut self,
        pid: ProcId,
        chan: ChanId,
        side: Side,
        msg: IpcMsg,
    ) -> Result<SysResult, WaitCond> {
        if self.chans[chan.0 as usize].full_towards(side) {
            return Err(WaitCond::IpcWrite(chan, side));
        }
        // Resolve the passed descriptor now (SCM_RIGHTS pins the object even
        // if the sender closes its copy before delivery).
        let passed = match msg.fd {
            Some(passed_fd) => match self.fd_kind(pid, passed_fd) {
                Ok(
                    kind @ (FdKind::Udp(_)
                    | FdKind::Tcp(_)
                    | FdKind::TcpListen(_)
                    | FdKind::Sctp(_)),
                ) => {
                    let ep = kind.endpoint().expect("net fd");
                    *self.ep_refs.entry(ep).or_insert(0) += 1;
                    Some(kind)
                }
                Ok(FdKind::Ipc(..)) => return Ok(SysResult::Err(Errno::InvalidOp)),
                Err(e) => return Ok(SysResult::Err(e)),
            },
            None => None,
        };
        self.chans[chan.0 as usize]
            .send_from(side, Parcel { msg, passed })
            .unwrap_or_else(|_| unreachable!("checked capacity above"));
        self.wake_one(WaitKey::IpcRead(chan, side.other()));
        self.wake_polls(WaitKey::IpcRead(chan, side.other()));
        Ok(SysResult::Done)
    }

    /// Installs a descriptor whose endpoint reference was already taken at
    /// send time (ownership transfer, no additional ref).
    fn install_fd_transfer(&mut self, pid: ProcId, kind: FdKind) -> Fd {
        // `install_fd` takes a fresh reference; compensate for the one the
        // parcel already carried.
        let fd = self.install_fd(pid, kind);
        if let Some(ep) = kind.endpoint() {
            let refs = self.ep_refs.get_mut(&ep).expect("tracked endpoint");
            *refs -= 1;
        }
        fd
    }
}

impl CostModel {
    /// The base mode-switch overhead, applied to every real syscall but not
    /// to pure compute bursts.
    fn syscall_base_for(&self, s: &Syscall) -> u64 {
        match s {
            Syscall::Compute { .. } => 0,
            _ => self.syscall_base,
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("procs", &self.procs.len())
            .field("stats", &self.stats)
            .finish()
    }
}
