//! Calibration probe: runs selected figure cells and prints measured
//! throughput plus the ratios the paper's figures are judged by.
//!
//! Usage: `cargo run --release -p siperf-bench --bin calibrate [--quick]`

use siperf_workload::experiments::{figure_cell, FigureConfig, TransportWorkload};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let explicit: Vec<usize> = std::env::args().filter_map(|a| a.parse().ok()).collect();
    let (mut clients, secs) = if quick {
        (vec![100], 3)
    } else {
        (vec![100, 500, 1000], 6)
    };
    if !explicit.is_empty() {
        clients = explicit;
    }

    for fig in [
        FigureConfig::Baseline,
        FigureConfig::FdCache,
        FigureConfig::FdCachePlusPq,
    ] {
        println!("== {} ==", fig.label());
        for &n in &clients {
            let mut udp = 0.0;
            let mut rows = Vec::new();
            for wl in TransportWorkload::ALL {
                let report = figure_cell(fig, wl, n, secs, 7).run();
                if wl == TransportWorkload::Udp {
                    udp = report.throughput.per_sec();
                }
                rows.push((wl.label(), report));
            }
            for (label, r) in rows {
                println!(
                    "  {n:>5} clients  {label:<22} {:>9.0} ops/s  ({:>5.1}% of UDP)  fail={} conn_err={} util={:.0}% wall={:.1}s",
                    r.throughput.per_sec(),
                    100.0 * r.throughput.per_sec() / udp.max(1.0),
                    r.call_failures,
                    r.connect_errors,
                    100.0 * r.server_utilization,
                    r.wall_clock_secs,
                );
            }
        }
    }
}
