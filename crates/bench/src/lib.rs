//! Shared pieces for the benchmark harnesses: the paper's reference
//! numbers and table formatting.
//!
//! The reference values are read off Figures 3–5 of the paper (bar labels);
//! the assignment of the mid-range TCP bars in Figures 4 and 5 is
//! approximate where the figure's bars are within noise of each other.

#![warn(missing_docs)]

use siperf_workload::experiments::TransportWorkload;
use siperf_workload::ScenarioReport;

/// The client counts of every figure's x-axis.
pub const CLIENTS: [usize; 3] = [100, 500, 1000];

/// Paper throughput (ops/s) for one workload across the three client
/// counts.
#[derive(Debug, Clone, Copy)]
pub struct PaperRow {
    /// The workload this row describes.
    pub workload: TransportWorkload,
    /// ops/s at 100, 500, 1000 clients.
    pub ops: [u64; 3],
}

/// Figure 3 (baseline OpenSER) reference values.
pub const FIGURE3: [PaperRow; 4] = [
    PaperRow {
        workload: TransportWorkload::Tcp50,
        ops: [4_651, 5_853, 7_472],
    },
    PaperRow {
        workload: TransportWorkload::Tcp500,
        ops: [6_794, 9_500, 12_359],
    },
    PaperRow {
        workload: TransportWorkload::TcpPersistent,
        ops: [14_635, 12_630, 9_791],
    },
    PaperRow {
        workload: TransportWorkload::Udp,
        ops: [28_395, 33_695, 33_350],
    },
];

/// Figure 4 (file-descriptor cache) reference values.
pub const FIGURE4: [PaperRow; 4] = [
    PaperRow {
        workload: TransportWorkload::Tcp50,
        ops: [10_113, 11_703, 13_232],
    },
    PaperRow {
        workload: TransportWorkload::Tcp500,
        ops: [23_400, 23_032, 22_502],
    },
    PaperRow {
        workload: TransportWorkload::TcpPersistent,
        ops: [22_376, 23_696, 22_238],
    },
    PaperRow {
        workload: TransportWorkload::Udp,
        ops: [28_395, 33_695, 33_350],
    },
];

/// Figure 5 (fd cache + priority queue) reference values.
pub const FIGURE5: [PaperRow; 4] = [
    PaperRow {
        workload: TransportWorkload::Tcp50,
        ops: [20_529, 18_986, 16_661],
    },
    PaperRow {
        workload: TransportWorkload::Tcp500,
        ops: [22_953, 22_082, 21_237],
    },
    PaperRow {
        workload: TransportWorkload::TcpPersistent,
        ops: [22_356, 22_574, 21_230],
    },
    PaperRow {
        workload: TransportWorkload::Udp,
        ops: [28_395, 33_695, 33_350],
    },
];

/// Looks up the paper's value for one cell.
pub fn paper_value(rows: &[PaperRow; 4], wl: TransportWorkload, clients: usize) -> u64 {
    let col = CLIENTS
        .iter()
        .position(|&c| c == clients)
        .expect("paper client counts are 100/500/1000");
    rows.iter()
        .find(|r| r.workload == wl)
        .expect("all four workloads present")
        .ops[col]
}

/// Measurement seconds for the harnesses, trimmable via
/// `SIPERF_MEASURE_SECS` for quick passes.
pub fn measure_secs() -> u64 {
    std::env::var("SIPERF_MEASURE_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

/// Prints a figure table header.
pub fn print_figure_header(title: &str) {
    println!();
    println!("{title}");
    println!("{}", "=".repeat(title.len()));
    println!(
        "{:<8} {:<22} {:>12} {:>12} {:>9} {:>11} {:>11}",
        "clients", "workload", "paper", "measured", "ratio", "paper %UDP", "ours %UDP"
    );
}

/// Prints one figure row against the paper's value.
pub fn print_figure_row(
    clients: usize,
    wl: TransportWorkload,
    paper: u64,
    paper_udp: u64,
    measured: &ScenarioReport,
    measured_udp: f64,
) {
    let ours = measured.throughput.per_sec();
    println!(
        "{:<8} {:<22} {:>9} o/s {:>9.0} o/s {:>8.2}x {:>10.0}% {:>10.0}%",
        clients,
        wl.label(),
        paper,
        ours,
        ours / paper as f64,
        100.0 * paper as f64 / paper_udp as f64,
        100.0 * ours / measured_udp.max(1.0),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_match_the_figures_headlines() {
        // Abstract: "TCP performance increases from 13-51% to 50-78% of the
        // UDP performance" — the reference tables must reproduce that.
        let mut baseline = Vec::new();
        let mut fixed = Vec::new();
        for (i, _) in CLIENTS.iter().enumerate() {
            let udp = FIGURE3[3].ops[i] as f64;
            for row in &FIGURE3[..3] {
                baseline.push(row.ops[i] as f64 / udp);
            }
            for row in &FIGURE5[..3] {
                fixed.push(row.ops[i] as f64 / udp);
            }
        }
        let (bmin, bmax) = (
            baseline.iter().cloned().fold(f64::MAX, f64::min),
            baseline.iter().cloned().fold(0.0, f64::max),
        );
        assert!((0.12..=0.17).contains(&bmin), "baseline min {bmin}");
        assert!((0.40..=0.55).contains(&bmax), "baseline max {bmax}");
        let (fmin, fmax) = (
            fixed.iter().cloned().fold(f64::MAX, f64::min),
            fixed.iter().cloned().fold(0.0, f64::max),
        );
        assert!((0.45..=0.55).contains(&fmin), "fixed min {fmin}");
        assert!((0.70..=0.85).contains(&fmax), "fixed max {fmax}");
    }

    #[test]
    fn lookup_works() {
        assert_eq!(paper_value(&FIGURE3, TransportWorkload::Udp, 500), 33_695);
        assert_eq!(paper_value(&FIGURE4, TransportWorkload::Tcp50, 100), 10_113);
    }
}
