//! Criterion micro-benchmarks of the simulator's own hot paths: the event
//! queue, the SIP parser/serializer, the stream framer, and a full
//! small-scenario step. These guard the simulator's wall-clock performance
//! (figure regeneration runs millions of events) rather than the paper's
//! results.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use siperf_simcore::queue::EventQueue;
use siperf_simcore::time::SimTime;
use siperf_sip::framer::StreamFramer;
use siperf_sip::gen::{self, CallParty};
use siperf_sip::parse::parse_message;
use siperf_workload::{Scenario, Transport};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..10_000u64 {
                    // Pseudo-random interleaving without a RNG in the loop.
                    q.schedule(
                        SimTime::from_nanos(i.wrapping_mul(2654435761) % 1_000_000),
                        i,
                    );
                }
                let mut n = 0u64;
                while q.pop().is_some() {
                    n += 1;
                }
                n
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_sip(c: &mut Criterion) {
    let alice = CallParty::new("alice", "h1:20001");
    let bob = CallParty::new("bob", "h2:20002");
    let invite = gen::invite(&alice, &bob, "sip.lab", "call-1", "z9hG4bK1", "UDP");
    let wire = invite.to_bytes();

    let mut group = c.benchmark_group("sip");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("parse_invite", |b| {
        b.iter(|| parse_message(std::hint::black_box(&wire)).unwrap())
    });
    group.bench_function("serialize_invite", |b| b.iter(|| invite.to_bytes()));
    group.bench_function("frame_invite_stream", |b| {
        let mut triple = Vec::new();
        for _ in 0..3 {
            triple.extend_from_slice(&wire);
        }
        b.iter(|| {
            let mut f = StreamFramer::new();
            f.push(std::hint::black_box(&triple));
            f.drain_messages().unwrap().len()
        })
    });
    group.finish();
}

fn bench_scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario");
    group.sample_size(10);
    group.bench_function("udp_10pairs_200ms", |b| {
        b.iter(|| {
            let mut s = Scenario::builder("bench")
                .transport(Transport::Udp)
                .client_pairs(10)
                .build();
            s.call_start = siperf_simcore::time::SimDuration::from_millis(600);
            s.measure_from = siperf_simcore::time::SimDuration::from_millis(700);
            s.measure = siperf_simcore::time::SimDuration::from_millis(200);
            s.run().ops_total
        })
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_sip, bench_scenario);
criterion_main!(benches);
