//! Reproduces the paper's §5 execution-profile evidence (OProfile):
//!
//! * **P1** (§5.1): under baseline TCP, "about 12% of the time was spent in
//!   the function in which the IPC occurred", and the top kernel functions
//!   are IPC-related.
//! * **P2** (§5.2): the fd cache drops that to 4.6%, the IPC functions fall
//!   out of the top of the profile, and the user-level profile starts to
//!   resemble UDP's. Under 50 ops/conn, the idle-scan function blows up and
//!   the kernel profile fills with scheduler time (the sched_yield storm).
//!
//! Run: `cargo bench -p siperf-bench --bench profile`

use siperf_bench::measure_secs;
use siperf_workload::experiments::{figure_cell, FigureConfig, TransportWorkload};
use siperf_workload::ScenarioReport;

fn ipc_share(r: &ScenarioReport) -> f64 {
    let p = &r.server_profile;
    p.share("kernel/ipc_send") + p.share("kernel/ipc_recv") + p.share("user/tcpconn_get_fd")
}

fn run(fig: FigureConfig, wl: TransportWorkload, secs: u64) -> ScenarioReport {
    figure_cell(fig, wl, 500, secs, 7).run()
}

fn main() {
    let secs = measure_secs().min(4);
    println!("SIPerf — §5 execution profiles (server CPU, 500 clients)");

    let baseline = run(
        FigureConfig::Baseline,
        TransportWorkload::TcpPersistent,
        secs,
    );
    let cached = run(
        FigureConfig::FdCache,
        TransportWorkload::TcpPersistent,
        secs,
    );
    let churn = run(FigureConfig::FdCache, TransportWorkload::Tcp50, secs);
    let pq = run(FigureConfig::FdCachePlusPq, TransportWorkload::Tcp50, secs);
    let udp = run(FigureConfig::Baseline, TransportWorkload::Udp, secs);

    println!();
    println!("P1 — fd-request IPC share of server CPU");
    println!("----------------------------------------");
    println!("(user + kernel time attributable to tcpconn_get_fd; the paper's");
    println!(" OProfile numbers are for the user function alone)");
    println!(
        "TCP baseline:   {:>5.1}%   (paper: 12.0% user-side)",
        100.0 * ipc_share(&baseline)
    );
    println!(
        "TCP + fd cache: {:>5.1}%   (paper:  4.6% user-side)",
        100.0 * ipc_share(&cached)
    );
    println!(
        "reduction:      {:>5.1}x   (paper: 2.6x)",
        ipc_share(&baseline) / ipc_share(&cached).max(1e-9)
    );

    println!();
    println!("P2 — idle-connection management share (user/tcpconn_timeout)");
    println!("--------------------------------------------------------------");
    let scan = |r: &ScenarioReport| 100.0 * r.server_profile.share("user/tcpconn_timeout");
    println!("TCP persistent + fd cache: {:>5.2}%", scan(&cached));
    println!(
        "TCP 50 ops/conn + fd cache: {:>5.2}%  (paper: ~3x the persistent share)",
        scan(&churn)
    );
    println!("TCP 50 ops/conn + priority queue: {:>5.2}%", scan(&pq));
    println!();
    println!("scheduler share (sched_yield storms under the linear scan):");
    let sched = |r: &ScenarioReport| {
        100.0
            * (r.server_profile.share("kernel/sched_yield")
                + r.server_profile.domain_share("sched"))
    };
    println!(
        "  TCP 50 ops/conn + fd cache (linear scan): {:>5.2}%",
        sched(&churn)
    );
    println!(
        "  TCP 50 ops/conn + priority queue:         {:>5.2}%",
        sched(&pq)
    );

    println!();
    println!("Top functions, TCP baseline (persistent):");
    println!("{}", baseline.server_profile.to_table(12));
    println!("Top functions, TCP + fd cache (persistent):");
    println!("{}", cached.server_profile.to_table(12));
    println!("Top functions, UDP (the paper: \"remarkably like\" the cached TCP profile):");
    println!("{}", udp.server_profile.to_table(12));
    println!("Top functions, TCP 50 ops/conn + fd cache (the idle-scan blowup):");
    println!("{}", churn.server_profile.to_table(12));
}
