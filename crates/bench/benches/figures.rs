//! Regenerates Figures 3, 4, and 5 of the paper: proxy throughput for
//! {TCP 50 ops/conn, TCP 500 ops/conn, TCP persistent, UDP} across
//! {100, 500, 1000} clients, for the baseline proxy, the fd-cache fix, and
//! the fd-cache + priority-queue fix.
//!
//! Run: `cargo bench -p siperf-bench --bench figures`
//! (set `SIPERF_MEASURE_SECS=2` for a quick pass)

use siperf_bench::{
    measure_secs, paper_value, print_figure_header, print_figure_row, PaperRow, CLIENTS, FIGURE3,
    FIGURE4, FIGURE5,
};
use siperf_workload::experiments::{figure_cell, FigureConfig, TransportWorkload};

fn run_figure(fig: FigureConfig, reference: &[PaperRow; 4]) {
    print_figure_header(fig.label());
    let secs = measure_secs();
    for &clients in &CLIENTS {
        // UDP first: every ratio in the figure is relative to it.
        let udp_report = figure_cell(fig, TransportWorkload::Udp, clients, secs, 7).run();
        let udp = udp_report.throughput.per_sec();
        let paper_udp = paper_value(reference, TransportWorkload::Udp, clients);
        for wl in [
            TransportWorkload::Tcp50,
            TransportWorkload::Tcp500,
            TransportWorkload::TcpPersistent,
        ] {
            let report = figure_cell(fig, wl, clients, secs, 7).run();
            print_figure_row(
                clients,
                wl,
                paper_value(reference, wl, clients),
                paper_udp,
                &report,
                udp,
            );
        }
        print_figure_row(
            clients,
            TransportWorkload::Udp,
            paper_udp,
            paper_udp,
            &udp_report,
            udp,
        );
    }
}

fn main() {
    println!("SIPerf — regenerating the paper's Figures 3-5");
    println!("(absolute numbers are simulator-calibrated; judge the shape)");
    run_figure(FigureConfig::Baseline, &FIGURE3);
    run_figure(FigureConfig::FdCache, &FIGURE4);
    run_figure(FigureConfig::FdCachePlusPq, &FIGURE5);
    println!();
    println!("Headline (abstract): baseline TCP at 13-51% of UDP; fixed TCP at 50-78%.");
}
