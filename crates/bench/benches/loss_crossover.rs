//! Loss crossover: the study's "why bother with TCP" question, quantified.
//!
//! The paper argues TCP's reliability and congestion control make it the
//! *better* transport if only the server architecture stops squandering it
//! (§1, §8). This bench sweeps datagram loss and compares UDP (application
//! -level retransmission on RFC 3261 timers) against the fixed TCP proxy
//! (transport-level recovery): as loss grows, UDP's goodput and latency
//! degrade and calls start failing, while TCP's throughput barely moves —
//! the crossover the paper's conclusion predicts.
//!
//! Run: `cargo bench -p siperf-bench --bench loss_crossover`

use siperf_bench::measure_secs;
use siperf_proxy::config::{ProxyConfig, Transport};
use siperf_simnet::NetConfig;
use siperf_workload::Scenario;

fn main() {
    let secs = measure_secs().min(4);
    let pairs = 300;
    println!("SIPerf — transport robustness under datagram loss ({pairs} pairs)");
    println!();
    println!(
        "{:>7} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7}",
        "loss", "UDP o/s", "p99", "fail", "TCP* o/s", "p99", "fail"
    );
    for loss_pct in [0.0f64, 0.5, 1.0, 2.0, 5.0] {
        let mut net = NetConfig::lan();
        net.udp_loss = loss_pct / 100.0;

        let udp = Scenario::builder("udp-loss")
            .transport(Transport::Udp)
            .client_pairs(pairs)
            .measure_secs(secs)
            .net(net.clone())
            .build()
            .run();
        // Loss applies to datagrams only; TCP segments are retransmitted by
        // the (simulated) transport, which on this LAN model means they are
        // simply not dropped — the fixed proxy sees clean streams.
        let tcp = Scenario::builder("tcp-loss")
            .proxy(
                ProxyConfig::paper(Transport::Tcp)
                    .with_fd_cache()
                    .with_priority_queue(),
            )
            .client_pairs(pairs)
            .measure_secs(secs)
            .net(net)
            .build()
            .run();
        println!(
            "{:>6.1}% | {:>6.0} o/s {:>10} {:>7} | {:>6.0} o/s {:>10} {:>7}",
            loss_pct,
            udp.throughput.per_sec(),
            udp.invite_p99.to_string(),
            udp.call_failures,
            tcp.throughput.per_sec(),
            tcp.invite_p99.to_string(),
            tcp.call_failures,
        );
    }
    println!();
    println!("(TCP* = multi-process with fd cache + priority queue, Figure 5 build)");
}
