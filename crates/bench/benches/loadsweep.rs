//! Load sweep: throughput and latency as a function of offered load, the
//! methodology of the Nahum et al. studies the paper builds on (§7): "they
//! study the throughput and the latency as a function of load on the
//! server". Closed-loop load is varied through the number of concurrent
//! client pairs.
//!
//! Run: `cargo bench -p siperf-bench --bench loadsweep`

use siperf_bench::measure_secs;
use siperf_proxy::config::{ProxyConfig, Transport};
use siperf_workload::Scenario;

fn main() {
    let secs = measure_secs().min(4);
    println!("SIPerf — throughput & latency vs offered load");
    println!();
    for (label, proxy) in [
        ("UDP", ProxyConfig::paper(Transport::Udp)),
        ("TCP baseline", ProxyConfig::paper(Transport::Tcp)),
        (
            "TCP fixed (fd cache + pq)",
            ProxyConfig::paper(Transport::Tcp)
                .with_fd_cache()
                .with_priority_queue(),
        ),
    ] {
        println!("== {label} ==");
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>8} {:>7}",
            "clients", "ops/s", "p50", "p99", "util", "fail"
        );
        for pairs in [25usize, 50, 100, 200, 400, 800] {
            let r = Scenario::builder(format!("{label}-{pairs}"))
                .proxy(proxy.clone())
                .client_pairs(pairs)
                .measure_secs(secs)
                .build()
                .run();
            println!(
                "{:>8} {:>9.0} o/s {:>12} {:>12} {:>7.0}% {:>7}",
                pairs,
                r.throughput.per_sec(),
                r.invite_p50.to_string(),
                r.invite_p99.to_string(),
                100.0 * r.server_utilization,
                r.call_failures,
            );
        }
        println!();
    }
    println!("The paper's observation (after Nahum et al.): near and past");
    println!("saturation, latency rises sharply while throughput plateaus —");
    println!("and the TCP baseline saturates far earlier than UDP.");
}
