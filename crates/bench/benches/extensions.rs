//! §6 extensions: the futures the paper argues for, implemented and
//! measured.
//!
//! * **E1** — the multi-threaded architecture: shared descriptor table, no
//!   fd-passing IPC ("this overhead would be completely unnecessary within
//!   a multi-threaded server").
//! * **E2** — SCTP: the symmetric UDP architecture on a reliable,
//!   message-based, kernel-managed transport.
//! * Plus the stateless-proxy mode as an extra reference point.
//!
//! Run: `cargo bench -p siperf-bench --bench extensions`

use siperf_bench::measure_secs;
use siperf_proxy::config::{Arch, ProxyConfig, Transport};
use siperf_workload::experiments::{
    figure_cell, sctp_cell, threaded_cell, FigureConfig, TransportWorkload,
};
use siperf_workload::Scenario;

fn main() {
    let secs = measure_secs().min(4);
    println!("SIPerf — §6 extensions (500 clients, persistent connections)");
    println!();
    println!("{:<44} {:>12} {:>10}", "configuration", "ops/s", "%UDP");

    let udp = figure_cell(FigureConfig::Baseline, TransportWorkload::Udp, 500, secs, 7).run();
    let udp_tput = udp.throughput.per_sec();
    let pct = |t: f64| 100.0 * t / udp_tput;

    let rows: Vec<(String, f64)> = vec![
        ("UDP (reference)".into(), udp_tput),
        (
            "TCP multi-process, baseline".into(),
            figure_cell(
                FigureConfig::Baseline,
                TransportWorkload::TcpPersistent,
                500,
                secs,
                7,
            )
            .run()
            .throughput
            .per_sec(),
        ),
        (
            "TCP multi-process, fd cache + pq (Fig. 5)".into(),
            figure_cell(
                FigureConfig::FdCachePlusPq,
                TransportWorkload::TcpPersistent,
                500,
                secs,
                7,
            )
            .run()
            .throughput
            .per_sec(),
        ),
        (
            "TCP multi-threaded (E1)".into(),
            threaded_cell(TransportWorkload::TcpPersistent, 500, secs)
                .run()
                .throughput
                .per_sec(),
        ),
        (
            "TCP multi-threaded, 50 ops/conn (E1)".into(),
            threaded_cell(TransportWorkload::Tcp50, 500, secs)
                .run()
                .throughput
                .per_sec(),
        ),
        (
            "SCTP, symmetric workers (E2)".into(),
            sctp_cell(500, secs).run().throughput.per_sec(),
        ),
        ("UDP stateless (reference)".into(), {
            let mut proxy = ProxyConfig::paper(Transport::Udp);
            proxy.stateful = false;
            Scenario::builder("udp-stateless")
                .proxy(proxy)
                .client_pairs(500)
                .measure_secs(secs)
                .build()
                .run()
                .throughput
                .per_sec()
        }),
    ];

    for (name, tput) in &rows {
        println!("{:<44} {:>8.0} o/s {:>9.0}%", name, tput, pct(*tput));
    }
    println!();
    println!("§6's predictions hold: threading removes the fd-passing bottleneck,");
    println!("and SCTP's kernel-managed associations recover most of UDP's edge");
    println!("while keeping reliable delivery.");

    let _ = Arch::MultiThread; // re-exported for doc visibility
}
