//! Goodput vs offered load under overload control.
//!
//! Two sweeps per transport × admission policy:
//!
//! * **Closed loop** — caller/callee pairs from well below to ~3× the
//!   capacity knee (~600 pairs). Offered load self-throttles to the
//!   completion rate, so the contrast shows in latency and rejections.
//! * **Open loop** (UDP) — Poisson arrival rates swept through the knee
//!   (~16k calls/s on this topology), goodput deadline-scored at 200 ms.
//!   This is the literature's goodput-vs-offered-load curve: NoControl
//!   falls off a cliff past saturation; admission control sheds the
//!   excess with fast-path 503s and holds near its peak.
//!
//! Run: `cargo bench --bench overload`
//! (set `SIPERF_MEASURE_SECS` to lengthen the measured window)

use siperf_simcore::time::SimDuration;
use siperf_workload::{OverloadConfig, Scenario, Transport};

/// Caller/callee pairs approximating 0.5×–3× of the saturation knee.
const LOADS: [usize; 5] = [300, 600, 900, 1200, 1800];

fn policies() -> Vec<OverloadConfig> {
    vec![
        OverloadConfig::NoControl,
        OverloadConfig::queue_threshold_default(),
        OverloadConfig::window_feedback_default(),
    ]
}

/// Open-loop Poisson arrival rates (calls/s) bracketing the ~16k calls/s
/// saturation knee of the 300-callee topology.
const RATES: [f64; 4] = [12_000.0, 18_000.0, 24_000.0, 30_000.0];

fn open_loop_sweep(measure_ms: u64) {
    println!("== Open loop (UDP): Poisson arrivals, 200 ms setup deadline ==");
    for policy in policies() {
        println!(
            "{:<18} {:>9} {:>10} {:>10} {:>7} {:>9} {:>8} {:>10}",
            "policy", "rate/s", "offered/s", "goodput/s", "good%", "rejected", "late", "p50"
        );
        let mut peak = 0.0f64;
        for rate in RATES {
            let mut s = Scenario::builder(format!("open-{}", policy.token()))
                .transport(Transport::Udp)
                .overload_policy(policy.clone())
                .client_pairs(300)
                .arrival_rate(rate)
                .setup_deadline(SimDuration::from_millis(200))
                .build();
            s.call_start = SimDuration::from_millis(700);
            s.measure_from = SimDuration::from_millis(2000);
            s.measure = SimDuration::from_millis(measure_ms);
            let r = s.run();
            let goodput = r.throughput.per_sec();
            peak = peak.max(goodput);
            println!(
                "{:<18} {:>9.0} {:>10.0} {:>10.0} {:>6.0}% {:>9} {:>8} {:>10}",
                policy.token(),
                rate,
                r.offered.per_sec(),
                goodput,
                100.0 * goodput / peak,
                r.calls_rejected,
                r.calls_late,
                r.invite_p50.to_string(),
            );
        }
        println!();
    }
}

fn main() {
    let measure_ms = 1_000 * siperf_bench::measure_secs().clamp(1, 2);
    println!("Goodput vs offered load, per transport x admission policy");
    println!("(measured window {measure_ms} ms; capacity knee ~600 pairs)\n");

    for transport in [Transport::Udp, Transport::Tcp] {
        println!("== {transport:?} ==");
        println!(
            "{:<18} {:>6} {:>10} {:>10} {:>7} {:>9} {:>9} {:>10}",
            "policy", "pairs", "offered/s", "goodput/s", "good%", "rejected", "retries", "p50"
        );
        for policy in policies() {
            let mut peak = 0.0f64;
            for pairs in LOADS {
                let mut s = Scenario::builder(format!("overload-{}", policy.token()))
                    .transport(transport)
                    .overload_policy(policy.clone())
                    .client_pairs(pairs)
                    .build();
                s.call_start = SimDuration::from_millis(700);
                s.measure_from = SimDuration::from_millis(1500);
                s.measure = SimDuration::from_millis(measure_ms);
                let r = s.run();
                let goodput = r.throughput.per_sec();
                peak = peak.max(goodput);
                println!(
                    "{:<18} {:>6} {:>10.0} {:>10.0} {:>6.0}% {:>9} {:>9} {:>10}",
                    policy.token(),
                    pairs,
                    r.offered.per_sec(),
                    goodput,
                    100.0 * goodput / peak,
                    r.calls_rejected,
                    r.rejection_retries,
                    r.invite_p50.to_string(),
                );
            }
            println!();
        }
    }

    open_loop_sweep(measure_ms);

    println!("good% is relative to the best goodput that policy reached in the");
    println!("sweep: watch NoControl fall away past the knee while the");
    println!("controlled rows stay flat and convert the excess into 503s.");
}
