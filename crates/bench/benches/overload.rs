//! Goodput vs offered load under overload control.
//!
//! Sweeps the offered load from well below to ~3× the proxy's capacity
//! (the knee sits near 600 caller/callee pairs) for each transport and
//! each admission policy, and prints goodput next to the offered rate.
//! The table shows the motivating contrast: without control, pushing
//! past saturation buys nothing but latency (UDP) or queueing collapse
//! (TCP); with admission control the proxy sheds the excess with 503s
//! and holds its goodput near the saturation peak.
//!
//! Run: `cargo bench --bench overload`
//! (set `SIPERF_MEASURE_SECS` to lengthen the measured window)

use siperf_simcore::time::SimDuration;
use siperf_workload::{OverloadConfig, Scenario, Transport};

/// Caller/callee pairs approximating 0.5×–3× of the saturation knee.
const LOADS: [usize; 5] = [300, 600, 900, 1200, 1800];

fn policies() -> Vec<OverloadConfig> {
    vec![
        OverloadConfig::NoControl,
        OverloadConfig::queue_threshold_default(),
        OverloadConfig::window_feedback_default(),
    ]
}

fn main() {
    let measure_ms = 1_000 * siperf_bench::measure_secs().clamp(1, 2);
    println!("Goodput vs offered load, per transport x admission policy");
    println!("(measured window {measure_ms} ms; capacity knee ~600 pairs)\n");

    for transport in [Transport::Udp, Transport::Tcp] {
        println!("== {transport:?} ==");
        println!(
            "{:<18} {:>6} {:>10} {:>10} {:>7} {:>9} {:>9} {:>10}",
            "policy", "pairs", "offered/s", "goodput/s", "good%", "rejected", "retries", "p50"
        );
        for policy in policies() {
            let mut peak = 0.0f64;
            for pairs in LOADS {
                let mut s = Scenario::builder(format!("overload-{}", policy.token()))
                    .transport(transport)
                    .overload_policy(policy.clone())
                    .client_pairs(pairs)
                    .build();
                s.call_start = SimDuration::from_millis(700);
                s.measure_from = SimDuration::from_millis(1500);
                s.measure = SimDuration::from_millis(measure_ms);
                let r = s.run();
                let goodput = r.throughput.per_sec();
                peak = peak.max(goodput);
                println!(
                    "{:<18} {:>6} {:>10.0} {:>10.0} {:>6.0}% {:>9} {:>9} {:>10}",
                    policy.token(),
                    pairs,
                    r.offered.per_sec(),
                    goodput,
                    100.0 * goodput / peak,
                    r.calls_rejected,
                    r.rejection_retries,
                    r.invite_p50.to_string(),
                );
            }
            println!();
        }
    }

    println!("good% is relative to the best goodput that policy reached in the");
    println!("sweep: watch NoControl fall away past the knee while the");
    println!("controlled rows stay flat and convert the excess into 503s.");
}
