//! §4.3 configuration ablations:
//!
//! * **A1** — supervisor priority: nice 0 vs nice −20 (the paper saw
//!   40–100% gains; this model reproduces the direction, not the 2.6.20
//!   scheduler's magnitude — see EXPERIMENTS.md).
//! * **A2** — idle-connection timeout: the 120 s default starves the
//!   server's descriptor budget under reconnect churn; 10 s (the paper's
//!   choice) does not.
//! * **A3** — worker-count selection: the sweep behind "24 workers for UDP
//!   and 32 for TCP".
//!
//! Run: `cargo bench -p siperf-bench --bench ablations`

use siperf_bench::measure_secs;
use siperf_proxy::config::Transport;
use siperf_simcore::time::SimDuration;
use siperf_simnet::NetConfig;
use siperf_workload::experiments::{
    idle_timeout_cell, supervisor_priority_cell, worker_count_cell,
};

fn a1_supervisor_priority(secs: u64) {
    println!();
    println!("A1 — supervisor priority (TCP persistent, 500 clients)");
    println!("------------------------------------------------------");
    let hi = supervisor_priority_cell(true, 500, secs).run();
    let lo = supervisor_priority_cell(false, 500, secs).run();
    println!(
        "nice -20: {:>9.0} ops/s    nice 0: {:>9.0} ops/s    gain: {:+.1}%",
        hi.throughput.per_sec(),
        lo.throughput.per_sec(),
        100.0 * (hi.throughput.per_sec() / lo.throughput.per_sec() - 1.0),
    );
    println!("paper: +40% to +100% (Linux 2.6.20 O(1)-scheduler starvation;");
    println!("       this model reproduces the direction, not the magnitude)");
}

fn a2_idle_timeout(_secs: u64) {
    println!();
    println!("A2 — idle-connection timeout under the 50 ops/conn workload");
    println!("------------------------------------------------------------");
    println!("(server descriptor budget capped at 3200; 30 simulated seconds");
    println!(" so the 120 s timeout's accumulation crosses the budget)");
    for timeout in [120u64, 10] {
        let mut cell = idle_timeout_cell(timeout, 500, 30);
        let mut net = NetConfig::lan();
        net.max_endpoints_per_host = 3_200;
        cell.net = net;
        cell.measure = SimDuration::from_secs(30);
        let r = cell.run();
        println!(
            "timeout {timeout:>4}s: {:>9.0} ops/s  connect errors {:>6}  open sockets at end {:>6}",
            r.throughput.per_sec(),
            r.connect_errors,
            r.server_endpoints,
        );
    }
    println!("paper: 120 s (the default) ran the server out of ports/descriptors;");
    println!("       all experiments therefore use 10 s.");
}

fn a3_worker_count(secs: u64) {
    println!();
    println!("A3 — worker-count selection (500 clients)");
    println!("-----------------------------------------");
    for transport in [Transport::Udp, Transport::Tcp] {
        print!("{:<4}", transport.token());
        for workers in [4usize, 8, 16, 24, 32, 48] {
            let r = worker_count_cell(transport, workers, 500, secs).run();
            print!("  {workers:>2}w:{:>6.0}", r.throughput.per_sec());
        }
        println!();
    }
    println!("paper: 24 workers (UDP) and 32 (TCP) \"perform well over a wide");
    println!("       range of experiments\".");
}

fn main() {
    let secs = measure_secs().min(4);
    println!("SIPerf — §4.3 configuration ablations");
    a1_supervisor_priority(secs);
    a2_idle_timeout(secs);
    a3_worker_count(secs);
}
