//! Property tests on the TCP model: a connection is a perfect, ordered,
//! lossless byte pipe in each direction under arbitrary send sizes and
//! read interleavings — the invariant SIP's `Content-Length` framing (and
//! therefore the whole TCP proxy) stands on.

use proptest::prelude::*;

use siperf_simcore::queue::EventQueue;
use siperf_simcore::time::SimTime;
use siperf_simnet::endpoint::bytes_from;
use siperf_simnet::event::NetEvent;
use siperf_simnet::net::Network;
use siperf_simnet::{EpId, Errno, HostId, NetConfig, SockAddr};

struct Pump {
    net: Network,
    q: EventQueue<NetEvent>,
    now: SimTime,
}

impl Pump {
    fn new(cfg: NetConfig, seed: u64) -> (Self, EpId, EpId) {
        let mut net = Network::new(cfg, seed);
        let server = net.add_host();
        let client = net.add_host();
        let listener = net.tcp_listen(server, 5060, 64).unwrap();
        let c = net
            .tcp_connect(SimTime::ZERO, client, SockAddr::new(server, 5060))
            .unwrap();
        let mut pump = Pump {
            net,
            q: EventQueue::new(),
            now: SimTime::ZERO,
        };
        pump.settle();
        let (s, _) = pump.net.tcp_try_accept(listener).unwrap();
        (pump, c, s)
    }

    /// Delivers every scheduled frame (advancing virtual time).
    fn settle(&mut self) {
        loop {
            for (t, ev) in self.net.take_events() {
                self.q.schedule(t, ev);
            }
            let _ = self.net.take_outcomes();
            match self.q.pop() {
                Some((t, ev)) => {
                    self.now = t;
                    self.net.handle_event(t, ev);
                }
                None => break,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the chunking of sends and reads, each direction delivers
    /// exactly the bytes that were written, in order.
    #[test]
    fn tcp_is_an_ordered_lossless_pipe(
        to_server in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..400), 0..12),
        to_client in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..400), 0..12),
        read_sizes in proptest::collection::vec(1usize..700, 1..40),
        seed in any::<u64>(),
    ) {
        let (mut pump, c, s) = Pump::new(NetConfig::lan(), seed);

        // Interleave sends from both sides; settle periodically so windows
        // stay open (payloads are far below the 64 KiB buffer).
        let mut i = 0;
        let mut j = 0;
        while i < to_server.len() || j < to_client.len() {
            if i < to_server.len() {
                pump.net
                    .tcp_send(pump.now, c, bytes_from(to_server[i].clone()))
                    .unwrap();
                i += 1;
            }
            if j < to_client.len() {
                pump.net
                    .tcp_send(pump.now, s, bytes_from(to_client[j].clone()))
                    .unwrap();
                j += 1;
            }
            pump.settle();
        }

        // Drain each side with arbitrary read sizes.
        let drain = |pump: &mut Pump, ep| {
            let mut got = Vec::new();
            let mut k = 0;
            loop {
                let max = read_sizes[k % read_sizes.len()];
                k += 1;
                match pump.net.tcp_try_recv(ep, max) {
                    Ok((bytes, _)) if !bytes.is_empty() => got.extend(bytes),
                    Ok(_) => break,
                    Err(Errno::WouldBlock) => break,
                    Err(e) => panic!("unexpected recv error: {e}"),
                }
            }
            got
        };
        let got_server = drain(&mut pump, s);
        let got_client = drain(&mut pump, c);

        prop_assert_eq!(got_server, to_server.concat());
        prop_assert_eq!(got_client, to_client.concat());
    }

    /// Closing after sending never loses data: the peer reads everything,
    /// then sees EOF; total host endpoints return to just the listener.
    #[test]
    fn close_after_send_drains_then_eofs(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..300), 1..8),
        seed in any::<u64>(),
    ) {
        let (mut pump, c, s) = Pump::new(NetConfig::lan(), seed);
        for p in &payloads {
            pump.net
                .tcp_send(pump.now, c, bytes_from(p.clone()))
                .unwrap();
        }
        pump.net.close(pump.now, c);
        pump.settle();

        let mut got = Vec::new();
        let eof = loop {
            match pump.net.tcp_try_recv(s, 128) {
                Ok((bytes, eof)) => {
                    got.extend(bytes);
                    if eof {
                        break true;
                    }
                }
                Err(e) => panic!("unexpected recv error: {e}"),
            }
        };
        prop_assert!(eof);
        prop_assert_eq!(got, payloads.concat());
        pump.net.close(pump.now, s);
        pump.settle();
        // Only the listener remains on the server host, nothing on the
        // client host.
        prop_assert_eq!(pump.net.endpoints_on(HostId(0)), 1);
        prop_assert_eq!(pump.net.endpoints_on(HostId(1)), 0);
    }
}
