//! Per-host ephemeral port allocation with TIME_WAIT.
//!
//! The paper's §4.3 configuration discussion hinges on port/descriptor
//! starvation: with OpenSER's default 120-second idle-connection timeout the
//! server "ran out of available ports" under reconnect-heavy workloads.
//! [`PortPool`] models the Linux behaviour that produces it — a bounded
//! ephemeral range, quasi-sequential allocation, and ports held unusable in
//! TIME_WAIT after an active close.

use std::collections::{HashSet, VecDeque};

use crate::addr::Port;
use crate::error::Errno;

/// A host's ephemeral port pool.
#[derive(Debug, Clone)]
pub struct PortPool {
    free: VecDeque<Port>,
    in_use: HashSet<Port>,
    time_wait: HashSet<Port>,
    lo: Port,
    hi: Port,
}

impl PortPool {
    /// Creates a pool covering `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(lo: Port, hi: Port) -> Self {
        assert!(lo <= hi, "empty ephemeral range");
        PortPool {
            free: (lo..=hi).collect(),
            in_use: HashSet::new(),
            time_wait: HashSet::new(),
            lo,
            hi,
        }
    }

    /// Allocates the next free ephemeral port.
    ///
    /// # Errors
    ///
    /// [`Errno::PortsExhausted`] when every port is bound or in TIME_WAIT.
    pub fn allocate(&mut self) -> Result<Port, Errno> {
        let port = self.free.pop_front().ok_or(Errno::PortsExhausted)?;
        self.in_use.insert(port);
        Ok(port)
    }

    /// Releases a port directly back to the pool (passive close: no
    /// TIME_WAIT on this side).
    pub fn release(&mut self, port: Port) {
        if self.in_use.remove(&port) {
            self.free.push_back(port);
        }
    }

    /// Moves a port into TIME_WAIT (active close). The caller is responsible
    /// for scheduling the eventual [`PortPool::release_time_wait`].
    pub fn enter_time_wait(&mut self, port: Port) {
        if self.in_use.remove(&port) {
            self.time_wait.insert(port);
        }
    }

    /// Returns a TIME_WAIT port to the free pool.
    pub fn release_time_wait(&mut self, port: Port) {
        if self.time_wait.remove(&port) {
            self.free.push_back(port);
        }
    }

    /// Number of ports currently available for allocation.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Number of ports sitting in TIME_WAIT.
    pub fn in_time_wait(&self) -> usize {
        self.time_wait.len()
    }

    /// Number of allocated (bound) ports.
    pub fn allocated(&self) -> usize {
        self.in_use.len()
    }

    /// Total pool size.
    pub fn capacity(&self) -> usize {
        (self.hi - self.lo) as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_sequentially_and_exhausts() {
        let mut p = PortPool::new(100, 102);
        assert_eq!(p.allocate().unwrap(), 100);
        assert_eq!(p.allocate().unwrap(), 101);
        assert_eq!(p.allocate().unwrap(), 102);
        assert_eq!(p.allocate(), Err(Errno::PortsExhausted));
        assert_eq!(p.available(), 0);
        assert_eq!(p.allocated(), 3);
    }

    #[test]
    fn release_recycles() {
        let mut p = PortPool::new(100, 100);
        let port = p.allocate().unwrap();
        p.release(port);
        assert_eq!(p.allocate().unwrap(), port);
    }

    #[test]
    fn time_wait_blocks_reuse_until_released() {
        let mut p = PortPool::new(100, 100);
        let port = p.allocate().unwrap();
        p.enter_time_wait(port);
        assert_eq!(p.in_time_wait(), 1);
        assert_eq!(p.allocate(), Err(Errno::PortsExhausted));
        p.release_time_wait(port);
        assert_eq!(p.allocate().unwrap(), port);
    }

    #[test]
    fn releasing_unallocated_port_is_harmless() {
        let mut p = PortPool::new(100, 101);
        p.release(100); // never allocated
        p.release_time_wait(100);
        assert_eq!(p.available(), 2);
        assert_eq!(p.allocate().unwrap(), 100);
    }

    #[test]
    fn capacity_matches_range() {
        assert_eq!(PortPool::new(32768, 61000).capacity(), 28233);
    }

    #[test]
    #[should_panic(expected = "empty ephemeral range")]
    fn rejects_inverted_range() {
        PortPool::new(10, 9);
    }
}
