//! Error numbers for simulated socket operations.

use std::fmt;

/// The subset of POSIX errno values the simulated stack can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Errno {
    /// Connection attempt was refused (no listener, or accept queue full).
    ConnRefused,
    /// Peer endpoint was closed; writing is no longer possible.
    ConnReset,
    /// Address already bound by another socket.
    AddrInUse,
    /// The host's ephemeral-port pool is exhausted.
    PortsExhausted,
    /// The host's descriptor/endpoint budget is exhausted.
    Emfile,
    /// Operation on a socket that is not connected/established.
    NotConnected,
    /// Non-blocking operation would block.
    WouldBlock,
    /// Operation timed out.
    TimedOut,
    /// The file descriptor does not refer to a valid object.
    BadFd,
    /// Operation is not valid for this socket type.
    InvalidOp,
    /// The channel/queue peer is gone.
    BrokenPipe,
}

impl Errno {
    /// Short lowercase description, errno-style.
    pub fn as_str(self) -> &'static str {
        match self {
            Errno::ConnRefused => "connection refused",
            Errno::ConnReset => "connection reset by peer",
            Errno::AddrInUse => "address already in use",
            Errno::PortsExhausted => "ephemeral ports exhausted",
            Errno::Emfile => "too many open descriptors",
            Errno::NotConnected => "socket is not connected",
            Errno::WouldBlock => "operation would block",
            Errno::TimedOut => "operation timed out",
            Errno::BadFd => "bad file descriptor",
            Errno::InvalidOp => "invalid operation for socket type",
            Errno::BrokenPipe => "broken pipe",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::error::Error for Errno {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_lowercase_without_punctuation() {
        let msg = Errno::ConnRefused.to_string();
        assert_eq!(msg, "connection refused");
        assert!(!msg.ends_with('.'));
    }
}
