//! The network fabric: hosts, latency, and the endpoint table.
//!
//! [`Network`] is a pure state machine. The simulated kernel calls socket
//! operations on it, drains the events it wants delivered later
//! ([`Network::take_events`]) into the global event queue, feeds them back
//! through [`Network::handle_event`] when they fire, and drains the
//! readiness [`NetOutcome`]s ([`Network::take_outcomes`]) to wake blocked
//! processes.

use std::collections::HashMap;

use siperf_simcore::arena::Arena;
use siperf_simcore::rng::SimRng;
use siperf_simcore::time::{SimDuration, SimTime};

use crate::addr::{HostId, Port, SockAddr};
use crate::config::NetConfig;
use crate::endpoint::{Bytes, Datagram, Endpoint, EpId, UdpEp};
use crate::error::Errno;
use crate::event::{NetEvent, NetOutcome};
use crate::fault::FaultState;
use crate::ports::PortPool;

/// Aggregate traffic statistics for a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct NetStats {
    /// UDP datagrams handed to the network.
    pub udp_sent: u64,
    /// UDP datagrams dropped by the loss model.
    pub udp_lost: u64,
    /// UDP datagrams dropped at full receive queues.
    pub udp_queue_drops: u64,
    /// TCP connections fully established.
    pub tcp_established: u64,
    /// TCP connection attempts refused.
    pub tcp_refused: u64,
    /// TCP segments delivered.
    pub tcp_segments: u64,
    /// Application bytes carried over TCP.
    pub tcp_bytes: u64,
    /// SCTP messages delivered.
    pub sctp_messages: u64,
    /// SCTP associations established.
    pub sctp_assocs: u64,
    /// Frames dropped by injected link faults (partition/burst loss).
    pub fault_drops: u64,
    /// Reliable-transport frames delayed by injected link faults.
    pub fault_delays: u64,
    /// TCP connections killed by injected RSTs.
    pub tcp_resets: u64,
}

/// The simulated network fabric.
#[derive(Debug)]
pub struct Network {
    pub(crate) cfg: NetConfig,
    pub(crate) eps: Arena<Endpoint>,
    pub(crate) udp_bound: HashMap<SockAddr, EpId>,
    pub(crate) tcp_listeners: HashMap<SockAddr, EpId>,
    pub(crate) sctp_bound: HashMap<SockAddr, EpId>,
    pub(crate) ports: Vec<PortPool>,
    pub(crate) ep_count: Vec<usize>,
    pub(crate) rng: SimRng,
    /// Dedicated stream for fault decisions (loss, burst chains): isolated
    /// from `rng` so toggling faults never shifts the jitter schedule.
    pub(crate) fault_rng: SimRng,
    pub(crate) faults: FaultState,
    pub(crate) events: Vec<(SimTime, NetEvent)>,
    pub(crate) outcomes: Vec<NetOutcome>,
    pub(crate) stats: NetStats,
}

impl Network {
    /// Creates a fabric with the given parameters and RNG seed (for latency
    /// jitter and the UDP loss model).
    pub fn new(cfg: NetConfig, seed: u64) -> Self {
        Network {
            cfg,
            eps: Arena::with_capacity(1024),
            udp_bound: HashMap::new(),
            tcp_listeners: HashMap::new(),
            sctp_bound: HashMap::new(),
            ports: Vec::new(),
            ep_count: Vec::new(),
            rng: SimRng::seed_from_u64(seed ^ 0x6e65_7421),
            fault_rng: SimRng::seed_from_u64(seed ^ 0xfa17_0bad),
            faults: FaultState::default(),
            events: Vec::new(),
            outcomes: Vec::new(),
            stats: NetStats::default(),
        }
    }

    /// Registers a machine and returns its id.
    pub fn add_host(&mut self) -> HostId {
        let id = HostId(self.ports.len() as u32);
        self.ports
            .push(PortPool::new(self.cfg.ephemeral_lo, self.cfg.ephemeral_hi));
        self.ep_count.push(0);
        id
    }

    /// The active configuration.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Live endpoints on `host` (sockets the host's descriptor budget pays
    /// for).
    pub fn endpoints_on(&self, host: HostId) -> usize {
        self.ep_count[host.0 as usize]
    }

    /// Ephemeral ports currently available on `host`.
    pub fn ports_available(&self, host: HostId) -> usize {
        self.ports[host.0 as usize].available()
    }

    /// Ports of `host` currently held in TIME_WAIT.
    pub fn ports_in_time_wait(&self, host: HostId) -> usize {
        self.ports[host.0 as usize].in_time_wait()
    }

    /// Drains wire events scheduled by operations since the last call. The
    /// kernel must enqueue each at its timestamp and hand it back through
    /// [`Network::handle_event`].
    pub fn take_events(&mut self) -> Vec<(SimTime, NetEvent)> {
        std::mem::take(&mut self.events)
    }

    /// Drains readiness outcomes produced since the last call.
    pub fn take_outcomes(&mut self) -> Vec<NetOutcome> {
        std::mem::take(&mut self.outcomes)
    }

    /// One-way delivery delay for the next frame (latency plus jitter plus
    /// any active latency-spike fault).
    pub(crate) fn delay(&mut self, now: SimTime) -> SimDuration {
        let jitter_ns = self.cfg.latency_jitter.as_nanos();
        let jitter = if jitter_ns == 0 {
            0
        } else {
            self.rng.range_u64(0..jitter_ns)
        };
        self.cfg.one_way_latency + SimDuration::from_nanos(jitter) + self.spike_extra(now)
    }

    pub(crate) fn charge_endpoint(&mut self, host: HostId) -> Result<(), Errno> {
        let n = &mut self.ep_count[host.0 as usize];
        if *n >= self.cfg.max_endpoints_per_host {
            return Err(Errno::Emfile);
        }
        *n += 1;
        Ok(())
    }

    pub(crate) fn uncharge_endpoint(&mut self, host: HostId) {
        let n = &mut self.ep_count[host.0 as usize];
        debug_assert!(*n > 0, "endpoint count underflow");
        *n = n.saturating_sub(1);
    }

    /// True if a read-like operation on `ep` would complete immediately
    /// (data, EOF, failure, or an acceptable connection).
    pub fn readable(&self, ep: EpId) -> bool {
        match self.eps.get(ep) {
            Some(Endpoint::Udp(u)) => !u.rx.is_empty(),
            Some(Endpoint::TcpListener(l)) => !l.queue.is_empty(),
            Some(Endpoint::Tcp(t)) => t.readable(),
            Some(Endpoint::Sctp(s)) => !s.rx.is_empty(),
            None => true, // stale fd: let the caller observe the error
        }
    }

    /// Dispatches a wire event that the kernel's clock says is due.
    pub fn handle_event(&mut self, now: SimTime, ev: NetEvent) {
        match ev {
            NetEvent::UdpDeliver { to, dgram } => self.udp_deliver(to, dgram),
            NetEvent::TcpSyn {
                to_host,
                to_port,
                from_ep,
                from_addr,
            } => self.tcp_syn(now, to_host, to_port, from_ep, from_addr),
            NetEvent::TcpSynAck { to, server_ep } => self.tcp_syn_ack(to, server_ep),
            NetEvent::TcpRefused { to, err } => self.tcp_refused(to, err),
            NetEvent::TcpSegment {
                to,
                data,
                offset,
                len,
            } => self.tcp_segment(to, data, offset, len),
            NetEvent::TcpFin { to } => self.tcp_fin(to),
            NetEvent::PortRelease { host, port } => {
                self.ports[host.0 as usize].release_time_wait(port);
            }
            NetEvent::SctpDeliver {
                to_host,
                to_port,
                from,
                data,
            } => self.sctp_deliver(to_host, to_port, from, data),
            NetEvent::AcceptThaw { host } => self.accept_thaw(now, host),
        }
    }

    // ---------------------------------------------------------------- UDP

    /// Binds a UDP socket on `host:port`.
    ///
    /// # Errors
    ///
    /// [`Errno::AddrInUse`] if the port is taken, [`Errno::Emfile`] if the
    /// host's descriptor budget is spent.
    pub fn udp_bind(&mut self, host: HostId, port: Port) -> Result<EpId, Errno> {
        let addr = SockAddr::new(host, port);
        if self.udp_bound.contains_key(&addr) {
            return Err(Errno::AddrInUse);
        }
        self.charge_endpoint(host)?;
        let ep = self.eps.insert(Endpoint::Udp(UdpEp {
            local: addr,
            rx: Default::default(),
            dropped: 0,
        }));
        self.udp_bound.insert(addr, ep);
        Ok(ep)
    }

    /// Binds a UDP socket on an ephemeral port of `host`.
    ///
    /// # Errors
    ///
    /// Propagates pool exhaustion and descriptor-budget errors.
    pub fn udp_bind_ephemeral(&mut self, host: HostId) -> Result<(EpId, Port), Errno> {
        let port = self.ports[host.0 as usize].allocate()?;
        match self.udp_bind(host, port) {
            Ok(ep) => Ok((ep, port)),
            Err(e) => {
                self.ports[host.0 as usize].release(port);
                Err(e)
            }
        }
    }

    /// Sends one datagram from a bound socket to `to`.
    ///
    /// Delivery (or loss) is resolved now; the receiving socket is resolved
    /// at delivery time.
    ///
    /// # Errors
    ///
    /// [`Errno::BadFd`] if `from` is not a UDP socket.
    pub fn udp_send(
        &mut self,
        now: SimTime,
        from: EpId,
        to: SockAddr,
        data: Bytes,
    ) -> Result<(), Errno> {
        let from_addr = match self.eps.get(from) {
            Some(Endpoint::Udp(u)) => u.local,
            _ => return Err(Errno::BadFd),
        };
        self.stats.udp_sent += 1;
        // Draw the latency jitter *before* any drop decision so lossy and
        // clean runs consume the jitter stream identically; all loss
        // randomness comes from the dedicated fault stream.
        let delay = self.delay(now);
        if self.cfg.udp_loss > 0.0 && self.fault_rng.chance(self.cfg.udp_loss) {
            self.stats.udp_lost += 1;
            return Ok(()); // silently lost, like real UDP
        }
        if self.link_drops(now, from_addr.host, to.host) {
            self.stats.udp_lost += 1;
            return Ok(());
        }
        if let Some(&dst) = self.udp_bound.get(&to) {
            self.events.push((
                now + delay,
                NetEvent::UdpDeliver {
                    to: dst,
                    dgram: Datagram {
                        from: from_addr,
                        data,
                    },
                },
            ));
        }
        // No receiver: datagram vanishes (ICMP unreachable not modelled).
        Ok(())
    }

    /// Non-blocking receive on a UDP socket.
    ///
    /// # Errors
    ///
    /// [`Errno::WouldBlock`] when the queue is empty; [`Errno::BadFd`] for
    /// non-UDP endpoints.
    pub fn udp_try_recv(&mut self, ep: EpId) -> Result<Datagram, Errno> {
        match self.eps.get_mut(ep) {
            Some(Endpoint::Udp(u)) => u.rx.pop_front().ok_or(Errno::WouldBlock),
            Some(_) => Err(Errno::BadFd),
            None => Err(Errno::BadFd),
        }
    }

    fn udp_deliver(&mut self, to: EpId, dgram: Datagram) {
        let cap = self.cfg.udp_rcv_queue;
        if let Some(Endpoint::Udp(u)) = self.eps.get_mut(to) {
            if u.rx.len() >= cap {
                u.dropped += 1;
                self.stats.udp_queue_drops += 1;
            } else {
                u.rx.push_back(dgram);
                self.outcomes.push(NetOutcome::Readable(to));
            }
        }
    }

    /// Closes any endpoint type, releasing names, ports, and peer state.
    pub fn close(&mut self, now: SimTime, ep: EpId) {
        match self.eps.get(ep) {
            Some(Endpoint::Udp(_)) => self.close_udp(ep),
            Some(Endpoint::TcpListener(_)) => self.close_listener(now, ep),
            Some(Endpoint::Tcp(_)) => self.close_tcp(now, ep),
            Some(Endpoint::Sctp(_)) => self.close_sctp(ep),
            None => {}
        }
    }

    fn close_udp(&mut self, ep: EpId) {
        if let Some(Endpoint::Udp(u)) = self.eps.get(ep) {
            let addr = u.local;
            self.udp_bound.remove(&addr);
            self.eps.remove(ep);
            self.uncharge_endpoint(addr.host);
            if addr.port >= self.cfg.ephemeral_lo && addr.port <= self.cfg.ephemeral_hi {
                self.ports[addr.host.0 as usize].release(addr.port);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::bytes_from;

    fn net() -> (Network, HostId, HostId) {
        let mut n = Network::new(NetConfig::lan(), 1);
        let a = n.add_host();
        let b = n.add_host();
        (n, a, b)
    }

    /// Runs all pending events whose time has come, in order; returns the
    /// outcomes produced. Small helper standing in for the kernel loop.
    fn pump(n: &mut Network) -> Vec<NetOutcome> {
        let mut evs = n.take_events();
        evs.sort_by_key(|(t, _)| *t);
        for (t, ev) in evs {
            n.handle_event(t, ev);
        }
        n.take_outcomes()
    }

    #[test]
    fn udp_roundtrip() {
        let (mut n, a, b) = net();
        let sa = n.udp_bind(a, 5060).unwrap();
        let (sb, port_b) = n.udp_bind_ephemeral(b).unwrap();
        n.udp_send(
            SimTime::ZERO,
            sb,
            SockAddr::new(a, 5060),
            bytes_from(b"INVITE".to_vec()),
        )
        .unwrap();
        let outcomes = pump(&mut n);
        assert_eq!(outcomes, vec![NetOutcome::Readable(sa)]);
        let d = n.udp_try_recv(sa).unwrap();
        assert_eq!(&*d.data, b"INVITE");
        assert_eq!(d.from, SockAddr::new(b, port_b));
        assert_eq!(n.udp_try_recv(sa), Err(Errno::WouldBlock));
        assert_eq!(n.stats().udp_sent, 1);
    }

    #[test]
    fn udp_bind_conflicts() {
        let (mut n, a, _) = net();
        n.udp_bind(a, 5060).unwrap();
        assert_eq!(n.udp_bind(a, 5060), Err(Errno::AddrInUse));
    }

    #[test]
    fn udp_to_unbound_port_vanishes() {
        let (mut n, a, b) = net();
        let (sb, _) = n.udp_bind_ephemeral(b).unwrap();
        n.udp_send(SimTime::ZERO, sb, SockAddr::new(a, 9), bytes_from(vec![1]))
            .unwrap();
        assert!(pump(&mut n).is_empty());
    }

    #[test]
    fn udp_loss_model_drops() {
        let mut cfg = NetConfig::lan();
        cfg.udp_loss = 1.0;
        let mut n = Network::new(cfg, 1);
        let a = n.add_host();
        let b = n.add_host();
        let sa = n.udp_bind(a, 5060).unwrap();
        let (sb, _) = n.udp_bind_ephemeral(b).unwrap();
        n.udp_send(
            SimTime::ZERO,
            sb,
            SockAddr::new(a, 5060),
            bytes_from(vec![1]),
        )
        .unwrap();
        assert!(pump(&mut n).is_empty());
        assert_eq!(n.stats().udp_lost, 1);
        assert_eq!(n.udp_try_recv(sa), Err(Errno::WouldBlock));
    }

    #[test]
    fn udp_queue_overflow_drops() {
        let mut cfg = NetConfig::lan();
        cfg.udp_rcv_queue = 2;
        let mut n = Network::new(cfg, 1);
        let a = n.add_host();
        let b = n.add_host();
        let _sa = n.udp_bind(a, 5060).unwrap();
        let (sb, _) = n.udp_bind_ephemeral(b).unwrap();
        for _ in 0..5 {
            n.udp_send(
                SimTime::ZERO,
                sb,
                SockAddr::new(a, 5060),
                bytes_from(vec![1]),
            )
            .unwrap();
        }
        let readable = pump(&mut n).len();
        assert_eq!(readable, 2);
        assert_eq!(n.stats().udp_queue_drops, 3);
    }

    #[test]
    fn udp_close_releases_name_and_port() {
        let (mut n, a, _) = net();
        let (ep, port) = n.udp_bind_ephemeral(a).unwrap();
        let avail = n.ports_available(a);
        n.close(SimTime::ZERO, ep);
        assert_eq!(n.ports_available(a), avail + 1);
        assert_eq!(n.endpoints_on(a), 0);
        // Name free again.
        n.udp_bind(a, port).unwrap();
    }

    #[test]
    fn endpoint_budget_enforced() {
        let mut cfg = NetConfig::lan();
        cfg.max_endpoints_per_host = 1;
        let mut n = Network::new(cfg, 1);
        let a = n.add_host();
        n.udp_bind(a, 1000).unwrap();
        assert_eq!(n.udp_bind(a, 1001), Err(Errno::Emfile));
    }

    #[test]
    fn delay_within_bounds() {
        let (mut n, _, _) = net();
        for _ in 0..100 {
            let d = n.delay(SimTime::ZERO);
            assert!(d >= n.cfg.one_way_latency);
            assert!(d < n.cfg.one_way_latency + n.cfg.latency_jitter);
        }
    }
}
