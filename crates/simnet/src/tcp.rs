//! The TCP model: handshake, ordered byte streams, backpressure, ports.
//!
//! Faithful enough for the paper's phenomena to emerge:
//!
//! * **Connection establishment costs a round trip** and server-side accept
//!   work — why OpenSER must keep connections open across transactions.
//! * **Streams have no message boundaries**: sends are delivered in
//!   MSS-sized segments and receivers see arbitrary chunk boundaries, so the
//!   SIP layer genuinely reframes messages (the reason only one worker may
//!   read a connection, §3.1).
//! * **Receive buffers apply backpressure**: a sender blocks when the peer's
//!   buffer is full — one half of the §6 supervisor/worker deadlock.
//! * **Closes hold ephemeral ports in TIME_WAIT**, so churny workloads with
//!   long idle timeouts starve the pool (§4.3).

use siperf_simcore::time::SimTime;

use crate::addr::{HostId, Port, SockAddr};
use crate::endpoint::{Bytes, Endpoint, EpId, ListenEp, TcpEp, TcpState};
use crate::error::Errno;
use crate::event::{NetEvent, NetOutcome};
use crate::net::Network;

impl Network {
    // ------------------------------------------------------------- setup

    /// Puts a socket into LISTEN state on `host:port`.
    ///
    /// # Errors
    ///
    /// [`Errno::AddrInUse`] if the port already has a listener;
    /// [`Errno::Emfile`] if the host's descriptor budget is spent.
    pub fn tcp_listen(&mut self, host: HostId, port: Port, backlog: usize) -> Result<EpId, Errno> {
        let addr = SockAddr::new(host, port);
        if self.tcp_listeners.contains_key(&addr) {
            return Err(Errno::AddrInUse);
        }
        self.charge_endpoint(host)?;
        let backlog = backlog.min(self.cfg.accept_backlog).max(1);
        let ep = self.eps.insert(Endpoint::TcpListener(ListenEp {
            local: addr,
            backlog,
            queue: Default::default(),
        }));
        self.tcp_listeners.insert(addr, ep);
        Ok(ep)
    }

    /// Starts a connection from `host` to `to`. The returned endpoint is in
    /// `SynSent`; a [`NetOutcome::ConnectOk`] or [`NetOutcome::ConnectErr`]
    /// follows once the handshake resolves.
    ///
    /// # Errors
    ///
    /// [`Errno::PortsExhausted`] or [`Errno::Emfile`] when local resources
    /// are spent.
    pub fn tcp_connect(&mut self, now: SimTime, host: HostId, to: SockAddr) -> Result<EpId, Errno> {
        let port = self.ports[host.0 as usize].allocate()?;
        if let Err(e) = self.charge_endpoint(host) {
            self.ports[host.0 as usize].release(port);
            return Err(e);
        }
        let local = SockAddr::new(host, port);
        let ep = self.eps.insert(Endpoint::Tcp(TcpEp {
            local,
            peer_addr: to,
            peer: EpId::DANGLING,
            state: TcpState::SynSent,
            rx: Default::default(),
            rx_bytes: 0,
            eof: false,
            in_flight: 0,
            next_deliver_at: SimTime::ZERO,
            owns_port: true,
            app_closed: false,
        }));
        // A partition or burst hit on the SYN shows up as handshake delay
        // (the stack retransmits SYNs), never as a silent drop.
        let delay = self.delay(now) + self.link_extra(now, host, to.host);
        self.events.push((
            now + delay,
            NetEvent::TcpSyn {
                to_host: to.host,
                to_port: to.port,
                from_ep: ep,
                from_addr: local,
            },
        ));
        Ok(ep)
    }

    /// Non-blocking accept.
    ///
    /// # Errors
    ///
    /// [`Errno::WouldBlock`] when the queue is empty; [`Errno::BadFd`] on a
    /// non-listener.
    pub fn tcp_try_accept(&mut self, listener: EpId) -> Result<(EpId, SockAddr), Errno> {
        let host = match self.eps.get(listener) {
            Some(Endpoint::TcpListener(l)) => l.local.host,
            _ => return Err(Errno::BadFd),
        };
        if self.accepts_frozen(host) {
            // Accept-queue freeze fault: connections keep queueing but the
            // application cannot reap them until the thaw.
            return Err(Errno::WouldBlock);
        }
        match self.eps.get_mut(listener) {
            Some(Endpoint::TcpListener(l)) => l.queue.pop_front().ok_or(Errno::WouldBlock),
            _ => Err(Errno::BadFd),
        }
    }

    /// Current state of a connection endpoint.
    ///
    /// # Errors
    ///
    /// [`Errno::BadFd`] for anything that is not a live TCP connection.
    pub fn tcp_state(&self, ep: EpId) -> Result<TcpState, Errno> {
        match self.eps.get(ep) {
            Some(Endpoint::Tcp(t)) => Ok(t.state),
            _ => Err(Errno::BadFd),
        }
    }

    /// Remote address of a connection endpoint.
    ///
    /// # Errors
    ///
    /// [`Errno::BadFd`] for anything that is not a live TCP connection.
    pub fn tcp_peer_addr(&self, ep: EpId) -> Result<SockAddr, Errno> {
        match self.eps.get(ep) {
            Some(Endpoint::Tcp(t)) => Ok(t.peer_addr),
            _ => Err(Errno::BadFd),
        }
    }

    // -------------------------------------------------------------- data

    /// Bytes the peer's receive buffer can still absorb from this sender.
    pub fn tcp_free_window(&self, ep: EpId) -> usize {
        let Some(Endpoint::Tcp(t)) = self.eps.get(ep) else {
            return 0;
        };
        let Some(Endpoint::Tcp(peer)) = self.eps.get(t.peer) else {
            return 0;
        };
        self.cfg
            .tcp_rcv_buf
            .saturating_sub(peer.rx_bytes + t.in_flight)
    }

    /// Queues `data` on the stream. All-or-nothing: if the peer's window
    /// cannot take the whole buffer the call fails with
    /// [`Errno::WouldBlock`] and the kernel blocks the writer until a
    /// [`NetOutcome::Writable`] arrives.
    ///
    /// # Errors
    ///
    /// [`Errno::WouldBlock`] on a full window; [`Errno::ConnReset`] when the
    /// peer is gone or has closed; [`Errno::NotConnected`] during the
    /// handshake; [`Errno::BadFd`] on non-connections.
    ///
    /// # Panics
    ///
    /// Panics on empty payloads — a send of nothing is always an
    /// application bug.
    pub fn tcp_send(&mut self, now: SimTime, ep: EpId, data: Bytes) -> Result<(), Errno> {
        assert!(!data.is_empty(), "tcp_send of empty payload");
        let (peer, state, app_closed, from_host, to_host) = match self.eps.get(ep) {
            Some(Endpoint::Tcp(t)) => (
                t.peer,
                t.state,
                t.app_closed,
                t.local.host,
                t.peer_addr.host,
            ),
            _ => return Err(Errno::BadFd),
        };
        if app_closed {
            return Err(Errno::BadFd);
        }
        match state {
            TcpState::SynSent => return Err(Errno::NotConnected),
            TcpState::Failed(e) => return Err(e),
            TcpState::PeerClosed => return Err(Errno::ConnReset),
            TcpState::Established => {}
        }
        if !matches!(self.eps.get(peer), Some(Endpoint::Tcp(_))) {
            return Err(Errno::ConnReset);
        }
        if self.tcp_free_window(ep) < data.len() {
            return Err(Errno::WouldBlock);
        }

        // One fault verdict per send: a "lost" frame on a reliable stream
        // stalls the whole send by a retransmission timeout.
        let fault_extra = self.link_extra(now, from_host, to_host);
        let mss = self.cfg.mss;
        let total = data.len();
        let mut offset = 0;
        while offset < total {
            let len = mss.min(total - offset);
            let delay = self.delay(now) + fault_extra;
            // In-order delivery: a later segment may never arrive earlier
            // than a previous one on the same stream.
            let (deliver_at, seg) = {
                let Some(Endpoint::Tcp(t)) = self.eps.get_mut(ep) else {
                    unreachable!("checked above");
                };
                let at = (now + delay).max(t.next_deliver_at);
                t.next_deliver_at = at;
                t.in_flight += len;
                (
                    at,
                    NetEvent::TcpSegment {
                        to: peer,
                        data: data.clone(),
                        offset,
                        len,
                    },
                )
            };
            self.events.push((deliver_at, seg));
            self.stats.tcp_segments += 1;
            offset += len;
        }
        self.stats.tcp_bytes += total as u64;
        Ok(())
    }

    /// Non-blocking read of up to `max` bytes.
    ///
    /// Returns the bytes read and whether EOF has been reached (peer closed
    /// and the stream is drained).
    ///
    /// # Errors
    ///
    /// [`Errno::WouldBlock`] when no data or EOF is available yet; the
    /// connection's failure errno after a failed connect; [`Errno::BadFd`]
    /// on non-connections.
    pub fn tcp_try_recv(&mut self, ep: EpId, max: usize) -> Result<(Vec<u8>, bool), Errno> {
        let (out, drained, peer, eof) = {
            let t = match self.eps.get_mut(ep) {
                Some(Endpoint::Tcp(t)) => t,
                _ => return Err(Errno::BadFd),
            };
            if let TcpState::Failed(e) = t.state {
                return Err(e);
            }
            let mut out = Vec::new();
            while out.len() < max {
                let Some((buf, off)) = t.rx.front_mut() else {
                    break;
                };
                let take = (buf.len() - *off).min(max - out.len());
                out.extend_from_slice(&buf[*off..*off + take]);
                *off += take;
                if *off == buf.len() {
                    t.rx.pop_front();
                }
            }
            t.rx_bytes -= out.len();
            let eof = t.eof && t.rx_bytes == 0;
            if out.is_empty() && !eof {
                return Err(Errno::WouldBlock);
            }
            (out.clone(), !out.is_empty(), t.peer, eof)
        };
        if drained {
            if let Some(Endpoint::Tcp(_)) = self.eps.get(peer) {
                // Window opened: blocked writers on the peer may proceed.
                self.outcomes.push(NetOutcome::Writable(peer));
            }
        }
        Ok((out, eof))
    }

    // ------------------------------------------------------------- close

    pub(crate) fn close_tcp(&mut self, now: SimTime, ep: EpId) {
        let Some(Endpoint::Tcp(t)) = self.eps.get(ep) else {
            return;
        };
        let host = t.local.host;
        let port = t.local.port;
        let owns_port = t.owns_port;
        let peer = t.peer;
        let state = t.state;
        let passive = t.eof; // peer FIN'd first: we are the passive closer
        let stream_tail = t.next_deliver_at; // FIN may not overtake data

        // Tell the peer we are gone and unstick any of its blocked writers.
        if let Some(Endpoint::Tcp(p)) = self.eps.get_mut(peer) {
            if !p.app_closed {
                // Data still in flight towards us will be discarded when it
                // arrives at our (now removed) endpoint; credit it back so
                // the peer's window accounting cannot wedge.
                p.in_flight = 0;
                let delay = self.delay(now);
                let at = (now + delay).max(stream_tail);
                self.events.push((at, NetEvent::TcpFin { to: peer }));
                self.outcomes.push(NetOutcome::Writable(peer));
            }
        }

        self.eps.remove(ep);
        self.uncharge_endpoint(host);
        if owns_port {
            let pool = &mut self.ports[host.0 as usize];
            let active_close = matches!(state, TcpState::Established) && !passive;
            if active_close {
                pool.enter_time_wait(port);
                self.events.push((
                    now + self.cfg.time_wait,
                    NetEvent::PortRelease { host, port },
                ));
            } else {
                // Never established, failed, or passive close: no TIME_WAIT.
                pool.release(port);
            }
        }
    }

    pub(crate) fn close_listener(&mut self, now: SimTime, ep: EpId) {
        let Some(Endpoint::TcpListener(l)) = self.eps.get(ep) else {
            return;
        };
        let addr = l.local;
        let pending: Vec<EpId> = l.queue.iter().map(|(e, _)| *e).collect();
        for conn in pending {
            self.close_tcp(now, conn);
        }
        self.tcp_listeners.remove(&addr);
        self.eps.remove(ep);
        self.uncharge_endpoint(addr.host);
    }

    // ------------------------------------------------------ wire events

    pub(crate) fn tcp_syn(
        &mut self,
        now: SimTime,
        to_host: HostId,
        to_port: Port,
        from_ep: EpId,
        from_addr: SockAddr,
    ) {
        let refuse = |net: &mut Network, err: Errno| {
            let delay = net.delay(now);
            net.stats.tcp_refused += 1;
            net.events
                .push((now + delay, NetEvent::TcpRefused { to: from_ep, err }));
        };

        let listener = match self.tcp_listeners.get(&SockAddr::new(to_host, to_port)) {
            Some(&l) => l,
            None => return refuse(self, Errno::ConnRefused),
        };
        let (local, queue_full) = match self.eps.get(listener) {
            Some(Endpoint::TcpListener(l)) => (l.local, l.queue.len() >= l.backlog),
            _ => return refuse(self, Errno::ConnRefused),
        };
        if queue_full {
            return refuse(self, Errno::ConnRefused);
        }
        if self.charge_endpoint(to_host).is_err() {
            // Server out of descriptors: SYN answered with RST.
            return refuse(self, Errno::ConnRefused);
        }
        let server_ep = self.eps.insert(Endpoint::Tcp(TcpEp {
            local,
            peer_addr: from_addr,
            peer: from_ep,
            state: TcpState::Established,
            rx: Default::default(),
            rx_bytes: 0,
            eof: false,
            in_flight: 0,
            next_deliver_at: SimTime::ZERO,
            owns_port: false,
            app_closed: false,
        }));
        if let Some(Endpoint::TcpListener(l)) = self.eps.get_mut(listener) {
            l.queue.push_back((server_ep, from_addr));
        }
        self.outcomes.push(NetOutcome::Readable(listener));
        let delay = self.delay(now);
        self.events.push((
            now + delay,
            NetEvent::TcpSynAck {
                to: from_ep,
                server_ep,
            },
        ));
    }

    pub(crate) fn tcp_syn_ack(&mut self, to: EpId, server_ep: EpId) {
        if let Some(Endpoint::Tcp(t)) = self.eps.get_mut(to) {
            if t.state == TcpState::SynSent {
                t.state = TcpState::Established;
                t.peer = server_ep;
                self.stats.tcp_established += 1;
                self.outcomes.push(NetOutcome::ConnectOk(to));
            }
        }
        // Client vanished while connecting: the server-side endpoint will
        // learn via its own FIN path when the app closes; nothing to do.
    }

    pub(crate) fn tcp_refused(&mut self, to: EpId, err: Errno) {
        if let Some(Endpoint::Tcp(t)) = self.eps.get_mut(to) {
            if t.state == TcpState::SynSent {
                t.state = TcpState::Failed(err);
                self.outcomes.push(NetOutcome::ConnectErr(to, err));
                self.outcomes.push(NetOutcome::Readable(to));
            }
        }
    }

    pub(crate) fn tcp_segment(&mut self, to: EpId, data: Bytes, offset: usize, len: usize) {
        // Credit the sender's in-flight accounting even if the receiver is
        // closing, so windows cannot wedge.
        let sender = match self.eps.get(to) {
            Some(Endpoint::Tcp(t)) => Some(t.peer),
            _ => None,
        };
        if let Some(sender) = sender {
            if let Some(Endpoint::Tcp(s)) = self.eps.get_mut(sender) {
                s.in_flight = s.in_flight.saturating_sub(len);
            }
        }
        if let Some(Endpoint::Tcp(t)) = self.eps.get_mut(to) {
            if t.app_closed || matches!(t.state, TcpState::Failed(_)) {
                // Closed locally or killed by an injected RST: data arriving
                // for a dead connection is discarded.
                return;
            }
            t.rx.push_back((slice_bytes(&data, offset, len), 0));
            t.rx_bytes += len;
            self.outcomes.push(NetOutcome::Readable(to));
        }
    }

    pub(crate) fn tcp_fin(&mut self, to: EpId) {
        if let Some(Endpoint::Tcp(t)) = self.eps.get_mut(to) {
            if matches!(t.state, TcpState::Failed(_)) {
                return; // already dead (reset); keep the reset errno
            }
            t.eof = true;
            if t.state == TcpState::Established {
                t.state = TcpState::PeerClosed;
            }
            self.outcomes.push(NetOutcome::Readable(to));
            self.outcomes.push(NetOutcome::Writable(to)); // writers fail fast
        }
    }
}

/// Sub-slices a shared payload without copying when it spans the whole
/// buffer (the common single-segment case).
fn slice_bytes(data: &Bytes, offset: usize, len: usize) -> Bytes {
    if offset == 0 && len == data.len() {
        data.clone()
    } else {
        std::rc::Rc::from(data[offset..offset + len].to_vec().into_boxed_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::endpoint::bytes_from;

    struct Harness {
        net: Network,
        queue: siperf_simcore::queue::EventQueue<NetEvent>,
        outcomes: Vec<NetOutcome>,
        now: SimTime,
    }

    impl Harness {
        fn new(cfg: NetConfig) -> (Self, HostId, HostId) {
            let mut net = Network::new(cfg, 7);
            let a = net.add_host();
            let b = net.add_host();
            (
                Harness {
                    net,
                    queue: siperf_simcore::queue::EventQueue::new(),
                    outcomes: Vec::new(),
                    now: SimTime::ZERO,
                },
                a,
                b,
            )
        }

        /// Runs the network to quiescence, collecting outcomes.
        fn settle(&mut self) {
            loop {
                for (t, ev) in self.net.take_events() {
                    self.queue.schedule(t, ev);
                }
                self.outcomes.extend(self.net.take_outcomes());
                match self.queue.pop() {
                    Some((t, ev)) => {
                        self.now = t;
                        self.net.handle_event(t, ev);
                    }
                    None => break,
                }
            }
        }

        fn connect_pair(&mut self, client: HostId, server: HostId) -> (EpId, EpId) {
            let listener = self.net.tcp_listen(server, 5060, 128).unwrap();
            let c = self
                .net
                .tcp_connect(self.now, client, SockAddr::new(server, 5060))
                .unwrap();
            self.settle();
            let (s, peer) = self.net.tcp_try_accept(listener).unwrap();
            assert_eq!(peer.host, client);
            assert_eq!(self.net.tcp_state(c).unwrap(), TcpState::Established);
            (c, s)
        }
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        let (c, s) = h.connect_pair(a, b);
        assert!(h.outcomes.contains(&NetOutcome::ConnectOk(c)));
        assert_eq!(h.net.tcp_state(s).unwrap(), TcpState::Established);
        assert_eq!(h.net.stats().tcp_established, 1);
        assert_eq!(h.net.tcp_peer_addr(s).unwrap().host, a);
    }

    #[test]
    fn connect_without_listener_is_refused() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        let c = h
            .net
            .tcp_connect(SimTime::ZERO, a, SockAddr::new(b, 5060))
            .unwrap();
        h.settle();
        assert!(h
            .outcomes
            .contains(&NetOutcome::ConnectErr(c, Errno::ConnRefused)));
        assert_eq!(
            h.net.tcp_state(c).unwrap(),
            TcpState::Failed(Errno::ConnRefused)
        );
        assert_eq!(h.net.stats().tcp_refused, 1);
    }

    #[test]
    fn backlog_overflow_refuses() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        h.net.tcp_listen(b, 5060, 2).unwrap();
        for _ in 0..3 {
            h.net.tcp_connect(h.now, a, SockAddr::new(b, 5060)).unwrap();
        }
        h.settle();
        let refused = h
            .outcomes
            .iter()
            .filter(|o| matches!(o, NetOutcome::ConnectErr(_, _)))
            .count();
        assert_eq!(refused, 1);
        assert_eq!(h.net.stats().tcp_established, 2);
    }

    #[test]
    fn data_roundtrip_preserves_bytes_and_order() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        let (c, s) = h.connect_pair(a, b);
        h.net
            .tcp_send(h.now, c, bytes_from(b"hello ".to_vec()))
            .unwrap();
        h.net
            .tcp_send(h.now, c, bytes_from(b"world".to_vec()))
            .unwrap();
        h.settle();
        let (data, eof) = h.net.tcp_try_recv(s, 1024).unwrap();
        assert_eq!(&data, b"hello world");
        assert!(!eof);
        // Reply direction.
        h.net
            .tcp_send(h.now, s, bytes_from(b"ok".to_vec()))
            .unwrap();
        h.settle();
        let (data, _) = h.net.tcp_try_recv(c, 1024).unwrap();
        assert_eq!(&data, b"ok");
    }

    #[test]
    fn large_send_is_segmented_but_reassembled_in_order() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        let (c, s) = h.connect_pair(a, b);
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        h.net
            .tcp_send(h.now, c, bytes_from(payload.clone()))
            .unwrap();
        h.settle();
        assert!(h.net.stats().tcp_segments >= 7, "should be MSS-chunked");
        let mut got = Vec::new();
        loop {
            match h.net.tcp_try_recv(s, 1000) {
                Ok((bytes, _)) if !bytes.is_empty() => got.extend(bytes),
                _ => break,
            }
        }
        assert_eq!(got, payload);
    }

    #[test]
    fn partial_reads_leave_remainder() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        let (c, s) = h.connect_pair(a, b);
        h.net
            .tcp_send(h.now, c, bytes_from(b"abcdef".to_vec()))
            .unwrap();
        h.settle();
        let (first, _) = h.net.tcp_try_recv(s, 2).unwrap();
        assert_eq!(&first, b"ab");
        let (rest, _) = h.net.tcp_try_recv(s, 100).unwrap();
        assert_eq!(&rest, b"cdef");
    }

    #[test]
    fn window_fills_and_reopens() {
        let mut cfg = NetConfig::lan();
        cfg.tcp_rcv_buf = 8;
        cfg.mss = 4;
        let (mut h, a, b) = Harness::new(cfg);
        let (c, s) = h.connect_pair(a, b);
        h.net.tcp_send(h.now, c, bytes_from(vec![1u8; 8])).unwrap();
        assert_eq!(
            h.net.tcp_send(h.now, c, bytes_from(vec![2u8; 1])),
            Err(Errno::WouldBlock)
        );
        h.settle();
        // Still full: receiver has not read.
        assert_eq!(h.net.tcp_free_window(c), 0);
        let (data, _) = h.net.tcp_try_recv(s, 8).unwrap();
        assert_eq!(data.len(), 8);
        h.settle();
        assert!(h.outcomes.contains(&NetOutcome::Writable(c)));
        assert_eq!(h.net.tcp_free_window(c), 8);
        h.net.tcp_send(h.now, c, bytes_from(vec![2u8; 8])).unwrap();
    }

    #[test]
    fn close_delivers_eof_after_data() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        let (c, s) = h.connect_pair(a, b);
        h.net
            .tcp_send(h.now, c, bytes_from(b"bye".to_vec()))
            .unwrap();
        h.net.close(h.now, c);
        h.settle();
        let (data, eof) = h.net.tcp_try_recv(s, 2).unwrap();
        assert_eq!(&data, b"by");
        assert!(!eof, "eof only after drain");
        let (data, eof) = h.net.tcp_try_recv(s, 100).unwrap();
        assert_eq!(&data, b"e");
        assert!(eof);
        // Writing back fails fast.
        assert_eq!(
            h.net.tcp_send(h.now, s, bytes_from(vec![1])),
            Err(Errno::ConnReset)
        );
    }

    #[test]
    fn active_close_holds_port_in_time_wait() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        let (c, _s) = h.connect_pair(a, b);
        let before = h.net.ports_available(a);
        h.net.close(h.now, c);
        assert_eq!(h.net.ports_in_time_wait(a), 1);
        assert_eq!(h.net.ports_available(a), before);
        h.settle(); // runs the PortRelease event 60 s later
        assert_eq!(h.net.ports_in_time_wait(a), 0);
        assert_eq!(h.net.ports_available(a), before + 1);
    }

    #[test]
    fn passive_close_skips_time_wait() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        let (c, s) = h.connect_pair(a, b);
        h.net.close(h.now, s); // server closes first
        h.settle();
        let (_, eof) = h.net.tcp_try_recv(c, 10).unwrap();
        assert!(eof);
        let before = h.net.ports_available(a);
        h.net.close(h.now, c); // passive close on the client
        assert_eq!(h.net.ports_in_time_wait(a), 0);
        assert_eq!(h.net.ports_available(a), before + 1);
    }

    #[test]
    fn close_unsticks_blocked_peer_writers() {
        let mut cfg = NetConfig::lan();
        cfg.tcp_rcv_buf = 4;
        let (mut h, a, b) = Harness::new(cfg);
        let (c, s) = h.connect_pair(a, b);
        h.net.tcp_send(h.now, c, bytes_from(vec![0u8; 4])).unwrap();
        assert_eq!(
            h.net.tcp_send(h.now, c, bytes_from(vec![0u8; 4])),
            Err(Errno::WouldBlock)
        );
        h.net.close(h.now, s); // receiver goes away without reading
        assert!(h.net.take_outcomes().contains(&NetOutcome::Writable(c)));
        // Retry now fails fast instead of blocking forever.
        h.settle();
        assert_eq!(
            h.net.tcp_send(h.now, c, bytes_from(vec![0u8; 4])),
            Err(Errno::ConnReset)
        );
    }

    #[test]
    fn ephemeral_pool_exhaustion() {
        let mut cfg = NetConfig::lan();
        cfg.ephemeral_lo = 40000;
        cfg.ephemeral_hi = 40001;
        let (mut h, a, b) = Harness::new(cfg);
        h.net.tcp_listen(b, 5060, 16).unwrap();
        h.net.tcp_connect(h.now, a, SockAddr::new(b, 5060)).unwrap();
        h.net.tcp_connect(h.now, a, SockAddr::new(b, 5060)).unwrap();
        assert_eq!(
            h.net
                .tcp_connect(h.now, a, SockAddr::new(b, 5060))
                .unwrap_err(),
            Errno::PortsExhausted
        );
    }

    #[test]
    fn server_descriptor_exhaustion_refuses_syn() {
        let mut cfg = NetConfig::lan();
        cfg.max_endpoints_per_host = 1; // the listener consumes the budget
        let (mut h, a, b) = Harness::new(cfg);
        h.net.tcp_listen(b, 5060, 16).unwrap();
        let c = h.net.tcp_connect(h.now, a, SockAddr::new(b, 5060)).unwrap();
        h.settle();
        assert_eq!(
            h.net.tcp_state(c).unwrap(),
            TcpState::Failed(Errno::ConnRefused)
        );
    }

    #[test]
    fn closing_listener_closes_queued_connections() {
        let (mut h, a, b) = Harness::new(NetConfig::lan());
        let l = h.net.tcp_listen(b, 5060, 16).unwrap();
        let c = h.net.tcp_connect(h.now, a, SockAddr::new(b, 5060)).unwrap();
        h.settle();
        h.net.close(h.now, l);
        h.settle();
        // Client sees EOF.
        let (_, eof) = h.net.tcp_try_recv(c, 10).unwrap();
        assert!(eof);
        assert_eq!(h.net.endpoints_on(b), 0);
    }

    #[test]
    fn send_on_listener_is_bad_fd() {
        let (mut h, _a, b) = Harness::new(NetConfig::lan());
        let l = h.net.tcp_listen(b, 5060, 16).unwrap();
        assert_eq!(
            h.net.tcp_send(SimTime::ZERO, l, bytes_from(vec![1])),
            Err(Errno::BadFd)
        );
        assert_eq!(
            h.net.tcp_try_recv(l, 10),
            Err(Errno::WouldBlock).or(Err(Errno::BadFd))
        );
    }
}
