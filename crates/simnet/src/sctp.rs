//! SCTP-style one-to-many message endpoints (paper §6).
//!
//! The paper's discussion section argues that SCTP combines the properties
//! that matter here: it is **connection-oriented and reliable** like TCP,
//! but **message-based** like UDP, and — crucially — its association
//! management lives **entirely in the kernel**, invisible to the
//! application. A proxy can therefore use the symmetric UDP architecture
//! (every worker receives from one shared endpoint, any worker sends to any
//! peer) with none of the supervisor/fd-passing machinery that cripples the
//! TCP mode.
//!
//! The model captures exactly those properties: a one-to-many endpoint
//! bound to a port, whole-message delivery, and a kernel-managed association
//! table that charges a setup round-trip latency to the first exchange with
//! each peer and nothing thereafter.

use siperf_simcore::time::SimTime;

use crate::addr::{HostId, Port, SockAddr};
use crate::endpoint::{AssocState, Bytes, Endpoint, EpId, SctpEp};
use crate::error::Errno;
use crate::event::{NetEvent, NetOutcome};
use crate::net::Network;

impl Network {
    /// Binds a one-to-many SCTP endpoint on `host:port`.
    ///
    /// # Errors
    ///
    /// [`Errno::AddrInUse`] if the port is taken; [`Errno::Emfile`] if the
    /// host's descriptor budget is spent.
    pub fn sctp_bind(&mut self, host: HostId, port: Port) -> Result<EpId, Errno> {
        let addr = SockAddr::new(host, port);
        if self.sctp_bound.contains_key(&addr) {
            return Err(Errno::AddrInUse);
        }
        self.charge_endpoint(host)?;
        let ep = self.eps.insert(Endpoint::Sctp(SctpEp {
            local: addr,
            rx: Default::default(),
            assoc: Default::default(),
            dropped: 0,
        }));
        self.sctp_bound.insert(addr, ep);
        Ok(ep)
    }

    /// Binds an SCTP endpoint on an ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates pool exhaustion and descriptor-budget errors.
    pub fn sctp_bind_ephemeral(&mut self, host: HostId) -> Result<(EpId, Port), Errno> {
        let port = self.ports[host.0 as usize].allocate()?;
        match self.sctp_bind(host, port) {
            Ok(ep) => Ok((ep, port)),
            Err(e) => {
                self.ports[host.0 as usize].release(port);
                Err(e)
            }
        }
    }

    /// Sends one message to `to`, implicitly setting up the association on
    /// first use (the kernel's job, not the application's).
    ///
    /// # Errors
    ///
    /// [`Errno::BadFd`] if `from` is not an SCTP endpoint.
    pub fn sctp_send(
        &mut self,
        now: SimTime,
        from: EpId,
        to: SockAddr,
        data: Bytes,
    ) -> Result<(), Errno> {
        let from_host = match self.eps.get(from) {
            Some(Endpoint::Sctp(e)) => e.local.host,
            _ => return Err(Errno::BadFd),
        };
        // SCTP is reliable: link faults stall the stream, never lose a
        // message.
        let fault_extra = self.link_extra(now, from_host, to.host);
        let base_delay = self.delay(now) + fault_extra;
        let setup = self.cfg.sctp_assoc_setup;
        let one_way = self.cfg.one_way_latency;
        let (from_addr, deliver_at) = {
            let ep = match self.eps.get_mut(from) {
                Some(Endpoint::Sctp(e)) => e,
                _ => return Err(Errno::BadFd),
            };
            let earliest = match ep.assoc.get(&to).copied() {
                Some(AssocState::Established) => now,
                Some(AssocState::Setup { ready_at }) => {
                    if ready_at <= now {
                        ep.assoc.insert(to, AssocState::Established);
                        now
                    } else {
                        ready_at
                    }
                }
                None => {
                    // Four-way handshake: two round trips before data flows.
                    let ready_at = now + one_way * 4 + setup;
                    ep.assoc.insert(to, AssocState::Setup { ready_at });
                    ready_at
                }
            };
            (ep.local, earliest.max(now) + base_delay)
        };
        self.events.push((
            deliver_at,
            NetEvent::SctpDeliver {
                to_host: to.host,
                to_port: to.port,
                from: from_addr,
                data,
            },
        ));
        Ok(())
    }

    /// Non-blocking receive of one whole message with its source address.
    ///
    /// # Errors
    ///
    /// [`Errno::WouldBlock`] when no message is queued; [`Errno::BadFd`] on
    /// non-SCTP endpoints.
    pub fn sctp_try_recv(&mut self, ep: EpId) -> Result<(SockAddr, Bytes), Errno> {
        match self.eps.get_mut(ep) {
            Some(Endpoint::Sctp(e)) => e.rx.pop_front().ok_or(Errno::WouldBlock),
            _ => Err(Errno::BadFd),
        }
    }

    pub(crate) fn sctp_deliver(
        &mut self,
        to_host: HostId,
        to_port: Port,
        from: SockAddr,
        data: Bytes,
    ) {
        let Some(&ep) = self.sctp_bound.get(&SockAddr::new(to_host, to_port)) else {
            return; // no endpoint: ABORT chunk in real SCTP, vanishes here
        };
        let cap = self.cfg.udp_rcv_queue;
        let mut new_assoc = false;
        if let Some(Endpoint::Sctp(e)) = self.eps.get_mut(ep) {
            if let std::collections::hash_map::Entry::Vacant(slot) = e.assoc.entry(from) {
                // Receiver side of the handshake: the kernel records the
                // association so replies flow without another setup.
                slot.insert(AssocState::Established);
                new_assoc = true;
            }
            if e.rx.len() >= cap {
                e.dropped += 1;
            } else {
                e.rx.push_back((from, data));
                self.stats.sctp_messages += 1;
                self.outcomes.push(NetOutcome::Readable(ep));
            }
        }
        if new_assoc {
            self.stats.sctp_assocs += 1;
        }
    }

    pub(crate) fn close_sctp(&mut self, ep: EpId) {
        if let Some(Endpoint::Sctp(e)) = self.eps.get(ep) {
            let addr = e.local;
            self.sctp_bound.remove(&addr);
            self.eps.remove(ep);
            self.uncharge_endpoint(addr.host);
            if addr.port >= self.cfg.ephemeral_lo && addr.port <= self.cfg.ephemeral_hi {
                self.ports[addr.host.0 as usize].release(addr.port);
            }
        }
    }

    /// Number of live associations on an SCTP endpoint (observability for
    /// tests and reports).
    pub fn sctp_assoc_count(&self, ep: EpId) -> usize {
        match self.eps.get(ep) {
            Some(Endpoint::Sctp(e)) => e.assoc.len(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use crate::endpoint::bytes_from;
    use siperf_simcore::queue::EventQueue;

    struct H {
        net: Network,
        q: EventQueue<NetEvent>,
        now: SimTime,
    }

    impl H {
        fn new() -> (Self, HostId, HostId) {
            let mut net = Network::new(NetConfig::lan(), 3);
            let a = net.add_host();
            let b = net.add_host();
            (
                H {
                    net,
                    q: EventQueue::new(),
                    now: SimTime::ZERO,
                },
                a,
                b,
            )
        }

        fn settle(&mut self) -> Vec<NetOutcome> {
            let mut out = Vec::new();
            loop {
                for (t, ev) in self.net.take_events() {
                    self.q.schedule(t, ev);
                }
                out.extend(self.net.take_outcomes());
                match self.q.pop() {
                    Some((t, ev)) => {
                        self.now = t;
                        self.net.handle_event(t, ev);
                    }
                    None => break,
                }
            }
            out
        }
    }

    #[test]
    fn message_roundtrip_with_boundaries() {
        let (mut h, a, b) = H::new();
        let server = h.net.sctp_bind(b, 5060).unwrap();
        let (client, cport) = h.net.sctp_bind_ephemeral(a).unwrap();
        h.net
            .sctp_send(
                h.now,
                client,
                SockAddr::new(b, 5060),
                bytes_from(b"one".to_vec()),
            )
            .unwrap();
        h.net
            .sctp_send(
                h.now,
                client,
                SockAddr::new(b, 5060),
                bytes_from(b"two".to_vec()),
            )
            .unwrap();
        h.settle();
        let (from, m1) = h.net.sctp_try_recv(server).unwrap();
        assert_eq!(from, SockAddr::new(a, cport));
        assert_eq!(&*m1, b"one");
        let (_, m2) = h.net.sctp_try_recv(server).unwrap();
        assert_eq!(&*m2, b"two"); // boundaries preserved, order preserved
        assert_eq!(h.net.sctp_try_recv(server), Err(Errno::WouldBlock));
    }

    #[test]
    fn first_exchange_pays_association_setup() {
        let (mut h, a, b) = H::new();
        let _server = h.net.sctp_bind(b, 5060).unwrap();
        let (client, _) = h.net.sctp_bind_ephemeral(a).unwrap();
        h.net
            .sctp_send(h.now, client, SockAddr::new(b, 5060), bytes_from(vec![1]))
            .unwrap();
        let evs = h.net.take_events();
        let first_delivery = evs[0].0;
        // Setup costs at least 4 one-way latencies beyond the send latency.
        assert!(
            first_delivery.as_nanos() >= (h.net.config().one_way_latency * 5).as_nanos(),
            "setup not charged: {first_delivery:?}"
        );
        for (t, ev) in evs {
            h.q.schedule(t, ev);
        }
        h.settle();
        // Second message flows at plain latency.
        h.net
            .sctp_send(h.now, client, SockAddr::new(b, 5060), bytes_from(vec![2]))
            .unwrap();
        let evs = h.net.take_events();
        let dt = evs[0].0 - h.now;
        assert!(dt < h.net.config().one_way_latency * 2);
    }

    #[test]
    fn receiver_learns_association_for_replies() {
        let (mut h, a, b) = H::new();
        let server = h.net.sctp_bind(b, 5060).unwrap();
        let (client, cport) = h.net.sctp_bind_ephemeral(a).unwrap();
        h.net
            .sctp_send(h.now, client, SockAddr::new(b, 5060), bytes_from(vec![1]))
            .unwrap();
        h.settle();
        assert_eq!(h.net.sctp_assoc_count(server), 1);
        // Reply does not pay setup again.
        h.net
            .sctp_send(h.now, server, SockAddr::new(a, cport), bytes_from(vec![2]))
            .unwrap();
        let evs = h.net.take_events();
        assert!(evs[0].0 - h.now < h.net.config().one_way_latency * 2);
        for (t, ev) in evs {
            h.q.schedule(t, ev);
        }
        h.settle();
        let (from, _) = h.net.sctp_try_recv(client).unwrap();
        assert_eq!(from, SockAddr::new(b, 5060));
    }

    #[test]
    fn bind_conflicts_and_close() {
        let (mut h, a, _) = H::new();
        let ep = h.net.sctp_bind(a, 5060).unwrap();
        assert_eq!(h.net.sctp_bind(a, 5060), Err(Errno::AddrInUse));
        h.net.close(SimTime::ZERO, ep);
        assert_eq!(h.net.endpoints_on(a), 0);
        h.net.sctp_bind(a, 5060).unwrap();
    }

    #[test]
    fn message_to_unbound_port_vanishes() {
        let (mut h, a, b) = H::new();
        let (client, _) = h.net.sctp_bind_ephemeral(a).unwrap();
        h.net
            .sctp_send(h.now, client, SockAddr::new(b, 9999), bytes_from(vec![1]))
            .unwrap();
        let outcomes = h.settle();
        assert!(outcomes.is_empty());
    }
}
