//! # siperf-simnet
//!
//! The simulated network substrate for the SIPerf study — a reproduction of
//! *"Explaining the Impact of Network Transport Protocols on SIP Proxy
//! Performance"* (ISPASS 2008).
//!
//! The paper's testbed is three client machines and one four-core server on
//! a gigabit switch. This crate models that fabric as a pure,
//! deterministic state machine:
//!
//! * [`addr`] — hosts, ports, socket addresses.
//! * [`config`] — latency, MSS, buffer sizes, port ranges, TIME_WAIT.
//! * [`ports`] — per-host ephemeral port pools (the §4.3 starvation
//!   mechanism).
//! * [`fault`] — deterministic fault injection: burst loss, partitions,
//!   latency spikes, TCP resets, accept freezes (dedicated RNG stream).
//! * [`net`] — the [`net::Network`] fabric and the UDP datagram service.
//! * [`tcp`] — handshake, ordered byte streams with real segmentation,
//!   receive-window backpressure, accept queues, TIME_WAIT.
//! * [`sctp`] — one-to-many message endpoints with kernel-managed
//!   associations (the §6 alternative).
//!
//! The crate never blocks and never owns a clock: operations take `now`,
//! emit timestamped [`event::NetEvent`]s for the caller to schedule, and
//! report readiness changes as [`event::NetOutcome`]s. The simulated kernel
//! in `siperf-simos` layers blocking syscalls on top.
//!
//! # Example
//!
//! ```
//! use siperf_simcore::time::SimTime;
//! use siperf_simnet::addr::SockAddr;
//! use siperf_simnet::config::NetConfig;
//! use siperf_simnet::endpoint::bytes_from;
//! use siperf_simnet::net::Network;
//!
//! let mut net = Network::new(NetConfig::lan(), 42);
//! let server = net.add_host();
//! let client = net.add_host();
//! let sock = net.udp_bind(server, 5060)?;
//! let (csock, _port) = net.udp_bind_ephemeral(client)?;
//! net.udp_send(SimTime::ZERO, csock, SockAddr::new(server, 5060),
//!              bytes_from(b"OPTIONS sip:x SIP/2.0\r\n\r\n".to_vec()))?;
//! // The kernel would now schedule net.take_events() and deliver them.
//! # let _ = sock;
//! # Ok::<(), siperf_simnet::error::Errno>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod addr;
pub mod config;
pub mod endpoint;
pub mod error;
pub mod event;
pub mod fault;
pub mod net;
pub mod ports;
pub mod sctp;
pub mod tcp;

pub use addr::{HostId, Port, SockAddr, SIP_PORT};
pub use config::NetConfig;
pub use endpoint::{bytes_from, Bytes, Datagram, EpId, TcpState};
pub use error::Errno;
pub use event::{NetEvent, NetOutcome};
pub use fault::GilbertElliott;
pub use net::{NetStats, Network};
