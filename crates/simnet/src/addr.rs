//! Network addressing: hosts, ports, socket addresses.

use std::fmt;

/// Identifies a simulated machine (the proxy server, a client box, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A transport-layer port number.
pub type Port = u16;

/// The canonical SIP port, used by the proxy in every experiment.
pub const SIP_PORT: Port = 5060;

/// A `(host, port)` pair — the simulation's equivalent of an IP
/// address/port endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SockAddr {
    /// The machine.
    pub host: HostId,
    /// The port on that machine.
    pub port: Port,
}

impl SockAddr {
    /// Builds an address.
    pub const fn new(host: HostId, port: Port) -> Self {
        SockAddr { host, port }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.host, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let a = SockAddr::new(HostId(3), 5060);
        assert_eq!(a.to_string(), "h3:5060");
    }

    #[test]
    fn ordering_is_by_host_then_port() {
        let a = SockAddr::new(HostId(1), 9000);
        let b = SockAddr::new(HostId(2), 80);
        assert!(a < b);
        assert!(SockAddr::new(HostId(1), 80) < a);
    }
}
