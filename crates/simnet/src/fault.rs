//! Deterministic fault injection: burst loss, partitions, latency spikes,
//! TCP resets, and accept-queue freezes.
//!
//! Every fault decision draws from a **dedicated RNG stream**
//! (`Network::fault_rng`), never from the stream that produces latency
//! jitter. Toggling a fault on or off therefore never perturbs the delivery
//! schedule of unaffected packets — the property `tests/determinism.rs`
//! asserts and every chaos experiment relies on.
//!
//! Reliable transports (TCP, SCTP) never lose application data to link
//! faults in this model: a dropped frame would be retransmitted by the real
//! stack, so a loss verdict manifests as an added
//! [`NetConfig::retrans_delay`](crate::config::NetConfig::retrans_delay)
//! (head-of-line blocking, as Shen & Schulzrinne describe for SIP-over-TCP)
//! instead of a missing byte. Unreliable transports (UDP) simply drop the
//! datagram.

use std::collections::HashMap;

use siperf_simcore::rng::SimRng;
use siperf_simcore::time::{SimDuration, SimTime};

use crate::addr::HostId;
use crate::endpoint::{Endpoint, EpId, TcpState};
use crate::error::Errno;
use crate::event::{NetEvent, NetOutcome};
use crate::net::Network;

/// A two-state Markov (Gilbert–Elliott) burst-loss model.
///
/// The chain steps once per frame while a burst window is active: in the
/// *good* state frames drop with [`loss_good`](Self::loss_good), in the
/// *bad* state with [`loss_bad`](Self::loss_bad); transitions happen with
/// [`p_good_to_bad`](Self::p_good_to_bad) / [`p_bad_to_good`](Self::p_bad_to_good).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GilbertElliott {
    /// Probability of entering the bad state after a good-state frame.
    pub p_good_to_bad: f64,
    /// Probability of returning to the good state after a bad-state frame.
    pub p_bad_to_good: f64,
    /// Loss probability per frame in the good state.
    pub loss_good: f64,
    /// Loss probability per frame in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A harsh but recoverable burst profile: mostly clean, with bad
    /// episodes averaging ~10 frames at 60% loss.
    pub fn bursty() -> Self {
        GilbertElliott {
            p_good_to_bad: 0.05,
            p_bad_to_good: 0.10,
            loss_good: 0.005,
            loss_bad: 0.60,
        }
    }
}

/// A live burst-loss window.
#[derive(Debug)]
struct GeRun {
    model: GilbertElliott,
    bad: bool,
    until: SimTime,
}

impl GeRun {
    /// Steps the chain for one frame; returns whether that frame drops.
    fn step(&mut self, rng: &mut SimRng) -> bool {
        let loss = if self.bad {
            self.model.loss_bad
        } else {
            self.model.loss_good
        };
        let drop = loss > 0.0 && rng.chance(loss);
        let flip = if self.bad {
            self.model.p_bad_to_good
        } else {
            self.model.p_good_to_bad
        };
        if flip > 0.0 && rng.chance(flip) {
            self.bad = !self.bad;
        }
        drop
    }
}

/// Active fault state on the fabric (all healed lazily or by wire events).
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    /// Active burst-loss window, if any.
    burst: Option<GeRun>,
    /// Blackholed host pairs (normalized lo/hi key) → heal time.
    partitions: HashMap<(u32, u32), SimTime>,
    /// Active latency spike: (ends at, extra one-way delay).
    spike: Option<(SimTime, SimDuration)>,
    /// Hosts whose accept queues are frozen → thaw time.
    accept_frozen: HashMap<u32, SimTime>,
}

/// What the fault layer decided for one frame on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LinkVerdict {
    /// Deliver with this much extra delay (zero when no fault applies).
    Deliver(SimDuration),
    /// Drop the frame (unreliable transports only).
    Drop,
}

fn pair_key(a: HostId, b: HostId) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

impl Network {
    // ------------------------------------------------------- link faults

    /// Starts a Gilbert–Elliott burst-loss episode on every link for
    /// `duration`. A new call replaces any active episode (chain restarts
    /// in the good state).
    pub fn fault_burst_loss(&mut self, now: SimTime, model: GilbertElliott, duration: SimDuration) {
        self.faults.burst = Some(GeRun {
            model,
            bad: false,
            until: now + duration,
        });
    }

    /// Blackholes all traffic between hosts `a` and `b` until `heal_after`
    /// from now. Reliable transports see the partition as retransmission
    /// delay; UDP datagrams across it vanish.
    pub fn fault_partition(&mut self, now: SimTime, a: HostId, b: HostId, heal_after: SimDuration) {
        let heal_at = now + heal_after;
        let slot = self
            .faults
            .partitions
            .entry(pair_key(a, b))
            .or_insert(heal_at);
        *slot = (*slot).max(heal_at);
    }

    /// Adds `extra` one-way latency to every frame sent during the next
    /// `duration` (overlapping spikes keep the later deadline).
    pub fn fault_latency_spike(&mut self, now: SimTime, extra: SimDuration, duration: SimDuration) {
        let until = now + duration;
        self.faults.spike = match self.faults.spike {
            Some((old_until, old_extra)) if old_until > until => Some((old_until, old_extra)),
            _ => Some((until, extra)),
        };
    }

    // -------------------------------------------------- transport faults

    /// Freezes `accept()` on `host` for `duration`: queued and newly
    /// arriving connections stay in the backlog (SYNs still complete the
    /// handshake) but `tcp_try_accept` reports `WouldBlock` until the thaw.
    pub fn fault_freeze_accepts(&mut self, now: SimTime, host: HostId, duration: SimDuration) {
        let until = now + duration;
        let slot = self.faults.accept_frozen.entry(host.0).or_insert(until);
        *slot = (*slot).max(until);
        self.events.push((until, NetEvent::AcceptThaw { host }));
    }

    /// True while `host`'s accept queues are frozen.
    pub(crate) fn accepts_frozen(&self, host: HostId) -> bool {
        self.faults.accept_frozen.contains_key(&host.0)
    }

    /// Handles the thaw wire event: re-announces readability of every
    /// listener that queued connections during the freeze.
    pub(crate) fn accept_thaw(&mut self, now: SimTime, host: HostId) {
        match self.faults.accept_frozen.get(&host.0) {
            // An overlapping freeze extended the deadline; this thaw is stale.
            Some(&until) if until > now => return,
            Some(_) => {
                self.faults.accept_frozen.remove(&host.0);
            }
            None => return,
        }
        let mut listeners: Vec<EpId> = self
            .tcp_listeners
            .iter()
            .filter(|(addr, _)| addr.host == host)
            .map(|(_, &ep)| ep)
            .collect();
        listeners.sort();
        for l in listeners {
            if let Some(Endpoint::TcpListener(le)) = self.eps.get(l) {
                if !le.queue.is_empty() {
                    self.outcomes.push(NetOutcome::Readable(l));
                }
            }
        }
    }

    /// Injects an RST on an established connection: both endpoints fail
    /// with [`Errno::ConnReset`], pending receive data is discarded (as a
    /// real RST discards it), and both sides are woken so blocked readers
    /// and writers observe the reset immediately.
    ///
    /// # Errors
    ///
    /// [`Errno::NotConnected`] if the endpoint is not in an established
    /// exchange; [`Errno::BadFd`] if it is not a TCP connection.
    pub fn tcp_reset(&mut self, ep: EpId) -> Result<(), Errno> {
        let peer = match self.eps.get(ep) {
            Some(Endpoint::Tcp(t)) => match t.state {
                TcpState::Established | TcpState::PeerClosed => t.peer,
                _ => return Err(Errno::NotConnected),
            },
            _ => return Err(Errno::BadFd),
        };
        for id in [ep, peer] {
            if let Some(Endpoint::Tcp(t)) = self.eps.get_mut(id) {
                t.state = TcpState::Failed(Errno::ConnReset);
                t.rx.clear();
                t.rx_bytes = 0;
                t.in_flight = 0;
                self.outcomes.push(NetOutcome::Readable(id));
                self.outcomes.push(NetOutcome::Writable(id));
            }
        }
        self.stats.tcp_resets += 1;
        Ok(())
    }

    /// Established TCP connection endpoints local to `host`, in stable
    /// (arena slot) order — the deterministic way for a fault schedule to
    /// pick "the nth connection on the server".
    pub fn tcp_established_on(&self, host: HostId) -> Vec<EpId> {
        self.eps
            .iter()
            .filter_map(|(id, ep)| match ep {
                Endpoint::Tcp(t)
                    if t.local.host == host && matches!(t.state, TcpState::Established) =>
                {
                    Some(id)
                }
                _ => None,
            })
            .collect()
    }

    // ----------------------------------------------------- verdict logic

    /// Decides what link faults do to one frame between `from` and `to`.
    /// Draws (only) from the dedicated fault RNG stream.
    pub(crate) fn link_verdict(
        &mut self,
        now: SimTime,
        from: HostId,
        to: HostId,
        reliable: bool,
    ) -> LinkVerdict {
        // Partition: absolute until healed.
        let key = pair_key(from, to);
        if let Some(&heal_at) = self.faults.partitions.get(&key) {
            if heal_at <= now {
                self.faults.partitions.remove(&key);
            } else if reliable {
                self.stats.fault_delays += 1;
                return LinkVerdict::Deliver((heal_at - now) + self.cfg.retrans_delay);
            } else {
                self.stats.fault_drops += 1;
                return LinkVerdict::Drop;
            }
        }
        // Burst loss: step the Gilbert–Elliott chain once per frame.
        let dropped = match self.faults.burst.as_mut() {
            Some(run) if run.until <= now => {
                self.faults.burst = None;
                false
            }
            Some(run) => run.step(&mut self.fault_rng),
            None => false,
        };
        if dropped {
            if reliable {
                self.stats.fault_delays += 1;
                return LinkVerdict::Deliver(self.cfg.retrans_delay);
            }
            self.stats.fault_drops += 1;
            return LinkVerdict::Drop;
        }
        LinkVerdict::Deliver(SimDuration::ZERO)
    }

    /// Fault verdict for an unreliable frame: `true` means drop it.
    pub(crate) fn link_drops(&mut self, now: SimTime, from: HostId, to: HostId) -> bool {
        matches!(self.link_verdict(now, from, to, false), LinkVerdict::Drop)
    }

    /// Fault verdict for a reliable frame: extra delay to add (zero when no
    /// fault applies).
    pub(crate) fn link_extra(&mut self, now: SimTime, from: HostId, to: HostId) -> SimDuration {
        match self.link_verdict(now, from, to, true) {
            LinkVerdict::Deliver(extra) => extra,
            LinkVerdict::Drop => unreachable!("reliable frames are delayed, never dropped"),
        }
    }

    /// Extra one-way latency a spike adds at `now` (healing it lazily).
    pub(crate) fn spike_extra(&mut self, now: SimTime) -> SimDuration {
        match self.faults.spike {
            Some((until, _)) if until <= now => {
                self.faults.spike = None;
                SimDuration::ZERO
            }
            Some((_, extra)) => extra,
            None => SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::SockAddr;
    use crate::config::NetConfig;
    use crate::endpoint::bytes_from;

    fn net() -> (Network, HostId, HostId) {
        let mut n = Network::new(NetConfig::lan(), 9);
        let a = n.add_host();
        let b = n.add_host();
        (n, a, b)
    }

    fn pump(n: &mut Network) -> Vec<NetOutcome> {
        let mut out = Vec::new();
        let mut q = siperf_simcore::queue::EventQueue::new();
        loop {
            for (t, ev) in n.take_events() {
                q.schedule(t, ev);
            }
            out.extend(n.take_outcomes());
            match q.pop() {
                Some((t, ev)) => n.handle_event(t, ev),
                None => break,
            }
        }
        out
    }

    #[test]
    fn partition_drops_udp_until_heal() {
        let (mut n, a, b) = net();
        let sa = n.udp_bind(a, 5060).unwrap();
        let (sb, _) = n.udp_bind_ephemeral(b).unwrap();
        n.fault_partition(SimTime::ZERO, a, b, SimDuration::from_secs(1));
        n.udp_send(
            SimTime::ZERO,
            sb,
            SockAddr::new(a, 5060),
            bytes_from(vec![1]),
        )
        .unwrap();
        assert!(pump(&mut n).is_empty());
        assert_eq!(n.stats().fault_drops, 1);
        // After heal, traffic flows again.
        let later = SimTime::ZERO + SimDuration::from_secs(2);
        n.udp_send(later, sb, SockAddr::new(a, 5060), bytes_from(vec![2]))
            .unwrap();
        assert_eq!(pump(&mut n), vec![NetOutcome::Readable(sa)]);
    }

    #[test]
    fn partition_delays_reliable_frames_instead_of_dropping() {
        let (mut n, a, b) = net();
        n.fault_partition(SimTime::ZERO, a, b, SimDuration::from_millis(500));
        let extra = n.link_extra(SimTime::ZERO, a, b);
        assert!(extra >= SimDuration::from_millis(500) + n.config().retrans_delay);
        assert_eq!(n.stats().fault_delays, 1);
        assert_eq!(n.stats().fault_drops, 0);
    }

    #[test]
    fn burst_loss_drops_many_but_not_all() {
        let (mut n, a, b) = net();
        n.fault_burst_loss(
            SimTime::ZERO,
            GilbertElliott::bursty(),
            SimDuration::from_secs(5),
        );
        let (mut drops, total) = (0u32, 2000u32);
        for _ in 0..total {
            if n.link_drops(SimTime::ZERO + SimDuration::from_millis(1), a, b) {
                drops += 1;
            }
        }
        assert!(drops > 0, "burst model never fired");
        assert!(drops < total, "burst model dropped everything");
        // Past the window the model is inert and costs no RNG draws.
        let after = SimTime::ZERO + SimDuration::from_secs(6);
        assert!(!n.link_drops(after, a, b));
    }

    #[test]
    fn latency_spike_inflates_delay_then_heals() {
        let (mut n, _, _) = net();
        let base_max = n.config().one_way_latency + n.config().latency_jitter;
        let extra = SimDuration::from_millis(5);
        n.fault_latency_spike(SimTime::ZERO, extra, SimDuration::from_secs(1));
        let d = n.delay(SimTime::ZERO);
        assert!(d >= n.config().one_way_latency + extra);
        let healed = n.delay(SimTime::ZERO + SimDuration::from_secs(2));
        assert!(healed < base_max);
    }

    #[test]
    fn accept_freeze_blocks_then_thaws() {
        let (mut n, a, b) = net();
        let l = n.tcp_listen(b, 5060, 16).unwrap();
        n.fault_freeze_accepts(SimTime::ZERO, b, SimDuration::from_millis(10));
        n.tcp_connect(SimTime::ZERO, a, SockAddr::new(b, 5060))
            .unwrap();
        // Run events in order, probing the accept queue while still frozen.
        let cutoff = SimTime::ZERO + SimDuration::from_millis(5);
        let mut q = siperf_simcore::queue::EventQueue::new();
        let mut outcomes = Vec::new();
        let mut probed = false;
        loop {
            for (t, ev) in n.take_events() {
                q.schedule(t, ev);
            }
            outcomes.extend(n.take_outcomes());
            let Some((t, ev)) = q.pop() else { break };
            if t > cutoff && !probed {
                // Handshake done (well under 5 ms), thaw still pending:
                // the connection is queued but accept must block.
                assert!(n.accepts_frozen(b));
                assert_eq!(n.tcp_try_accept(l), Err(Errno::WouldBlock));
                probed = true;
            }
            n.handle_event(t, ev);
        }
        outcomes.extend(n.take_outcomes());
        assert!(probed, "thaw event never scheduled");
        // The thaw re-announced the listener and accept now succeeds.
        assert!(!n.accepts_frozen(b));
        assert!(outcomes.contains(&NetOutcome::Readable(l)));
        let (_ep, peer) = n.tcp_try_accept(l).unwrap();
        assert_eq!(peer.host, a);
    }

    #[test]
    fn tcp_reset_fails_both_ends() {
        let (mut n, a, b) = net();
        let l = n.tcp_listen(b, 5060, 16).unwrap();
        let c = n
            .tcp_connect(SimTime::ZERO, a, SockAddr::new(b, 5060))
            .unwrap();
        pump(&mut n);
        let (s, _) = n.tcp_try_accept(l).unwrap();
        let conns = n.tcp_established_on(b);
        assert_eq!(conns, vec![s]);
        n.tcp_reset(s).unwrap();
        assert_eq!(n.tcp_state(s).unwrap(), TcpState::Failed(Errno::ConnReset));
        assert_eq!(n.tcp_state(c).unwrap(), TcpState::Failed(Errno::ConnReset));
        assert_eq!(n.stats().tcp_resets, 1);
        assert_eq!(
            n.tcp_send(SimTime::ZERO, c, bytes_from(vec![1])),
            Err(Errno::ConnReset)
        );
        assert_eq!(n.tcp_try_recv(c, 64), Err(Errno::ConnReset));
        assert!(n.tcp_established_on(b).is_empty());
    }

    #[test]
    fn reset_on_unestablished_endpoint_is_rejected() {
        let (mut n, a, b) = net();
        let c = n
            .tcp_connect(SimTime::ZERO, a, SockAddr::new(b, 5060))
            .unwrap();
        assert_eq!(n.tcp_reset(c), Err(Errno::NotConnected));
        let u = n.udp_bind(a, 7000).unwrap();
        assert_eq!(n.tcp_reset(u), Err(Errno::BadFd));
    }

    #[test]
    fn fault_stream_is_isolated_from_jitter_stream() {
        // Two fabrics, same seed; one suffers heavy uniform UDP loss. The
        // latency draws for *delivered* datagrams must be identical.
        let mut lossy_cfg = NetConfig::lan();
        lossy_cfg.udp_loss = 0.5;
        let mut clean = Network::new(NetConfig::lan(), 77);
        let mut lossy = Network::new(lossy_cfg, 77);
        let mut times = Vec::new();
        for n in [&mut clean, &mut lossy] {
            let a = n.add_host();
            let b = n.add_host();
            let _sa = n.udp_bind(a, 5060).unwrap();
            let (sb, _) = n.udp_bind_ephemeral(b).unwrap();
            for _ in 0..200 {
                n.udp_send(
                    SimTime::ZERO,
                    sb,
                    SockAddr::new(a, 5060),
                    bytes_from(vec![1]),
                )
                .unwrap();
            }
            times.push(
                n.take_events()
                    .into_iter()
                    .map(|(t, _)| t)
                    .collect::<Vec<_>>(),
            );
        }
        let (clean_times, lossy_times) = (&times[0], &times[1]);
        assert!(lossy.stats().udp_lost > 0, "loss model must have fired");
        assert!(lossy_times.len() < clean_times.len());
        // Every delivered datagram in the lossy run kept the exact delivery
        // time it has in the clean run: the loss decisions consumed no
        // jitter randomness.
        let mut clean_iter = clean_times.iter();
        for t in lossy_times {
            assert!(
                clean_iter.any(|c| c == t),
                "delivery time {t:?} not in clean schedule (stream bleed)"
            );
        }
    }
}
