//! Network model parameters.

use siperf_simcore::time::SimDuration;

/// Tunable parameters of the simulated network, chosen to model the paper's
//  testbed: gigabit Ethernet on one switch, Linux 2.6.20 TCP defaults.
/// All experiments share one instance.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// One-way propagation + switching + interrupt latency between any two
    /// hosts. The paper's testbed is a single gigabit switch: tens of
    /// microseconds per hop.
    pub one_way_latency: SimDuration,
    /// Uniform jitter added on top of `one_way_latency` (0..jitter).
    pub latency_jitter: SimDuration,
    /// TCP maximum segment size; sends are delivered in chunks of at most
    /// this many bytes, so stream reassembly is genuinely exercised.
    pub mss: usize,
    /// Receive-buffer capacity per TCP connection side; senders are blocked
    /// (backpressure) when the peer's buffer is full.
    pub tcp_rcv_buf: usize,
    /// Accept-queue depth for listening sockets (`listen()` backlog).
    pub accept_backlog: usize,
    /// First ephemeral port (Linux default 32768).
    pub ephemeral_lo: u16,
    /// Last ephemeral port inclusive (Linux default 61000).
    pub ephemeral_hi: u16,
    /// How long an actively-closed connection's local port stays in
    /// TIME_WAIT before reuse (Linux: 60 s).
    pub time_wait: SimDuration,
    /// Probability that a UDP datagram is silently dropped. Zero on the
    /// paper's LAN; raised in retransmission tests.
    pub udp_loss: f64,
    /// Maximum datagrams queued on a UDP socket before arrivals are dropped
    /// (models `net.core.rmem` limits).
    pub udp_rcv_queue: usize,
    /// Maximum live endpoints per host — models the per-host descriptor
    /// budget whose exhaustion the paper observed with 120 s idle timeouts.
    pub max_endpoints_per_host: usize,
    /// SCTP association setup time in addition to the handshake RTT.
    pub sctp_assoc_setup: SimDuration,
    /// Extra delivery delay charged when a link fault "loses" a frame of a
    /// reliable transport: the stack would retransmit after roughly one
    /// RTO, so the stream stalls instead of losing bytes (Linux minimum
    /// RTO: 200 ms).
    pub retrans_delay: SimDuration,
}

impl NetConfig {
    /// The configuration used to reproduce the paper's testbed.
    pub fn lan() -> Self {
        NetConfig {
            one_way_latency: SimDuration::from_micros(60),
            latency_jitter: SimDuration::from_micros(20),
            mss: 1460,
            tcp_rcv_buf: 64 * 1024,
            accept_backlog: 1024,
            ephemeral_lo: 32768,
            ephemeral_hi: 61000,
            time_wait: SimDuration::from_secs(60),
            udp_loss: 0.0,
            udp_rcv_queue: 4096,
            max_endpoints_per_host: 32768,
            sctp_assoc_setup: SimDuration::from_micros(30),
            retrans_delay: SimDuration::from_millis(200),
        }
    }

    /// Number of ephemeral ports available per host.
    pub fn ephemeral_count(&self) -> usize {
        (self.ephemeral_hi - self.ephemeral_lo) as usize + 1
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_defaults_are_sane() {
        let c = NetConfig::lan();
        assert!(c.ephemeral_count() > 20_000);
        assert!(c.mss >= 536);
        assert_eq!(c.udp_loss, 0.0);
        assert!(c.time_wait > SimDuration::from_secs(1));
    }
}
