//! Wire events and kernel-visible outcomes.
//!
//! The network never schedules anything itself: every operation pushes
//! `(SimTime, NetEvent)` pairs into a pending list that the simulated kernel
//! drains into its global event queue, and every state change that could
//! unblock a process pushes a [`NetOutcome`]. This keeps `simnet` a pure
//! state machine and keeps all causality in one queue.

use crate::addr::{HostId, Port, SockAddr};
use crate::endpoint::{Bytes, Datagram, EpId};
use crate::error::Errno;

/// A frame (or protocol control message) in flight between hosts.
#[derive(Debug, Clone)]
pub enum NetEvent {
    /// A UDP datagram arriving at a bound socket (resolved at send time).
    UdpDeliver {
        /// Destination endpoint.
        to: EpId,
        /// The datagram.
        dgram: Datagram,
    },
    /// A TCP SYN arriving at `to_host:to_port`; the listener is looked up at
    /// delivery time, as in a real stack.
    TcpSyn {
        /// Destination host.
        to_host: HostId,
        /// Destination port.
        to_port: Port,
        /// The connecting client's endpoint.
        from_ep: EpId,
        /// The connecting client's address.
        from_addr: SockAddr,
    },
    /// SYN-ACK completing the client side of the handshake.
    TcpSynAck {
        /// The client endpoint that sent the SYN.
        to: EpId,
        /// The server-side connection endpoint created by the SYN.
        server_ep: EpId,
    },
    /// RST refusing a connection attempt.
    TcpRefused {
        /// The client endpoint that sent the SYN.
        to: EpId,
        /// Why the connection was refused.
        err: Errno,
    },
    /// An in-order TCP segment.
    TcpSegment {
        /// Receiving endpoint.
        to: EpId,
        /// Backing buffer (shared with other segments of the same send).
        data: Bytes,
        /// First byte of this segment within `data`.
        offset: usize,
        /// Segment length.
        len: usize,
    },
    /// FIN: the peer will send no more data.
    TcpFin {
        /// Receiving endpoint.
        to: EpId,
    },
    /// An ephemeral port leaves TIME_WAIT and returns to the pool.
    PortRelease {
        /// Host owning the port.
        host: HostId,
        /// The port.
        port: Port,
    },
    /// A frozen accept queue thaws (fault injection); listeners on the host
    /// re-announce queued connections.
    AcceptThaw {
        /// Host whose accept queues thaw.
        host: HostId,
    },
    /// An SCTP message arriving at a bound endpoint.
    SctpDeliver {
        /// Destination host (endpoint resolved at delivery).
        to_host: HostId,
        /// Destination port.
        to_port: Port,
        /// Source association address.
        from: SockAddr,
        /// Message payload (whole message: SCTP preserves boundaries).
        data: Bytes,
    },
}

/// A state change the kernel may need to act on (wake blocked processes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetOutcome {
    /// The endpoint has data, EOF, an error, or an acceptable connection.
    Readable(EpId),
    /// Send space opened up on this endpoint (or writes now fail fast).
    Writable(EpId),
    /// A `connect()` completed successfully.
    ConnectOk(EpId),
    /// A `connect()` failed.
    ConnectErr(EpId, Errno),
}

impl NetOutcome {
    /// The endpoint this outcome concerns.
    pub fn endpoint(self) -> EpId {
        match self {
            NetOutcome::Readable(e)
            | NetOutcome::Writable(e)
            | NetOutcome::ConnectOk(e)
            | NetOutcome::ConnectErr(e, _) => e,
        }
    }
}
