//! Endpoint state for every socket type the stack supports.

use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use siperf_simcore::arena::Handle;
use siperf_simcore::time::SimTime;

use crate::addr::{HostId, SockAddr};
use crate::error::Errno;

/// Immutable, cheaply-clonable wire payload.
pub type Bytes = Rc<[u8]>;

/// Builds a payload from a byte vector.
pub fn bytes_from(v: Vec<u8>) -> Bytes {
    Rc::from(v.into_boxed_slice())
}

/// A UDP datagram as seen by a receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Sender's address.
    pub from: SockAddr,
    /// Payload.
    pub data: Bytes,
}

/// Handle to any endpoint in the network's arena.
pub type EpId = Handle<Endpoint>;

/// One socket's kernel-side state.
#[derive(Debug)]
pub enum Endpoint {
    /// A bound UDP socket.
    Udp(UdpEp),
    /// A TCP socket in LISTEN state.
    TcpListener(ListenEp),
    /// A TCP connection (either side).
    Tcp(TcpEp),
    /// A one-to-many SCTP endpoint.
    Sctp(SctpEp),
}

impl Endpoint {
    /// The host that owns this endpoint.
    pub fn host(&self) -> HostId {
        match self {
            Endpoint::Udp(e) => e.local.host,
            Endpoint::TcpListener(e) => e.local.host,
            Endpoint::Tcp(e) => e.local.host,
            Endpoint::Sctp(e) => e.local.host,
        }
    }
}

/// A bound UDP socket: unordered datagram queue with a drop threshold.
#[derive(Debug)]
pub struct UdpEp {
    /// Local binding.
    pub local: SockAddr,
    /// Received datagrams not yet read by the application.
    pub rx: VecDeque<Datagram>,
    /// Datagrams dropped because `rx` was full.
    pub dropped: u64,
}

/// A TCP listening socket with its accept queue.
#[derive(Debug)]
pub struct ListenEp {
    /// Local binding.
    pub local: SockAddr,
    /// Maximum established-but-unaccepted connections.
    pub backlog: usize,
    /// Established connections awaiting `accept()`.
    pub queue: VecDeque<(EpId, SockAddr)>,
}

/// Lifecycle of one side of a TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpState {
    /// Client side: SYN sent, waiting for the SYN-ACK.
    SynSent,
    /// Data may flow both ways.
    Established,
    /// Peer sent FIN: reads drain then return EOF; writes fail.
    PeerClosed,
    /// Connection attempt failed; the stored errno is reported to the app.
    Failed(Errno),
}

/// One side of a TCP connection.
#[derive(Debug)]
pub struct TcpEp {
    /// Local address (ephemeral on the client side).
    pub local: SockAddr,
    /// Remote address.
    pub peer_addr: SockAddr,
    /// The other side's endpoint; dangling until established.
    pub peer: EpId,
    /// Protocol state.
    pub state: TcpState,
    /// Reassembled in-order received data, as (buffer, read offset) chunks.
    pub rx: VecDeque<(Bytes, usize)>,
    /// Total unread bytes in `rx`.
    pub rx_bytes: usize,
    /// Peer's FIN has been fully delivered (EOF after draining `rx`).
    pub eof: bool,
    /// Bytes this side has sent that have not yet arrived at the peer.
    pub in_flight: usize,
    /// Enforces in-order delivery despite per-segment jitter.
    pub next_deliver_at: SimTime,
    /// Whether `local.port` came from the ephemeral pool (must be returned).
    pub owns_port: bool,
    /// Set once the application closed this side.
    pub app_closed: bool,
}

impl TcpEp {
    /// True if the application can still write.
    pub fn can_write(&self) -> bool {
        self.state == TcpState::Established && !self.app_closed
    }

    /// True if a read would return data, EOF, or an error immediately.
    pub fn readable(&self) -> bool {
        self.rx_bytes > 0 || self.eof || matches!(self.state, TcpState::Failed(_))
    }
}

/// Establishment state of one SCTP association.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocState {
    /// Four-way handshake in progress; messages queue behind it.
    Setup {
        /// When the association becomes usable.
        ready_at: SimTime,
    },
    /// Messages flow with normal latency.
    Established,
}

/// A one-to-many SCTP endpoint: message-oriented, kernel-managed
/// associations (RFC 4168 usage, paper §6).
#[derive(Debug)]
pub struct SctpEp {
    /// Local binding.
    pub local: SockAddr,
    /// Received messages with their source association address.
    pub rx: VecDeque<(SockAddr, Bytes)>,
    /// Kernel-managed association table.
    pub assoc: HashMap<SockAddr, AssocState>,
    /// Messages dropped because `rx` was full.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use siperf_simcore::arena::Handle;

    fn tcp_ep(state: TcpState) -> TcpEp {
        TcpEp {
            local: SockAddr::new(HostId(0), 40000),
            peer_addr: SockAddr::new(HostId(1), 5060),
            peer: Handle::DANGLING,
            state,
            rx: VecDeque::new(),
            rx_bytes: 0,
            eof: false,
            in_flight: 0,
            next_deliver_at: SimTime::ZERO,
            owns_port: true,
            app_closed: false,
        }
    }

    #[test]
    fn tcp_write_requires_established() {
        assert!(tcp_ep(TcpState::Established).can_write());
        assert!(!tcp_ep(TcpState::SynSent).can_write());
        assert!(!tcp_ep(TcpState::PeerClosed).can_write());
        let mut e = tcp_ep(TcpState::Established);
        e.app_closed = true;
        assert!(!e.can_write());
    }

    #[test]
    fn tcp_readable_on_data_eof_or_failure() {
        let mut e = tcp_ep(TcpState::Established);
        assert!(!e.readable());
        e.rx_bytes = 10;
        assert!(e.readable());
        e.rx_bytes = 0;
        e.eof = true;
        assert!(e.readable());
        assert!(tcp_ep(TcpState::Failed(Errno::ConnRefused)).readable());
    }

    #[test]
    fn payload_is_cheap_to_clone() {
        let b = bytes_from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*c, &[1, 2, 3]);
        assert_eq!(Rc::strong_count(&b), 2);
    }
}
