//! Deterministic fault-injection schedules for the SIP proxy simulator.
//!
//! The paper's throughput and latency comparisons (UDP vs TCP vs SCTP)
//! implicitly assume a *healthy* network and proxy. This crate supplies the
//! unhealthy half: a [`FaultSchedule`] is a seeded, time-ordered script of
//! [`Fault`]s — bursty link loss, host-pair partitions, latency spikes,
//! TCP connection resets, frozen accept queues, and process crashes — that
//! the workload driver replays against the simulation at exact virtual
//! times.
//!
//! Determinism is the point. A schedule is data, not behaviour: building
//! the same schedule twice (same builder calls, or [`FaultSchedule::storm`]
//! with the same seed) yields the same events at the same instants, and the
//! network layer draws all fault randomness from its own dedicated RNG
//! stream, so two same-seed chaos runs produce byte-identical reports.
//!
//! This crate deliberately depends only on `simcore` and `simnet`; applying
//! process faults ([`Fault::KillWorker`], [`Fault::KillSupervisor`]) to a
//! live kernel/proxy is the workload layer's job.

#![warn(missing_docs)]

use siperf_simcore::rng::SimRng;
use siperf_simcore::time::SimDuration;
use siperf_simnet::{GilbertElliott, HostId};

/// One injectable fault.
///
/// Link and transport faults are applied straight to the
/// [`Network`](siperf_simnet::Network) via
/// `Kernel::inject_fault`; process faults name a proxy role and are
/// resolved to a pid by the proxy's respawn machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Start a Gilbert–Elliott burst-loss episode on every link.
    ///
    /// UDP datagrams caught in a bad burst are dropped; TCP segments and
    /// SCTP messages are delayed by the retransmission timeout instead
    /// (reliable transports stall, they do not lose).
    BurstLoss {
        /// The two-state Markov chain driving the episode.
        model: GilbertElliott,
        /// How long the episode lasts before the link heals.
        duration: SimDuration,
    },
    /// Blackhole all traffic between two hosts until the partition heals.
    Partition {
        /// One side of the severed pair.
        a: HostId,
        /// The other side.
        b: HostId,
        /// Time until connectivity returns.
        heal_after: SimDuration,
    },
    /// Inflate every link's one-way latency by `extra` for `duration`.
    LatencySpike {
        /// Additional one-way latency while the spike lasts.
        extra: SimDuration,
        /// How long the spike lasts.
        duration: SimDuration,
    },
    /// Send an RST on one established TCP connection terminating at `host`.
    ///
    /// `nth` indexes the host's established connections in deterministic
    /// endpoint order (wrapping), so the same schedule always resets the
    /// same connection.
    TcpReset {
        /// Host whose connection is torn down.
        host: HostId,
        /// Which established connection to reset, in endpoint order.
        nth: usize,
    },
    /// Freeze `host`'s TCP accept queues: SYNs still complete, but
    /// `accept()` returns `WouldBlock` until the thaw.
    AcceptFreeze {
        /// Host whose listeners stop accepting.
        host: HostId,
        /// How long accepts stay frozen.
        duration: SimDuration,
    },
    /// Crash one proxy worker process (it is respawned by the supervisor
    /// path after the crash is observed).
    KillWorker {
        /// Worker index within the proxy's worker pool (wrapping).
        index: usize,
    },
    /// Crash the proxy supervisor process (TCP multi-process architecture);
    /// a fresh supervisor is respawned with an empty descriptor cache.
    KillSupervisor,
}

/// A fault stamped with its injection time, measured from simulation start.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// Virtual time offset at which the fault fires.
    pub at: SimDuration,
    /// What happens then.
    pub fault: Fault,
}

/// A time-ordered script of faults.
///
/// Build one explicitly with [`at`](FaultSchedule::at), or generate a
/// seeded storm with [`storm`](FaultSchedule::storm). Events are kept
/// sorted by injection time (stable for equal times, preserving insertion
/// order), so the driver can replay them with a simple cursor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule: a perfectly healthy run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `fault` at offset `at`, keeping the schedule time-ordered.
    #[must_use]
    pub fn at(mut self, at: SimDuration, fault: Fault) -> Self {
        self.push(at, fault);
        self
    }

    /// Non-consuming version of [`at`](Self::at) for loop-driven builders.
    pub fn push(&mut self, at: SimDuration, fault: Fault) {
        let idx = self
            .events
            .partition_point(|e| e.at.as_nanos() <= at.as_nanos());
        self.events.insert(idx, FaultEvent { at, fault });
    }

    /// Generates the canonical chaos storm used by the chaos suite: a
    /// burst-loss episode, one worker crash, and one connection reset,
    /// scattered deterministically over `[start, start + window)`.
    ///
    /// The same `(seed, start, window, workers)` always yields the same
    /// schedule. `reset_host` is the host whose established TCP connection
    /// gets the RST (pass the proxy's host; the reset is skipped at
    /// apply time for datagram transports with no established
    /// connections).
    pub fn storm(
        seed: u64,
        start: SimDuration,
        window: SimDuration,
        workers: usize,
        reset_host: HostId,
    ) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5707_14fa);
        let span = window.as_nanos().max(1);
        let offset = |rng: &mut SimRng| start + SimDuration::from_nanos(rng.range_u64(0..span));

        let burst_at = offset(&mut rng);
        let burst_len = SimDuration::from_nanos(span / 4 + rng.range_u64(0..span / 4));
        let crash_at = offset(&mut rng);
        let crash_idx = rng.range_u64(0..workers.max(1) as u64) as usize;
        let reset_at = offset(&mut rng);
        let reset_nth = rng.range_u64(0..64) as usize;

        Self::new()
            .at(
                burst_at,
                Fault::BurstLoss {
                    model: GilbertElliott::bursty(),
                    duration: burst_len,
                },
            )
            .at(crash_at, Fault::KillWorker { index: crash_idx })
            .at(
                reset_at,
                Fault::TcpReset {
                    host: reset_host,
                    nth: reset_nth,
                },
            )
    }

    /// The events in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty (a healthy run).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the schedule into its ordered events.
    pub fn into_events(self) -> Vec<FaultEvent> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn builder_keeps_events_time_ordered() {
        let s = FaultSchedule::new()
            .at(ms(300), Fault::KillSupervisor)
            .at(ms(100), Fault::KillWorker { index: 0 })
            .at(
                ms(200),
                Fault::LatencySpike {
                    extra: ms(5),
                    duration: ms(50),
                },
            );
        let ats: Vec<u64> = s.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(
            ats,
            [ms(100), ms(200), ms(300)]
                .iter()
                .map(|d| d.as_nanos())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        let s = FaultSchedule::new()
            .at(ms(100), Fault::KillWorker { index: 1 })
            .at(ms(100), Fault::KillWorker { index: 2 });
        assert_eq!(s.events()[0].fault, Fault::KillWorker { index: 1 });
        assert_eq!(s.events()[1].fault, Fault::KillWorker { index: 2 });
    }

    #[test]
    fn storm_is_deterministic_per_seed() {
        let host = HostId(0);
        let a = FaultSchedule::storm(7, ms(1000), ms(4000), 4, host);
        let b = FaultSchedule::storm(7, ms(1000), ms(4000), 4, host);
        assert_eq!(a, b);
        let c = FaultSchedule::storm(8, ms(1000), ms(4000), 4, host);
        assert_ne!(a, c, "different seeds should scatter differently");
    }

    #[test]
    fn storm_contains_the_canonical_trio_inside_the_window() {
        let s = FaultSchedule::storm(42, ms(1000), ms(4000), 4, HostId(0));
        assert_eq!(s.len(), 3);
        let mut kinds = [false; 3];
        for e in s.events() {
            assert!(
                e.at >= ms(1000) && e.at < ms(5000),
                "outside window: {:?}",
                e.at
            );
            match e.fault {
                Fault::BurstLoss { .. } => kinds[0] = true,
                Fault::KillWorker { index } => {
                    kinds[1] = true;
                    assert!(index < 4);
                }
                Fault::TcpReset { .. } => kinds[2] = true,
                _ => panic!("unexpected fault {:?}", e.fault),
            }
        }
        assert_eq!(kinds, [true; 3]);
    }

    #[test]
    fn empty_schedule_is_healthy() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.into_events().is_empty());
    }
}
