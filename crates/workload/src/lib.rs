//! # siperf-workload
//!
//! The benchmark driver for the SIPerf study — the paper's §4.2
//! methodology as code: thousands of simulated SIP phones across three
//! client machines, a registration phase, then closed-loop calls through
//! the proxy with throughput measured as operations (SIP transactions) per
//! second over the measured phase only.
//!
//! * [`phone`] — the transport-independent caller engine and callee logic.
//! * [`phone_msg`] — UDP/SCTP phone processes.
//! * [`phone_tcp`] — TCP phone processes with listen sockets, never-closed
//!   connections, and the 50/500 ops-per-connection reconnect policies.
//! * [`open_loop`] — open-loop Poisson callers that offer load regardless
//!   of outstanding calls (the x-axis of goodput-vs-offered-load curves).
//! * [`scenario`] — world construction, execution, and the full
//!   [`scenario::ScenarioReport`].
//! * [`experiments`] — the paper's grid: Figures 3–5 cells, the §4.3
//!   ablations, and the §6 extensions.
//! * [`stats`] — client-side measurement.
//!
//! # Example
//!
//! ```
//! use siperf_workload::{Scenario, Transport};
//!
//! let report = Scenario::builder("smoke")
//!     .transport(Transport::Udp)
//!     .client_pairs(10)
//!     .measure_secs(1)
//!     .build()
//!     .run();
//! assert!(report.registered >= 20, "all phones register");
//! assert!(report.throughput.per_sec() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod open_loop;
pub mod phone;
pub mod phone_msg;
pub mod phone_tcp;
pub mod scenario;
pub mod stats;

pub use experiments::{FigureConfig, TransportWorkload, CLIENT_COUNTS};
pub use scenario::{Scenario, ScenarioBuilder, ScenarioReport};
pub use siperf_overload::OverloadConfig;
pub use siperf_proxy::config::{Arch, IdleStrategy, ProxyConfig, Transport};
pub use stats::WorkloadStats;
