//! Scenario construction and execution — the §4.2 benchmark methodology.
//!
//! A scenario stands up the paper's testbed: one four-core server, three
//! client machines, N caller/callee pairs. Phones register during the first
//! phase; calls begin after [`Scenario::call_start`]; throughput counts
//! only operations completing inside the measurement window, exactly as the
//! paper's manager measures only the second phase.

use std::time::Instant;

use siperf_faults::{Fault, FaultSchedule};
use siperf_overload::OverloadConfig;
use siperf_proxy::config::{ProxyConfig, Transport};
use siperf_proxy::core::ProxyStats;
use siperf_proxy::spawn::spawn_proxy;
use siperf_simcore::prelude::*;
use siperf_simnet::addr::{HostId, SockAddr};
use siperf_simnet::{NetConfig, NetStats};
use siperf_simos::cost::CostModel;
use siperf_simos::kernel::{Kernel, KernelStats};

use crate::open_loop::{OpenLoopCfg, OpenLoopMsgPhone, OpenLoopTcpPhone};
use crate::phone::{PhoneCfg, Role};
use crate::phone_msg::{MsgPhone, MsgTransport};
use crate::phone_tcp::TcpPhone;
use crate::stats::WorkloadStats;

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Label used in reports.
    pub name: String,
    /// The proxy under test.
    pub proxy: ProxyConfig,
    /// Caller/callee pairs ("number of clients" on the paper's x-axes).
    pub pairs: usize,
    /// Client machines (the paper used three).
    pub client_hosts: usize,
    /// Cores per client machine.
    pub client_cores: usize,
    /// Cores on the server (the paper's dual Opteron 280 = four).
    pub server_cores: usize,
    /// TCP ops-per-connection policy (`None` = persistent connections).
    pub ops_per_conn: Option<u32>,
    /// Cancel every k-th call while ringing (`None` = never).
    pub cancel_every: Option<u64>,
    /// Callee ring time before answering (zero in the paper's workload).
    pub ring_delay: SimDuration,
    /// When callers start dialing (registration happens before).
    pub call_start: SimDuration,
    /// Measurement window start (after ramp-up).
    pub measure_from: SimDuration,
    /// Measurement window length.
    pub measure: SimDuration,
    /// Open-loop mode: aggregate Poisson call-arrival rate in calls per
    /// second, split evenly across one open-loop caller per client host.
    /// `None` (the default) keeps the closed-loop caller/callee pairs; with
    /// `Some(rate)`, [`Scenario::pairs`] counts callees only and arrivals
    /// keep coming regardless of how many calls are outstanding.
    pub arrival_rate: Option<f64>,
    /// Setup-delay budget for open-loop calls: a call whose INVITE
    /// transaction takes longer completes but scores no goodput, the way
    /// the overload literature counts sessions established past their
    /// deadline. Ignored in closed-loop mode.
    pub setup_deadline: Option<SimDuration>,
    /// RNG seed; identical seeds replay identically.
    pub seed: u64,
    /// Network parameters.
    pub net: NetConfig,
    /// Kernel cost calibration.
    pub kernel_costs: CostModel,
    /// CPU charged per message on phones.
    pub phone_proc_ns: u64,
    /// Faults injected at fixed virtual-time offsets while the run plays.
    pub faults: FaultSchedule,
}

impl Scenario {
    /// Starts building a scenario with the paper's defaults.
    pub fn builder(name: impl Into<String>) -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Scenario {
                name: name.into(),
                proxy: ProxyConfig::paper(Transport::Udp),
                pairs: 100,
                client_hosts: 3,
                client_cores: 4,
                server_cores: 4,
                ops_per_conn: None,
                cancel_every: None,
                ring_delay: SimDuration::ZERO,
                call_start: SimDuration::from_millis(1000),
                measure_from: SimDuration::from_millis(2000),
                measure: SimDuration::from_secs(8),
                arrival_rate: None,
                setup_deadline: None,
                seed: 42,
                net: NetConfig::lan(),
                kernel_costs: CostModel::opteron_2006(),
                phone_proc_ns: 600,
                faults: FaultSchedule::new(),
            },
        }
    }

    /// The measurement window in absolute virtual time.
    pub fn window(&self) -> (SimTime, SimTime) {
        (
            SimTime::ZERO + self.measure_from,
            SimTime::ZERO + self.measure_from + self.measure,
        )
    }

    /// Runs the scenario to completion and gathers every result surface.
    pub fn run(&self) -> ScenarioReport {
        let wall_start = Instant::now();
        let mut world = self.build_world();
        self.drive(&mut world);
        let mut report = self.report(&world);
        report.wall_clock_secs = wall_start.elapsed().as_secs_f64();
        report
    }

    /// Drives a built world to the end of the measurement window, applying
    /// the fault schedule at its appointed instants. The schedule is sorted
    /// by construction, so this is a single forward pass.
    pub fn drive(&self, world: &mut World) {
        let end = self.window().1;
        for ev in self.faults.events() {
            let at = SimTime::ZERO + ev.at;
            if at >= end {
                break;
            }
            world.kernel.run_until(at);
            world.apply_fault(&ev.fault);
        }
        world.kernel.run_until(end);
    }

    /// Builds the simulated world without running it, for tests and
    /// examples that need to drive or inspect the kernel directly.
    pub fn build_world(&self) -> World {
        let mut kernel = Kernel::new(self.net.clone(), self.kernel_costs.clone(), self.seed);
        let server = kernel.add_host(self.server_cores);
        let clients: Vec<HostId> = (0..self.client_hosts)
            .map(|_| kernel.add_host(self.client_cores))
            .collect();
        let proxy = spawn_proxy(&mut kernel, server, self.proxy.clone());

        let window = self.window();
        let stats = WorkloadStats::new(window);
        let mut rng = SimRng::seed_from_u64(self.seed ^ 0x5eed);
        let transport = self.proxy.transport;
        let call_start = SimTime::ZERO + self.call_start;

        // Closed loop: caller/callee pairs. Open loop: `pairs` callees plus
        // one Poisson caller per client host; each pooled caller dials the
        // callees uniformly.
        let spawn_sets: Vec<(usize, Role)> = if self.arrival_rate.is_some() {
            (0..self.pairs).map(|i| (i, Role::Callee)).collect()
        } else {
            (0..self.pairs)
                .flat_map(|i| [(2 * i, Role::Caller), (2 * i + 1, Role::Callee)])
                .collect()
        };
        for (idx, role) in spawn_sets {
            let i = if self.arrival_rate.is_some() {
                idx
            } else {
                idx / 2
            };
            let host = clients[idx % clients.len()];
            let (user, peer_user) = match role {
                Role::Caller => (format!("c{i}"), format!("e{i}")),
                Role::Callee => (format!("e{i}"), String::new()),
            };
            let cfg = PhoneCfg {
                user: user.clone(),
                peer_user,
                role,
                port: 20_000 + idx as u16,
                proxy: proxy.addr,
                domain: "sip.lab".into(),
                transport: transport.token(),
                reliable: transport.is_reliable(),
                call_start: call_start + SimDuration::from_nanos(rng.range_u64(0..20_000_000)),
                stagger: SimDuration::from_nanos(rng.range_u64(1..500_000_000)),
                ops_per_conn: self.ops_per_conn,
                cancel_every: self.cancel_every,
                ring_delay: self.ring_delay,
                proc_ns: self.phone_proc_ns,
                jitter_seed: rng.next_u64(),
                stats: stats.clone(),
            };
            let name = format!("phone_{user}");
            match transport {
                Transport::Udp => {
                    kernel.spawn(
                        host,
                        Default::default(),
                        name,
                        Box::new(MsgPhone::new(cfg, MsgTransport::Udp)),
                    );
                }
                Transport::Sctp => {
                    kernel.spawn(
                        host,
                        Default::default(),
                        name,
                        Box::new(MsgPhone::new(cfg, MsgTransport::Sctp)),
                    );
                }
                Transport::Tcp => {
                    kernel.spawn(host, Default::default(), name, Box::new(TcpPhone::new(cfg)));
                }
            }
        }

        if let Some(rate) = self.arrival_rate {
            for (h, &host) in clients.iter().enumerate() {
                let cfg = OpenLoopCfg {
                    user: format!("o{h}"),
                    callees: self.pairs,
                    port: 30_000 + h as u16,
                    proxy: proxy.addr,
                    domain: "sip.lab".into(),
                    transport: transport.token(),
                    reliable: transport.is_reliable(),
                    call_start,
                    stagger: SimDuration::from_nanos(rng.range_u64(1..500_000_000)),
                    arrival_rate: rate / clients.len() as f64,
                    setup_deadline: self.setup_deadline,
                    proc_ns: self.phone_proc_ns,
                    seed: rng.next_u64(),
                    stats: stats.clone(),
                };
                let name = format!("caller_o{h}");
                match transport {
                    Transport::Udp => {
                        kernel.spawn(
                            host,
                            Default::default(),
                            name,
                            Box::new(OpenLoopMsgPhone::new(cfg, MsgTransport::Udp)),
                        );
                    }
                    Transport::Sctp => {
                        kernel.spawn(
                            host,
                            Default::default(),
                            name,
                            Box::new(OpenLoopMsgPhone::new(cfg, MsgTransport::Sctp)),
                        );
                    }
                    Transport::Tcp => {
                        kernel.spawn(
                            host,
                            Default::default(),
                            name,
                            Box::new(OpenLoopTcpPhone::new(cfg)),
                        );
                    }
                }
            }
        }

        World {
            kernel,
            proxy,
            stats,
            server,
        }
    }

    /// Collects the report from a (fully or partially) run world.
    ///
    /// `wall_clock_secs` is left at 0 here — only [`Scenario::run`] spans
    /// the whole build/drive/report cycle, so only it can stamp a
    /// meaningful wall-clock duration. No live `Instant` is stored in the
    /// world or the report, keeping reports comparable across runs.
    pub fn report(&self, world: &World) -> ScenarioReport {
        let window = self.window();
        let kernel = &world.kernel;
        let proxy = &world.proxy;
        let server = world.server;
        let w = world.stats.borrow();
        let busy = kernel.host_busy_ns(server);
        let wall = kernel.now().as_secs_f64().max(1e-9);
        let _ = window;
        let lock_contention = {
            let l = &proxy.locks;
            [l.txn, l.usrloc, l.timer, l.conn]
                .into_iter()
                .map(|id| {
                    let lock = kernel.lock(id);
                    (lock.name, lock.contention_ratio())
                })
                .collect()
        };
        ScenarioReport {
            name: self.name.clone(),
            pairs: self.pairs,
            throughput: WindowRate::new(w.ops_in_window, self.measure.as_secs_f64()),
            offered: WindowRate::new(w.attempts_in_window, self.measure.as_secs_f64()),
            ops_total: w.ops_total,
            registered: w.register_ok,
            call_attempts: w.call_attempts,
            call_failures: w.call_failures,
            calls_late: w.calls_late,
            calls_rejected: w.calls_rejected,
            rejection_retries: w.rejection_retries,
            calls_cancelled: w.calls_cancelled,
            phone_retransmits: w.phone_retransmits,
            connect_errors: w.connect_errors,
            reconnects: w.reconnects,
            faults_injected: w.faults_injected,
            connections_reset: w.connections_reset,
            workers_respawned: w.workers_respawned,
            recovered_calls: w.recovered_calls,
            open_calls_peak: w.open_calls_peak,
            invite_p50: w.invite_latency.percentile(50.0),
            invite_p99: w.invite_latency.percentile(99.0),
            bye_p50: w.bye_latency.percentile(50.0),
            proxy: proxy.stats(),
            open_conns: proxy.open_conns(),
            kernel: kernel.stats(),
            net: kernel.net().stats(),
            server_profile: kernel.profiler(server).report(),
            server_utilization: busy as f64 / (self.server_cores as f64 * wall * 1e9),
            server_endpoints: kernel.net().endpoints_on(server),
            server_time_wait: kernel.net().ports_in_time_wait(server),
            lock_contention,
            wall_clock_secs: 0.0,
        }
    }
}

/// A built but externally-driven simulation.
pub struct World {
    /// The simulated OS + network.
    pub kernel: Kernel,
    /// Handle over the proxy under test.
    pub proxy: siperf_proxy::spawn::ProxyHandle,
    /// Shared phone-side statistics.
    pub stats: std::rc::Rc<std::cell::RefCell<WorkloadStats>>,
    /// The server host id.
    pub server: HostId,
}

impl World {
    /// Applies one fault to the running world at the kernel's current
    /// virtual time. Returns whether the fault had anything to act on (a
    /// `TcpReset` with no established connection is a no-op, as is
    /// `KillSupervisor` under a single-process architecture).
    pub fn apply_fault(&mut self, fault: &Fault) -> bool {
        let applied = match fault {
            Fault::BurstLoss { model, duration } => {
                let (model, duration) = (*model, *duration);
                self.kernel
                    .inject_fault(|net, now| net.fault_burst_loss(now, model, duration));
                true
            }
            Fault::Partition { a, b, heal_after } => {
                let (a, b, heal) = (*a, *b, *heal_after);
                self.kernel
                    .inject_fault(|net, now| net.fault_partition(now, a, b, heal));
                true
            }
            Fault::LatencySpike { extra, duration } => {
                let (extra, duration) = (*extra, *duration);
                self.kernel
                    .inject_fault(|net, now| net.fault_latency_spike(now, extra, duration));
                true
            }
            Fault::AcceptFreeze { host, duration } => {
                let (host, duration) = (*host, *duration);
                self.kernel
                    .inject_fault(|net, now| net.fault_freeze_accepts(now, host, duration));
                true
            }
            Fault::TcpReset { host, nth } => {
                let (host, nth) = (*host, *nth);
                let reset = self.kernel.inject_fault(|net, _now| {
                    let est = net.tcp_established_on(host);
                    if est.is_empty() {
                        false
                    } else {
                        net.tcp_reset(est[nth % est.len()]).is_ok()
                    }
                });
                if reset {
                    self.stats.borrow_mut().connections_reset += 1;
                }
                reset
            }
            Fault::KillWorker { index } => {
                self.proxy.respawn_worker(&mut self.kernel, *index);
                self.stats.borrow_mut().workers_respawned += 1;
                true
            }
            Fault::KillSupervisor => {
                let respawned = self.proxy.respawn_supervisor(&mut self.kernel).is_some();
                if respawned {
                    self.stats.borrow_mut().workers_respawned += 1;
                }
                respawned
            }
        };
        if applied {
            self.stats.borrow_mut().faults_injected += 1;
        }
        applied
    }
}

/// Fluent construction for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Selects the transport (resetting proxy config to the paper's for
    /// that transport).
    pub fn transport(mut self, t: Transport) -> Self {
        self.scenario.proxy = ProxyConfig::paper(t);
        self
    }

    /// Replaces the whole proxy configuration.
    pub fn proxy(mut self, cfg: ProxyConfig) -> Self {
        self.scenario.proxy = cfg;
        self
    }

    /// Selects the proxy's overload-control policy for this run. Call
    /// after [`transport`](Self::transport), which resets the proxy
    /// configuration.
    pub fn overload_policy(mut self, policy: OverloadConfig) -> Self {
        self.scenario.proxy.overload = policy;
        self
    }

    /// Sets the number of caller/callee pairs.
    pub fn client_pairs(mut self, pairs: usize) -> Self {
        self.scenario.pairs = pairs;
        self
    }

    /// Sets the TCP ops-per-connection reconnect policy.
    pub fn ops_per_conn(mut self, ops: u32) -> Self {
        self.scenario.ops_per_conn = Some(ops);
        self
    }

    /// Cancels every `k`-th call while it rings (extension workload).
    pub fn cancel_every(mut self, k: u64) -> Self {
        self.scenario.cancel_every = Some(k);
        self
    }

    /// Sets the callee ring time before answering.
    pub fn ring_delay(mut self, d: SimDuration) -> Self {
        self.scenario.ring_delay = d;
        self
    }

    /// Measurement window length in seconds.
    pub fn measure_secs(mut self, secs: u64) -> Self {
        self.scenario.measure = SimDuration::from_secs(secs);
        self
    }

    /// Switches the workload to open-loop mode: calls arrive in a seeded
    /// Poisson process at `rate` calls per second in aggregate, split
    /// across one pooled caller per client host, regardless of how many
    /// calls are outstanding. [`client_pairs`](Self::client_pairs) then
    /// counts callees rather than caller/callee pairs.
    pub fn arrival_rate(mut self, rate: f64) -> Self {
        self.scenario.arrival_rate = Some(rate);
        self
    }

    /// Sets the open-loop setup-delay budget: calls whose INVITE
    /// transaction exceeds it complete but count as zero goodput.
    pub fn setup_deadline(mut self, budget: SimDuration) -> Self {
        self.scenario.setup_deadline = Some(budget);
        self
    }

    /// RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Overrides the network model.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.scenario.net = net;
        self
    }

    /// Injects a fault schedule into the run.
    pub fn fault_schedule(mut self, faults: FaultSchedule) -> Self {
        self.scenario.faults = faults;
        self
    }

    /// Mutates the proxy configuration in place.
    pub fn tune_proxy(mut self, f: impl FnOnce(&mut ProxyConfig)) -> Self {
        f(&mut self.scenario.proxy);
        self
    }

    /// Finishes building.
    ///
    /// # Panics
    ///
    /// Panics if the measurement window is empty (a zero-length window
    /// would make every ops-per-second figure meaningless) or if an
    /// open-loop arrival rate is set but not positive and finite.
    pub fn build(self) -> Scenario {
        let s = &self.scenario;
        assert!(
            s.measure > SimDuration::ZERO,
            "scenario `{}`: measurement window is empty — set measure_secs > 0",
            s.name
        );
        if let Some(rate) = s.arrival_rate {
            assert!(
                rate.is_finite() && rate > 0.0,
                "scenario `{}`: open-loop arrival rate must be positive and finite, got {rate}",
                s.name
            );
        }
        self.scenario
    }
}

/// Everything a finished run reports.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario label.
    pub name: String,
    /// Caller/callee pairs driven.
    pub pairs: usize,
    /// Operations per second over the measurement window — the paper's
    /// y-axis. Only completed transactions count, so past the saturation
    /// knee this is the run's *goodput*.
    pub throughput: WindowRate,
    /// Call attempts started per second over the window — the *offered*
    /// load the goodput curves plot against.
    pub offered: WindowRate,
    /// All operations completed (including outside the window).
    pub ops_total: u64,
    /// Registrations acknowledged.
    pub registered: u64,
    /// Calls started.
    pub call_attempts: u64,
    /// Calls that failed or timed out.
    pub call_failures: u64,
    /// Open-loop calls that completed past the setup-delay budget (zero
    /// goodput despite consuming full capacity).
    pub calls_late: u64,
    /// Calls the proxy shed with `503 Service Unavailable`.
    pub calls_rejected: u64,
    /// Calls re-attempted after a 503 backoff expired.
    pub rejection_retries: u64,
    /// Calls deliberately cancelled while ringing.
    pub calls_cancelled: u64,
    /// Phone-side retransmissions (UDP).
    pub phone_retransmits: u64,
    /// Failed connects (TCP).
    pub connect_errors: u64,
    /// Policy-driven reconnects (TCP 50/500-ops workloads).
    pub reconnects: u64,
    /// Faults the schedule driver actually applied.
    pub faults_injected: u64,
    /// Established connections torn down by injected RSTs.
    pub connections_reset: u64,
    /// Proxy processes killed and respawned by injected crashes.
    pub workers_respawned: u64,
    /// Calls disturbed by a mid-call fault that still completed after
    /// reconnect-and-redrive.
    pub recovered_calls: u64,
    /// Peak concurrent calls in any open-loop caller's pool (0 for
    /// closed-loop runs).
    pub open_calls_peak: u64,
    /// Invite-transaction latency, median.
    pub invite_p50: SimDuration,
    /// Invite-transaction latency, 99th percentile.
    pub invite_p99: SimDuration,
    /// Bye-transaction latency, median.
    pub bye_p50: SimDuration,
    /// Proxy-side counters.
    pub proxy: ProxyStats,
    /// Connection objects alive at the end.
    pub open_conns: usize,
    /// Kernel scheduler statistics.
    pub kernel: KernelStats,
    /// Network statistics.
    pub net: NetStats,
    /// The server's CPU profile (the paper's OProfile view).
    pub server_profile: ProfileReport,
    /// Server CPU utilization over the whole run.
    pub server_utilization: f64,
    /// Live sockets on the server at the end.
    pub server_endpoints: usize,
    /// Server ports stuck in TIME_WAIT at the end.
    pub server_time_wait: usize,
    /// Contention ratio per proxy lock.
    pub lock_contention: Vec<(&'static str, f64)>,
    /// Host wall-clock seconds the simulation took, captured as a plain
    /// duration when [`Scenario::run`] builds the report (0 when the report
    /// was assembled from an externally-driven world).
    pub wall_clock_secs: f64,
}

impl ScenarioReport {
    /// A deterministic digest of the run: the full report with the one
    /// host-dependent field (wall-clock time) zeroed, so two same-seed runs
    /// must produce byte-identical fingerprints.
    pub fn fingerprint(&self) -> String {
        let mut copy = self.clone();
        copy.wall_clock_secs = 0.0;
        format!("{copy:#?}")
    }

    /// One line for figure tables.
    pub fn summary(&self) -> String {
        format!(
            "{:<28} {:>9.0} ops/s  fail {:>5}  p50 {:>9}  util {:>5.1}%",
            self.name,
            self.throughput.per_sec(),
            self.call_failures,
            self.invite_p50.to_string(),
            100.0 * self.server_utilization,
        )
    }
}

/// The SIP address a scenario's proxy will listen on (host 0 is always the
/// server).
pub fn proxy_addr() -> SockAddr {
    SockAddr::new(HostId(0), siperf_simnet::SIP_PORT)
}
