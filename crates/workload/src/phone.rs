//! Transport-independent phone behaviour.
//!
//! The benchmark simulates thousands of phones (§4.2): callers drive a
//! closed loop of calls against their designated callees, callees answer
//! immediately. [`CallEngine`] is the caller's brain — it builds requests,
//! tracks the in-flight transaction with its RFC 3261 retransmission clock,
//! and decides what to do with each response — independent of how bytes
//! reach the proxy, so the UDP/SCTP and TCP phone processes stay thin and
//! the logic is unit-testable.

use std::cell::RefCell;
use std::rc::Rc;

use siperf_simcore::rng::SimRng;
use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::addr::SockAddr;
use siperf_simnet::endpoint::{bytes_from, Bytes};
use siperf_sip::gen::{self, CallParty};
use siperf_sip::msg::{Method, SipMessage, StatusCode};
use siperf_sip::txn::{RetransClock, TimerVerdict, TIMEOUT};

use crate::stats::WorkloadStats;

/// Ceiling on the 503 retry backoff in seconds, however many rejections
/// pile up and whatever `Retry-After` the proxy advertises.
pub const REJECT_BACKOFF_CAP_SECS: u64 = 8;

/// [`REJECT_BACKOFF_CAP_SECS`] as a duration.
pub const REJECT_BACKOFF_CAP: SimDuration = SimDuration::from_secs(REJECT_BACKOFF_CAP_SECS);

/// Computes the capped-exponential 503 backoff with bounded "equal jitter":
/// half the nominal delay is kept, the other half drawn uniformly from the
/// phone's own RNG stream, so the delay lands in `[nominal/2, nominal]`.
/// Without the jitter every phone shed in the same burst would wake on
/// exactly the same virtual tick `retry_after · 2^k` later and re-offer its
/// load in lockstep; with it the retries spread out while the delay stays
/// below [`REJECT_BACKOFF_CAP`] and replays identically from the seed.
pub fn reject_backoff(retry_after: u32, consecutive_rejects: u32, rng: &mut SimRng) -> SimDuration {
    let base = u64::from(retry_after.max(1));
    let shifted = base
        .checked_shl(consecutive_rejects.min(16))
        .unwrap_or(u64::MAX);
    let nominal_ns = shifted.min(REJECT_BACKOFF_CAP_SECS) * 1_000_000_000;
    let half = nominal_ns / 2;
    SimDuration::from_nanos(half + rng.range_u64(0..half + 1))
}

/// Whether a phone initiates calls or answers them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Initiates INVITE and BYE transactions in a closed loop.
    Caller,
    /// Answers: 180 + 200 to INVITE, 200 to BYE.
    Callee,
}

/// Static description of one phone.
#[derive(Debug, Clone)]
pub struct PhoneCfg {
    /// SIP user name.
    pub user: String,
    /// Peer user this caller dials (unused for callees).
    pub peer_user: String,
    /// Caller or callee.
    pub role: Role,
    /// The phone's fixed local port (contact/listen port).
    pub port: u16,
    /// The proxy's address.
    pub proxy: SockAddr,
    /// SIP domain served by the proxy.
    pub domain: String,
    /// Via/Contact transport token ("UDP"/"TCP"/"SCTP").
    pub transport: &'static str,
    /// Whether the transport retransmits for us.
    pub reliable: bool,
    /// When callers may start dialing.
    pub call_start: SimTime,
    /// Per-phone startup stagger before registering.
    pub stagger: siperf_simcore::time::SimDuration,
    /// Reconnect after this many operations (TCP; `None` = persistent).
    pub ops_per_conn: Option<u32>,
    /// Abandon (CANCEL) every k-th call while it rings (`None` = never).
    pub cancel_every: Option<u64>,
    /// How long callees ring before answering 200 (zero = instant answer,
    /// the paper's workload; nonzero makes CANCEL races winnable).
    pub ring_delay: siperf_simcore::time::SimDuration,
    /// CPU charged per message handled by the phone.
    pub proc_ns: u64,
    /// Seed for the phone's private RNG stream (503 backoff jitter). Each
    /// phone gets its own stream so jitter draws never perturb any other
    /// phone's behaviour and same-seed runs replay bit-identically.
    pub jitter_seed: u64,
    /// Shared result sink.
    pub stats: Rc<RefCell<WorkloadStats>>,
}

impl PhoneCfg {
    /// This phone as a SIP party (contact host is its `hN:port`).
    pub fn party(&self, host: siperf_simnet::HostId) -> CallParty {
        CallParty::new(self.user.clone(), format!("{}:{}", host, self.port))
    }

    /// Builds this phone's REGISTER request.
    pub fn register_msg(&self, host: siperf_simnet::HostId) -> Bytes {
        let party = self.party(host);
        let msg = gen::register(
            &party,
            &self.domain,
            1,
            &format!("z9hG4bKreg{}", self.user),
            self.transport,
        );
        bytes_from(msg.to_bytes())
    }
}

/// Phase of the caller's current call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallPhase {
    /// INVITE sent; waiting for any response, then the 200.
    AwaitInvite,
    /// ACK and BYE sent; waiting for the BYE's 200.
    AwaitByeOk,
}

#[derive(Debug)]
struct CallCtx {
    call_id: String,
    phase: CallPhase,
    clock: RetransClock,
    deadline: SimTime,
    cur_msg: Bytes,
    txn_start: SimTime,
    invite_branch: String,
    cancel_pending: bool,
    cancel_sent: bool,
    /// The call hit a transport fault (reset/EOF) and was re-driven; when it
    /// still completes, it counts as recovered.
    disturbed: bool,
}

/// What the transport layer should do after consulting the engine.
#[derive(Debug)]
pub enum EngineAction {
    /// Transmit these requests to the proxy, in order.
    Send(Vec<Bytes>),
    /// Nothing to do; wake the engine again at the embedded instant.
    Wait(SimTime),
}

/// The caller's transaction state machine.
#[derive(Debug)]
pub struct CallEngine {
    party: CallParty,
    peer: CallParty,
    domain: String,
    transport: &'static str,
    reliable: bool,
    cancel_every: Option<u64>,
    stats: Rc<RefCell<WorkloadStats>>,
    call_no: u64,
    call: Option<CallCtx>,
    /// Set while backing off after a 503: no call is in flight and the
    /// next one may not start before this instant.
    backoff_until: Option<SimTime>,
    /// Consecutive 503s without an admitted call (backoff exponent).
    consecutive_rejects: u32,
    /// Private jitter stream (503 backoff desynchronization).
    rng: SimRng,
    /// Operations completed since the engine started (drives reconnects).
    pub ops_done: u64,
}

impl CallEngine {
    /// Creates the engine for one caller.
    pub fn new(cfg: &PhoneCfg, host: siperf_simnet::HostId) -> Self {
        CallEngine {
            party: cfg.party(host),
            peer: CallParty::new(cfg.peer_user.clone(), String::new()),
            domain: cfg.domain.clone(),
            transport: cfg.transport,
            reliable: cfg.reliable,
            cancel_every: cfg.cancel_every,
            stats: cfg.stats.clone(),
            call_no: 0,
            call: None,
            backoff_until: None,
            consecutive_rejects: 0,
            rng: SimRng::seed_from_u64(cfg.jitter_seed),
            ops_done: 0,
        }
    }

    fn new_clock(&self, now: SimTime) -> RetransClock {
        if self.reliable {
            RetransClock::reliable(now)
        } else {
            RetransClock::new(now, Method::Invite)
        }
    }

    /// Starts the next call, returning the INVITE to transmit.
    pub fn start_call(&mut self, now: SimTime) -> Bytes {
        self.call_no += 1;
        let call_id = format!("c{}-{}", self.call_no, self.party.user);
        let branch = format!("z9hG4bK{}i{}", self.party.user, self.call_no);
        let invite = gen::invite(
            &self.party,
            &self.peer,
            &self.domain,
            &call_id,
            &branch,
            self.transport,
        );
        let bytes = bytes_from(invite.to_bytes());
        self.stats.borrow_mut().record_attempt(now);
        self.backoff_until = None;
        let cancel_pending = self
            .cancel_every
            .is_some_and(|k| self.call_no.is_multiple_of(k));
        self.call = Some(CallCtx {
            call_id,
            phase: CallPhase::AwaitInvite,
            clock: self.new_clock(now),
            deadline: now + TIMEOUT,
            cur_msg: bytes.clone(),
            txn_start: now,
            invite_branch: branch,
            cancel_pending,
            cancel_sent: false,
            disturbed: false,
        });
        bytes
    }

    /// Transport-fault recovery: returns the in-flight request (INVITE or
    /// BYE) to send again after a reconnect, marking the call disturbed so a
    /// later completion counts as recovered. `None` when no call is in
    /// flight — reconnecting between calls needs no re-drive.
    pub fn redrive(&mut self, now: SimTime) -> Option<Bytes> {
        let call = self.call.as_mut()?;
        // One re-drive per call: the first disturbance re-sends the
        // in-flight request; further connection losses (e.g. a server
        // aggressively reaping idle connections) must not turn one call
        // into a reconnect storm.
        if call.disturbed {
            return None;
        }
        call.disturbed = true;
        // Restart the retransmission clock relative to the reconnect so an
        // unreliable phone does not fire a burst of catch-up retransmits.
        let reliable = self.reliable;
        call.clock = if reliable {
            RetransClock::reliable(now)
        } else {
            RetransClock::new(now, Method::Invite)
        };
        Some(call.cur_msg.clone())
    }

    /// Whether a call is currently in flight (drives reconnect-and-redrive
    /// decisions in the transport layer).
    pub fn call_in_flight(&self) -> bool {
        self.call.is_some()
    }

    /// When the transport should next wake the engine if nothing arrives.
    pub fn next_wake(&self) -> SimTime {
        match &self.call {
            Some(c) if c.clock.is_stopped() => c.deadline,
            Some(c) => c.clock.next_at().min(c.deadline),
            None => self.backoff_until.unwrap_or(SimTime::MAX),
        }
    }

    /// Clock tick: retransmit, keep waiting, or declare the call dead (in
    /// which case the next call's INVITE is returned).
    pub fn on_timer(&mut self, now: SimTime) -> EngineAction {
        let Some(call) = &mut self.call else {
            // Between calls only the 503 backoff can be pending; once it
            // expires the phone retries (the amplification the counters
            // measure).
            return match self.backoff_until {
                Some(until) if now >= until => {
                    self.stats.borrow_mut().rejection_retries += 1;
                    EngineAction::Send(vec![self.start_call(now)])
                }
                Some(until) => EngineAction::Wait(until),
                None => EngineAction::Wait(SimTime::MAX),
            };
        };
        if now >= call.deadline {
            self.fail_call();
            return EngineAction::Send(vec![self.start_call(now)]);
        }
        if call.clock.is_stopped() {
            return EngineAction::Wait(call.deadline);
        }
        match call.clock.check(now) {
            TimerVerdict::Retransmit { next } => {
                self.stats.borrow_mut().phone_retransmits += 1;
                let msg = call.cur_msg.clone();
                let _ = next;
                EngineAction::Send(vec![msg])
            }
            TimerVerdict::Wait { next } => EngineAction::Wait(next.min(call.deadline)),
            TimerVerdict::TimedOut => {
                self.fail_call();
                EngineAction::Send(vec![self.start_call(now)])
            }
            TimerVerdict::Done => EngineAction::Wait(call.deadline),
        }
    }

    fn fail_call(&mut self) {
        self.call = None;
        self.stats.borrow_mut().call_failures += 1;
    }

    /// Feeds a parsed response; returns what to transmit next.
    pub fn on_response(&mut self, now: SimTime, msg: &SipMessage) -> EngineAction {
        let Some(call) = &mut self.call else {
            return EngineAction::Wait(SimTime::MAX);
        };
        let Some(code) = msg.status() else {
            // Phones only expect responses; a request here is a protocol
            // surprise we ignore (e.g. a very late retransmission).
            return EngineAction::Wait(self.next_wake());
        };
        if msg.call_id != call.call_id {
            return EngineAction::Wait(self.next_wake()); // stale call
        }
        if msg.cseq_method == Method::Cancel {
            // The proxy's 200 to our CANCEL; the 487 follows separately.
            return EngineAction::Wait(self.next_wake());
        }
        match call.phase {
            CallPhase::AwaitInvite if msg.cseq_method == Method::Invite => {
                if code.is_provisional() {
                    // Any response stops INVITE retransmissions (Timer A).
                    call.clock.stop();
                    if call.cancel_pending && !call.cancel_sent && code == StatusCode::RINGING {
                        // Abandon while ringing (RFC 3261 §9: CANCEL only
                        // after a provisional response).
                        call.cancel_sent = true;
                        let cancel = gen::cancel(
                            &self.party,
                            &self.peer,
                            &self.domain,
                            &call.call_id,
                            &call.invite_branch,
                            self.transport,
                        );
                        return EngineAction::Send(vec![bytes_from(cancel.to_bytes())]);
                    }
                    return EngineAction::Wait(self.next_wake());
                }
                if code == StatusCode::REQUEST_TERMINATED && call.cancel_sent {
                    // Our CANCEL won: the call ends cleanly, not as a
                    // failure.
                    self.call = None;
                    self.stats.borrow_mut().calls_cancelled += 1;
                    return EngineAction::Send(vec![self.start_call(now)]);
                }
                if code == StatusCode::SERVICE_UNAVAILABLE {
                    // The proxy shed us. Honor Retry-After with capped,
                    // jittered exponential backoff: the advertised wait
                    // doubles per consecutive rejection so a persistently
                    // overloaded proxy sees the retry rate fall, and the
                    // jitter spreads a shedding burst's retries out instead
                    // of waking every rejected phone on the same tick.
                    let delay = reject_backoff(
                        msg.retry_after.unwrap_or(1),
                        self.consecutive_rejects,
                        &mut self.rng,
                    );
                    self.consecutive_rejects = self.consecutive_rejects.saturating_add(1);
                    self.call = None;
                    self.backoff_until = Some(now + delay);
                    self.stats.borrow_mut().record_rejection(now);
                    return EngineAction::Wait(now + delay);
                }
                if code == StatusCode::OK {
                    let to_tag = msg.to.tag.clone().unwrap_or_else(|| "t".into());
                    let started = call.txn_start;
                    if call.disturbed {
                        call.disturbed = false;
                        self.stats.borrow_mut().recovered_calls += 1;
                    }
                    self.stats.borrow_mut().record_invite(started, now);
                    self.consecutive_rejects = 0;
                    self.ops_done += 1;
                    // Acknowledge and immediately hang up (§4.2's workload:
                    // zero hold time, equal invites and byes).
                    let ack = gen::ack(
                        &self.party,
                        &self.peer,
                        &self.domain,
                        &call.call_id,
                        &to_tag,
                        &format!("z9hG4bK{}a{}", self.party.user, self.call_no),
                        self.transport,
                    );
                    let bye = gen::bye(
                        &self.party,
                        &self.peer,
                        &self.domain,
                        &call.call_id,
                        &to_tag,
                        &format!("z9hG4bK{}b{}", self.party.user, self.call_no),
                        self.transport,
                    );
                    let bye_bytes = bytes_from(bye.to_bytes());
                    call.phase = CallPhase::AwaitByeOk;
                    call.clock = if self.reliable {
                        RetransClock::reliable(now)
                    } else {
                        RetransClock::new(now, Method::Invite)
                    };
                    call.deadline = now + TIMEOUT;
                    call.cur_msg = bye_bytes.clone();
                    call.txn_start = now;
                    return EngineAction::Send(vec![bytes_from(ack.to_bytes()), bye_bytes]);
                }
                // Final error: abandon and move on.
                self.fail_call();
                EngineAction::Send(vec![self.start_call(now)])
            }
            CallPhase::AwaitByeOk if msg.cseq_method == Method::Bye => {
                if code == StatusCode::OK {
                    let started = call.txn_start;
                    if call.disturbed {
                        call.disturbed = false;
                        self.stats.borrow_mut().recovered_calls += 1;
                    }
                    self.stats.borrow_mut().record_bye(started, now);
                    self.ops_done += 1;
                    self.call = None;
                    EngineAction::Send(vec![self.start_call(now)])
                } else if code.is_provisional() {
                    EngineAction::Wait(self.next_wake())
                } else {
                    self.fail_call();
                    EngineAction::Send(vec![self.start_call(now)])
                }
            }
            // Duplicate/late response for the other phase: ignore.
            _ => EngineAction::Wait(self.next_wake()),
        }
    }
}

/// What a callee sends back for one request: some messages immediately,
/// and possibly one (the 200 to an INVITE) after the ring delay.
#[derive(Debug, Default)]
pub struct CalleeAnswer {
    /// Sent right away.
    pub immediate: Vec<Bytes>,
    /// Sent after the ring delay (the INVITE's 200 OK).
    pub delayed_ok: Option<Bytes>,
}

/// Callee-side answering machine with an optional ring time: 180 Ringing
/// goes out immediately; the 200 OK follows after `ring` (immediately when
/// zero, the paper's workload).
pub fn callee_answer_timed(
    user: &str,
    msg: &SipMessage,
    ring: siperf_simcore::time::SimDuration,
) -> CalleeAnswer {
    let mut out = CalleeAnswer::default();
    let Some(method) = msg.method() else {
        return out;
    };
    if method == Method::Invite {
        let to_tag = format!("tt-{user}");
        let contact = msg.to.uri.clone();
        out.immediate.push(bytes_from(
            gen::response(StatusCode::RINGING, msg, Some(&to_tag), None).to_bytes(),
        ));
        let ok =
            bytes_from(gen::response(StatusCode::OK, msg, Some(&to_tag), Some(contact)).to_bytes());
        if ring.is_zero() {
            out.immediate.push(ok);
        } else {
            out.delayed_ok = Some(ok);
        }
        return out;
    }
    out.immediate = callee_answer(user, msg);
    out
}

/// Callee-side answering machine: builds the responses a phone returns for
/// an incoming request (RFC 3261 UAS happy path with zero ring time).
pub fn callee_answer(user: &str, msg: &SipMessage) -> Vec<Bytes> {
    let Some(method) = msg.method() else {
        return Vec::new(); // responses need no answer
    };
    let to_tag = format!("tt-{user}");
    match method {
        Method::Invite => {
            let contact = msg.to.uri.clone();
            vec![
                bytes_from(gen::response(StatusCode::RINGING, msg, Some(&to_tag), None).to_bytes()),
                bytes_from(
                    gen::response(StatusCode::OK, msg, Some(&to_tag), Some(contact)).to_bytes(),
                ),
            ]
        }
        Method::Bye => vec![bytes_from(
            gen::response(StatusCode::OK, msg, Some(&to_tag), None).to_bytes(),
        )],
        Method::Cancel => {
            // 200 for the CANCEL itself, then the INVITE's final answer:
            // 487 Request Terminated on the same branch and CSeq number
            // (RFC 3261 §9.2 — the CANCEL carries both by construction).
            let ok = gen::response(StatusCode::OK, msg, Some(&to_tag), None);
            let mut terminated =
                gen::response(StatusCode::REQUEST_TERMINATED, msg, Some(&to_tag), None);
            terminated.cseq_method = Method::Invite;
            vec![bytes_from(ok.to_bytes()), bytes_from(terminated.to_bytes())]
        }
        Method::Ack => Vec::new(),
        // Anything else (OPTIONS, stray REGISTER) gets a polite 200.
        _ => vec![bytes_from(
            gen::response(StatusCode::OK, msg, Some(&to_tag), None).to_bytes(),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siperf_simcore::time::SimDuration;
    use siperf_simnet::HostId;
    use siperf_sip::parse::parse_message;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn cfg(reliable: bool) -> PhoneCfg {
        PhoneCfg {
            user: "alice".into(),
            peer_user: "bob".into(),
            role: Role::Caller,
            port: 20000,
            proxy: SockAddr::new(HostId(0), 5060),
            domain: "sip.lab".into(),
            transport: if reliable { "TCP" } else { "UDP" },
            reliable,
            call_start: t(0),
            stagger: SimDuration::ZERO,
            ops_per_conn: None,
            cancel_every: None,
            ring_delay: SimDuration::ZERO,
            proc_ns: 500,
            jitter_seed: 7,
            stats: WorkloadStats::new((t(0), t(1_000_000))),
        }
    }

    fn respond(engine_msg: &Bytes, code: StatusCode) -> SipMessage {
        let req = parse_message(engine_msg).unwrap();
        gen::response(code, &req, Some("tt-bob"), None)
    }

    #[test]
    fn happy_call_flow_produces_two_ops() {
        let cfg = cfg(false);
        let mut e = CallEngine::new(&cfg, HostId(1));
        let invite = e.start_call(t(0));
        let inv = parse_message(&invite).unwrap();
        assert_eq!(inv.method(), Some(Method::Invite));

        // 100 then 180 stop retransmissions but complete nothing.
        let trying = respond(&invite, StatusCode::TRYING);
        assert!(matches!(
            e.on_response(t(1), &trying),
            EngineAction::Wait(_)
        ));
        let ringing = respond(&invite, StatusCode::RINGING);
        assert!(matches!(
            e.on_response(t(2), &ringing),
            EngineAction::Wait(_)
        ));

        // 200 → ACK + BYE.
        let ok = respond(&invite, StatusCode::OK);
        let EngineAction::Send(msgs) = e.on_response(t(3), &ok) else {
            panic!("expected sends");
        };
        assert_eq!(msgs.len(), 2);
        let ack = parse_message(&msgs[0]).unwrap();
        let bye = parse_message(&msgs[1]).unwrap();
        assert_eq!(ack.method(), Some(Method::Ack));
        assert_eq!(bye.method(), Some(Method::Bye));
        assert_eq!(ack.to.tag.as_deref(), Some("tt-bob"));

        // 200 to BYE → the next call starts.
        let bye_ok = respond(&msgs[1], StatusCode::OK);
        let EngineAction::Send(next) = e.on_response(t(4), &bye_ok) else {
            panic!("expected next call");
        };
        let next_inv = parse_message(&next[0]).unwrap();
        assert_eq!(next_inv.method(), Some(Method::Invite));
        assert_ne!(next_inv.call_id, inv.call_id);

        let stats = cfg.stats.borrow();
        assert_eq!(stats.invite_ok, 1);
        assert_eq!(stats.bye_ok, 1);
        assert_eq!(stats.ops_total, 2);
        assert_eq!(stats.call_attempts, 2);
        assert_eq!(stats.call_failures, 0);
        assert_eq!(e.ops_done, 2);
    }

    #[test]
    fn udp_engine_retransmits_until_response() {
        let cfg = cfg(false);
        let mut e = CallEngine::new(&cfg, HostId(1));
        let invite = e.start_call(t(0));
        // T1 later the clock demands a retransmission of the same INVITE.
        assert_eq!(e.next_wake(), t(500));
        let EngineAction::Send(msgs) = e.on_timer(t(500)) else {
            panic!("expected retransmission");
        };
        assert_eq!(&*msgs[0], &*invite);
        assert_eq!(cfg.stats.borrow().phone_retransmits, 1);
        // A provisional response silences it.
        let trying = respond(&invite, StatusCode::TRYING);
        e.on_response(t(600), &trying);
        assert!(matches!(e.on_timer(t(1500)), EngineAction::Wait(_)));
    }

    #[test]
    fn reliable_engine_never_retransmits() {
        let cfg = cfg(true);
        let mut e = CallEngine::new(&cfg, HostId(1));
        let _invite = e.start_call(t(0));
        match e.on_timer(t(5_000)) {
            EngineAction::Wait(next) => assert_eq!(next, t(32_000)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cfg.stats.borrow().phone_retransmits, 0);
    }

    #[test]
    fn timeout_fails_call_and_starts_next() {
        let cfg = cfg(false);
        let mut e = CallEngine::new(&cfg, HostId(1));
        let first = e.start_call(t(0));
        let EngineAction::Send(next) = e.on_timer(t(32_000)) else {
            panic!("expected new call after timeout");
        };
        let next_inv = parse_message(&next[0]).unwrap();
        assert_ne!(next_inv.call_id, parse_message(&first).unwrap().call_id);
        assert_eq!(cfg.stats.borrow().call_failures, 1);
        assert_eq!(cfg.stats.borrow().call_attempts, 2);
    }

    #[test]
    fn error_response_fails_call() {
        let cfg = cfg(false);
        let mut e = CallEngine::new(&cfg, HostId(1));
        let invite = e.start_call(t(0));
        let busy = respond(&invite, StatusCode::BUSY_HERE);
        let EngineAction::Send(_) = e.on_response(t(1), &busy) else {
            panic!("expected next call");
        };
        assert_eq!(cfg.stats.borrow().call_failures, 1);
    }

    #[test]
    fn stale_responses_are_ignored() {
        let cfg = cfg(false);
        let mut e = CallEngine::new(&cfg, HostId(1));
        let first = e.start_call(t(0));
        // Complete the first call.
        let ok = respond(&first, StatusCode::OK);
        let EngineAction::Send(msgs) = e.on_response(t(1), &ok) else {
            panic!()
        };
        let bye_ok = respond(&msgs[1], StatusCode::OK);
        let EngineAction::Send(_) = e.on_response(t(2), &bye_ok) else {
            panic!()
        };
        // A duplicate 200 for the finished call must not disturb call 2.
        let dup = respond(&first, StatusCode::OK);
        assert!(matches!(e.on_response(t(3), &dup), EngineAction::Wait(_)));
        assert_eq!(cfg.stats.borrow().invite_ok, 1);
    }

    #[test]
    fn rejected_call_backs_off_per_retry_after_then_retries() {
        let cfg = cfg(false);
        let mut e = CallEngine::new(&cfg, HostId(1));
        let invite = e.start_call(t(0));
        let req = parse_message(&invite).unwrap();

        // 503 + Retry-After: 2 → back off a jittered [1 s, 2 s], no failure
        // counted.
        let rejected = gen::service_unavailable(&req, 2);
        let EngineAction::Wait(until) = e.on_response(t(100), &rejected) else {
            panic!("expected backoff wait");
        };
        assert!(
            until >= t(1_100) && until <= t(2_100),
            "jittered backoff {until:?} outside [nominal/2, nominal]"
        );
        assert_eq!(e.next_wake(), until);
        {
            let s = cfg.stats.borrow();
            assert_eq!(s.calls_rejected, 1);
            assert_eq!(s.call_failures, 0, "a shed call is not a failure");
        }

        // Waking early keeps waiting; at the deadline the retry fires.
        assert!(matches!(e.on_timer(t(1_000)), EngineAction::Wait(_)));
        let EngineAction::Send(msgs) = e.on_timer(until) else {
            panic!("expected retry INVITE");
        };
        let retry = parse_message(&msgs[0]).unwrap();
        assert_eq!(retry.method(), Some(Method::Invite));
        assert_ne!(retry.call_id, req.call_id, "retry is a fresh call");
        let s = cfg.stats.borrow();
        assert_eq!(s.rejection_retries, 1);
        assert_eq!(s.call_attempts, 2);
    }

    #[test]
    fn repeated_rejections_double_the_backoff_up_to_the_cap() {
        let cfg = cfg(false);
        let mut e = CallEngine::new(&cfg, HostId(1));
        let mut now = t(0);
        let mut delays = Vec::new();
        for _ in 0..5 {
            let invite = e.start_call(now);
            let req = parse_message(&invite).unwrap();
            let rejected = gen::service_unavailable(&req, 1);
            let EngineAction::Wait(until) = e.on_response(now, &rejected) else {
                panic!("expected backoff");
            };
            delays.push((until - now).as_secs_f64());
            now = until;
        }
        // The nominal delay doubles 1, 2, 4, 8, 8 (capped); jitter keeps
        // each draw inside [nominal/2, nominal].
        for (delay, nominal) in delays.iter().zip([1.0, 2.0, 4.0, 8.0, 8.0]) {
            assert!(
                (nominal / 2.0..=nominal).contains(delay),
                "delay {delay} outside [{}, {nominal}]",
                nominal / 2.0
            );
        }
        assert!(
            delays[4] <= REJECT_BACKOFF_CAP.as_secs_f64(),
            "cap exceeded: {delays:?}"
        );

        // An admitted, completed call resets the exponent.
        let invite = e.start_call(now);
        let ok = respond(&invite, StatusCode::OK);
        let EngineAction::Send(_) = e.on_response(now, &ok) else {
            panic!("expected ACK+BYE");
        };
        let invite = e.start_call(now);
        let req = parse_message(&invite).unwrap();
        let rejected = gen::service_unavailable(&req, 1);
        let EngineAction::Wait(until) = e.on_response(now, &rejected) else {
            panic!("expected backoff");
        };
        let reset_delay = (until - now).as_secs_f64();
        assert!(
            (0.5..=1.0).contains(&reset_delay),
            "exponent was not reset: {reset_delay}"
        );
    }

    #[test]
    fn backoff_jitter_replays_from_the_seed_and_desynchronizes_phones() {
        let rejected_delays = |seed: u64| -> Vec<SimDuration> {
            let mut c = cfg(false);
            c.jitter_seed = seed;
            let mut e = CallEngine::new(&c, HostId(1));
            let mut now = t(0);
            let mut out = Vec::new();
            for _ in 0..4 {
                let invite = e.start_call(now);
                let req = parse_message(&invite).unwrap();
                let rejected = gen::service_unavailable(&req, 1);
                let EngineAction::Wait(until) = e.on_response(now, &rejected) else {
                    panic!("expected backoff");
                };
                out.push(until - now);
                now = until;
            }
            out
        };
        assert_eq!(
            rejected_delays(11),
            rejected_delays(11),
            "same seed must replay the same jitter"
        );
        assert_ne!(
            rejected_delays(11),
            rejected_delays(12),
            "different phones must not retry in lockstep"
        );
    }

    #[test]
    fn cancel_flow_abandons_a_ringing_call() {
        let mut c = cfg(false);
        c.cancel_every = Some(1); // cancel every call
        let mut e = CallEngine::new(&c, HostId(1));
        let invite = e.start_call(t(0));
        let inv = parse_message(&invite).unwrap();

        // 100 Trying must not trigger the CANCEL (only RINGING does).
        let trying = respond(&invite, StatusCode::TRYING);
        assert!(matches!(
            e.on_response(t(1), &trying),
            EngineAction::Wait(_)
        ));

        // 180 Ringing → the engine fires the CANCEL, same branch.
        let ringing = respond(&invite, StatusCode::RINGING);
        let EngineAction::Send(msgs) = e.on_response(t(2), &ringing) else {
            panic!("expected CANCEL");
        };
        let cancel = parse_message(&msgs[0]).unwrap();
        assert_eq!(cancel.method(), Some(Method::Cancel));
        assert_eq!(cancel.branch(), inv.branch());
        assert_eq!(cancel.call_id, inv.call_id);

        // The proxy's 200 to the CANCEL is consumed quietly.
        let cancel_ok = gen::response(StatusCode::OK, &cancel, None, None);
        assert!(matches!(
            e.on_response(t(3), &cancel_ok),
            EngineAction::Wait(_)
        ));

        // The 487 ends the call cleanly and starts the next one.
        let mut terminated = respond(&invite, StatusCode::REQUEST_TERMINATED);
        terminated.cseq_method = Method::Invite;
        let EngineAction::Send(next) = e.on_response(t(4), &terminated) else {
            panic!("expected next call");
        };
        assert_eq!(
            parse_message(&next[0]).unwrap().method(),
            Some(Method::Invite)
        );
        let stats = c.stats.borrow();
        assert_eq!(stats.calls_cancelled, 1);
        assert_eq!(stats.call_failures, 0);
        assert_eq!(stats.invite_ok, 0, "a cancelled call completes nothing");
    }

    #[test]
    fn callee_answers_cancel_with_200_and_487() {
        let alice = CallParty::new("alice", "h1:1");
        let bob = CallParty::new("bob", "h2:2");
        let cancel = gen::cancel(&alice, &bob, "d", "c1", "z9hG4bKinv", "UDP");
        let answers = callee_answer("bob", &cancel);
        assert_eq!(answers.len(), 2);
        let ok = parse_message(&answers[0]).unwrap();
        let terminated = parse_message(&answers[1]).unwrap();
        assert_eq!(ok.status(), Some(StatusCode::OK));
        assert_eq!(ok.cseq_method, Method::Cancel);
        assert_eq!(terminated.status(), Some(StatusCode::REQUEST_TERMINATED));
        assert_eq!(
            terminated.cseq_method,
            Method::Invite,
            "the 487 answers the INVITE transaction"
        );
        assert_eq!(terminated.branch(), cancel.branch());
    }

    #[test]
    fn callee_answers_invite_with_ringing_then_ok() {
        let alice = CallParty::new("alice", "h1:1");
        let bob = CallParty::new("bob", "h2:2");
        let inv = gen::invite(&alice, &bob, "d", "c1", "z9hG4bKz", "UDP");
        let answers = callee_answer("bob", &inv);
        assert_eq!(answers.len(), 2);
        let first = parse_message(&answers[0]).unwrap();
        let second = parse_message(&answers[1]).unwrap();
        assert_eq!(first.status(), Some(StatusCode::RINGING));
        assert_eq!(second.status(), Some(StatusCode::OK));
        assert_eq!(second.to.tag.as_deref(), Some("tt-bob"));

        let bye = gen::bye(&alice, &bob, "d", "c1", "tt-bob", "z9hG4bKy", "UDP");
        let answers = callee_answer("bob", &bye);
        assert_eq!(answers.len(), 1);

        let ack = gen::ack(&alice, &bob, "d", "c1", "tt-bob", "z9hG4bKx", "UDP");
        assert!(callee_answer("bob", &ack).is_empty());
    }
}
