//! Client-side measurement, as the paper's benchmark reports it (§4.2):
//! phones report their results to the manager; throughput is operations
//! (SIP transactions) per second over the measured phase only.

use std::cell::RefCell;
use std::rc::Rc;

use siperf_simcore::stats::Histogram;
use siperf_simcore::time::{SimDuration, SimTime};

/// Aggregated phone-side results, shared by all phones of a run.
#[derive(Debug)]
pub struct WorkloadStats {
    /// Measurement window: only operations completing inside it count.
    pub window: (SimTime, SimTime),
    /// Operations (invite or bye transactions) completed in the window.
    pub ops_in_window: u64,
    /// All completed operations, including warm-up and cool-down.
    pub ops_total: u64,
    /// Completed invite transactions.
    pub invite_ok: u64,
    /// Completed bye transactions.
    pub bye_ok: u64,
    /// Successful registrations.
    pub register_ok: u64,
    /// Calls started.
    pub call_attempts: u64,
    /// Call attempts started inside the window (the *offered* load the
    /// goodput-vs-offered curves plot against).
    pub attempts_in_window: u64,
    /// Calls abandoned (timeout or error response).
    pub call_failures: u64,
    /// Calls that completed but whose invite transaction exceeded the
    /// setup-delay budget (open-loop mode). They consumed full proxy
    /// capacity yet count as zero goodput, the way the overload literature
    /// scores sessions established past their deadline.
    pub calls_late: u64,
    /// Calls shed by the proxy with `503 Service Unavailable`.
    pub calls_rejected: u64,
    /// Rejections whose 503 arrived inside the window.
    pub rejected_in_window: u64,
    /// Calls re-attempted after a 503 backoff expired (the retry
    /// amplification overload control adds to the offered load).
    pub rejection_retries: u64,
    /// Calls deliberately cancelled while ringing (extension workload).
    pub calls_cancelled: u64,
    /// Requests retransmitted by phones (UDP reliability).
    pub phone_retransmits: u64,
    /// Failed connection attempts (TCP).
    pub connect_errors: u64,
    /// Deliberate reconnections (the 50/500 ops-per-connection policies).
    pub reconnects: u64,
    /// Faults injected into the run by the schedule driver.
    pub faults_injected: u64,
    /// Established connections torn down by injected RSTs.
    pub connections_reset: u64,
    /// Proxy processes killed and respawned by injected crashes.
    pub workers_respawned: u64,
    /// Calls disturbed by a transport fault (reset/EOF mid-call) that still
    /// completed after reconnect-and-redrive.
    pub recovered_calls: u64,
    /// Highest number of calls simultaneously in flight inside any one
    /// open-loop caller's pool (0 for closed-loop runs). Past saturation
    /// this is the backlog the goodput cliff grows out of.
    pub open_calls_peak: u64,
    /// Invite-transaction latency (INVITE sent → 200 received).
    pub invite_latency: Histogram,
    /// Bye-transaction latency (BYE sent → 200 received).
    pub bye_latency: Histogram,
}

impl WorkloadStats {
    /// Creates zeroed statistics for a measurement window.
    pub fn new(window: (SimTime, SimTime)) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(WorkloadStats {
            window,
            ops_in_window: 0,
            ops_total: 0,
            invite_ok: 0,
            bye_ok: 0,
            register_ok: 0,
            call_attempts: 0,
            attempts_in_window: 0,
            call_failures: 0,
            calls_late: 0,
            calls_rejected: 0,
            rejected_in_window: 0,
            rejection_retries: 0,
            calls_cancelled: 0,
            phone_retransmits: 0,
            connect_errors: 0,
            reconnects: 0,
            faults_injected: 0,
            connections_reset: 0,
            workers_respawned: 0,
            recovered_calls: 0,
            open_calls_peak: 0,
            invite_latency: Histogram::new(),
            bye_latency: Histogram::new(),
        }))
    }

    /// Records a completed invite transaction.
    pub fn record_invite(&mut self, started: SimTime, completed: SimTime) {
        self.invite_ok += 1;
        self.invite_latency.record(completed - started);
        self.record_op(completed);
    }

    /// Records a completed bye transaction.
    pub fn record_bye(&mut self, started: SimTime, completed: SimTime) {
        self.bye_ok += 1;
        self.bye_latency.record(completed - started);
        self.record_op(completed);
    }

    fn record_op(&mut self, completed: SimTime) {
        self.ops_total += 1;
        if self.in_window(completed) {
            self.ops_in_window += 1;
        }
    }

    fn in_window(&self, at: SimTime) -> bool {
        at >= self.window.0 && at < self.window.1
    }

    /// Records one started call attempt.
    pub fn record_attempt(&mut self, at: SimTime) {
        self.call_attempts += 1;
        if self.in_window(at) {
            self.attempts_in_window += 1;
        }
    }

    /// Records a call the proxy shed with a 503.
    pub fn record_rejection(&mut self, at: SimTime) {
        self.calls_rejected += 1;
        if self.in_window(at) {
            self.rejected_in_window += 1;
        }
    }

    /// Throughput over the window in operations per second. A zero-length
    /// (or never-configured) window yields 0, never NaN.
    pub fn throughput(&self) -> f64 {
        let secs = (self.window.1 - self.window.0).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops_in_window as f64 / secs
        }
    }

    /// Fraction of attempted calls that failed.
    pub fn failure_ratio(&self) -> f64 {
        if self.call_attempts == 0 {
            0.0
        } else {
            self.call_failures as f64 / self.call_attempts as f64
        }
    }

    /// Goodput: completed transactions per second over the window. Under a
    /// closed loop only successes reach `ops_in_window`, so this *is* the
    /// throughput number — the name marks the contrast with the offered
    /// rate when the proxy sheds or fails calls.
    pub fn goodput(&self) -> f64 {
        self.throughput()
    }

    /// Offered load: call attempts started per second over the window. A
    /// zero-length window yields 0, never NaN.
    pub fn offered_rate(&self) -> f64 {
        let secs = (self.window.1 - self.window.0).as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.attempts_in_window as f64 / secs
        }
    }
}

/// Convenience constructor for a window `[start, start + len)`.
pub fn window(start: SimTime, len: SimDuration) -> (SimTime, SimTime) {
    (start, start + len)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn only_window_ops_count_for_throughput() {
        let stats = WorkloadStats::new((t(2), t(4)));
        let mut s = stats.borrow_mut();
        s.record_invite(t(1), t(1)); // before window
        s.record_invite(t(2), t(3)); // inside
        s.record_bye(t(3), t(3)); // inside
        s.record_bye(t(4), t(5)); // after (window is half-open)
        assert_eq!(s.ops_total, 4);
        assert_eq!(s.ops_in_window, 2);
        assert_eq!(s.throughput(), 1.0);
        assert_eq!(s.invite_ok, 2);
        assert_eq!(s.bye_ok, 2);
    }

    #[test]
    fn latency_histograms_fill() {
        let stats = WorkloadStats::new((t(0), t(10)));
        let mut s = stats.borrow_mut();
        s.record_invite(t(1), t(1) + SimDuration::from_millis(3));
        assert_eq!(s.invite_latency.count(), 1);
        assert!(s.invite_latency.mean() >= SimDuration::from_millis(2));
    }

    #[test]
    fn zero_length_window_rates_are_zero_not_nan() {
        let stats = WorkloadStats::new((t(3), t(3)));
        let mut s = stats.borrow_mut();
        s.ops_in_window = 5;
        s.attempts_in_window = 9;
        assert_eq!(s.throughput(), 0.0);
        assert_eq!(s.offered_rate(), 0.0);
        assert_eq!(s.goodput(), 0.0);
    }

    #[test]
    fn failure_ratio() {
        let stats = WorkloadStats::new((t(0), t(1)));
        let mut s = stats.borrow_mut();
        assert_eq!(s.failure_ratio(), 0.0);
        s.call_attempts = 10;
        s.call_failures = 3;
        assert!((s.failure_ratio() - 0.3).abs() < 1e-12);
    }
}
