//! Phone process for TCP.
//!
//! TCP phones own real connections, exactly like the paper's benchmark
//! (§4.3): every phone listens on its fixed port (so the proxy can open a
//! connection *to* it when forwarding), keeps a client connection to the
//! proxy for its own requests, **never closes connections**, and — in the
//! non-persistent workloads — simply opens a fresh client connection after
//! every 50 or 500 operations, abandoning the old one for the server's idle
//! management to clean up. That abandonment is precisely what loads the
//! §5.2 idle-scan path.

use std::collections::{HashMap, VecDeque};

use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::endpoint::Bytes;
use siperf_simos::process::{Process, ResumeCtx};
use siperf_simos::syscall::{Fd, SysResult, Syscall};
use siperf_sip::framer::StreamFramer;
use siperf_sip::msg::Method;
use siperf_sip::parse::parse_message;
use siperf_sip::txn::TIMEOUT;

use crate::phone::{callee_answer_timed, CallEngine, EngineAction, PhoneCfg, Role};

const RECV_CHUNK: usize = 16 * 1024;
const CONNECT_BACKOFF: SimDuration = SimDuration::from_millis(100);
/// How many times a phone re-registers (reconnect + fresh REGISTER) before
/// giving up and exiting. Keeps a partitioned phone from panicking the whole
/// simulation while still bounding its patience.
const MAX_REG_ATTEMPTS: u32 = 5;

#[derive(Debug, Clone, Copy)]
enum Cont {
    Reg,
    Call,
    Serve,
}

#[derive(Debug, Clone, Copy)]
enum Why {
    /// First connection: register once it is up.
    Register,
    /// Reconnect (ops-per-connection policy or dead client conn); flush the
    /// pending messages once up.
    Flush,
}

enum Phase {
    Start,
    Listened,
    Staggered,
    Connecting(Why),
    Backoff(Why),
    SleepingToStart,
    Polling(Cont),
    Accepting(Cont),
    Receiving(Cont, Fd),
    Script(Cont),
}

/// A TCP phone process (caller or callee).
pub struct TcpPhone {
    cfg: PhoneCfg,
    listener: Fd,
    client: Option<Fd>,
    framers: HashMap<Fd, StreamFramer>,
    engine: Option<CallEngine>,
    reg_deadline: SimTime,
    registered: bool,
    reg_attempts: u32,
    ops_at_conn: u64,
    pending_out: Vec<Bytes>,
    pending_ready: VecDeque<Fd>,
    script: VecDeque<Syscall>,
    phase: Phase,
    /// Ringing calls whose 200 OK is due at the embedded instant.
    delayed: VecDeque<(SimTime, Fd, Bytes)>,
}

impl TcpPhone {
    /// Creates the phone process.
    pub fn new(cfg: PhoneCfg) -> Self {
        TcpPhone {
            cfg,
            listener: Fd(u32::MAX),
            client: None,
            framers: HashMap::new(),
            engine: None,
            reg_deadline: SimTime::MAX,
            registered: false,
            reg_attempts: 0,
            ops_at_conn: 0,
            pending_out: Vec::new(),
            pending_ready: VecDeque::new(),
            script: VecDeque::new(),
            phase: Phase::Start,
            delayed: VecDeque::new(),
        }
    }

    fn poll_for(&self, cont: Cont, now: SimTime) -> Syscall {
        let timeout = match cont {
            Cont::Reg => Some(self.reg_deadline.max(now) - now),
            Cont::Call => {
                let next = self.engine.as_ref().expect("caller").next_wake();
                if next == SimTime::MAX {
                    None
                } else {
                    Some(next.max(now) - now)
                }
            }
            Cont::Serve => self.delayed.front().map(|&(at, _, _)| at.max(now) - now),
        };
        let mut fds = Vec::with_capacity(2 + self.framers.len());
        fds.push(self.listener);
        fds.extend(self.framers.keys().copied());
        Syscall::Poll { fds, timeout }
    }

    fn park(&mut self, cont: Cont, now: SimTime) -> Syscall {
        while let Some(&(at, fd, _)) = self.delayed.front() {
            if at > now {
                break;
            }
            let (_, _, bytes) = self.delayed.pop_front().expect("peeked");
            if self.framers.contains_key(&fd) {
                self.script.push_back(Syscall::TcpSend { fd, data: bytes });
            }
        }
        if let Some(s) = self.script.pop_front() {
            self.phase = Phase::Script(cont);
            return s;
        }
        match self.pending_ready.pop_front() {
            Some(fd) if fd == self.listener => {
                self.phase = Phase::Accepting(cont);
                return Syscall::TcpAccept { fd: self.listener };
            }
            Some(fd) if self.framers.contains_key(&fd) => {
                self.phase = Phase::Receiving(cont, fd);
                return Syscall::TcpRecv {
                    fd,
                    max: RECV_CHUNK,
                };
            }
            Some(_) => return self.park(cont, now), // stale fd
            None => {}
        }
        self.phase = Phase::Polling(cont);
        self.poll_for(cont, now)
    }

    /// Queues caller-originated messages: straight onto the client
    /// connection, or through a reconnect when the ops-per-connection
    /// policy says so (or the connection died).
    fn send_to_proxy(&mut self, msgs: Vec<Bytes>, now: SimTime) -> Option<Syscall> {
        let ops_done = self.engine.as_ref().map(|e| e.ops_done).unwrap_or(0);
        let policy_hit = self
            .cfg
            .ops_per_conn
            .is_some_and(|k| ops_done - self.ops_at_conn >= k as u64);
        if policy_hit {
            self.cfg.stats.borrow_mut().reconnects += 1;
        }
        if policy_hit || self.client.is_none() {
            // Abandon the old connection (never closed — §4.3) and carry
            // the messages across the reconnect.
            self.pending_out.extend(msgs);
            self.phase = Phase::Connecting(Why::Flush);
            return Some(Syscall::TcpConnect { to: self.cfg.proxy });
        }
        let fd = self.client.expect("checked above");
        for m in msgs {
            self.script.push_back(Syscall::TcpSend { fd, data: m });
        }
        let _ = now;
        None
    }

    fn handle_engine_action(&mut self, action: EngineAction, now: SimTime) -> Syscall {
        if let EngineAction::Send(msgs) = action {
            if let Some(s) = self.send_to_proxy(msgs, now) {
                return s;
            }
        }
        self.park(Cont::Call, now)
    }

    fn conn_gone(&mut self, fd: Fd, now: SimTime, reset: bool) {
        let was_client = self.client == Some(fd);
        self.framers.remove(&fd);
        if was_client {
            self.client = None;
        }
        // §4.3's phones never *initiate* closes — live connections are
        // abandoned for the server to reap — but once the peer has closed,
        // the dead descriptor is released like any real client would.
        self.script.push_back(Syscall::Close { fd });
        // A *reset* on the client connection mid-call is a fault, not a
        // fatality: queue the in-flight request so the reconnect re-drives
        // it (reliable transports never retransmit on their own, so without
        // this the call would stall to Timer B). A graceful EOF is the
        // server reaping an idle connection — the transaction is intact and
        // its response arrives over a proxy-initiated connection, so
        // re-driving would only add connection churn.
        if reset && was_client && self.registered {
            if let Some(msg) = self.engine.as_mut().and_then(|e| e.redrive(now)) {
                self.pending_out.push(msg);
            }
        }
    }

    /// After losing a connection: reconnect right away when the client link
    /// is needed — for a re-drive of an in-flight call, or to finish
    /// registering. Returns the syscall that starts the reconnect.
    fn reconnect_after_loss(&mut self) -> Option<Syscall> {
        if self.client.is_some() {
            return None;
        }
        if self.registered && !self.pending_out.is_empty() {
            self.phase = Phase::Connecting(Why::Flush);
            return Some(Syscall::TcpConnect { to: self.cfg.proxy });
        }
        if !self.registered && self.reg_attempts < MAX_REG_ATTEMPTS {
            self.reg_attempts += 1;
            self.phase = Phase::Connecting(Why::Register);
            return Some(Syscall::TcpConnect { to: self.cfg.proxy });
        }
        None
    }

    /// Feeds framed messages from one connection through role logic.
    fn handle_frames(
        &mut self,
        now: SimTime,
        src: Fd,
        frames: Vec<Vec<u8>>,
        cont: Cont,
    ) -> Syscall {
        for raw in frames {
            self.script.push_back(Syscall::Compute {
                ns: self.cfg.proc_ns.max(10),
                tag: "user/phone",
            });
            let Ok(msg) = parse_message(&raw) else {
                continue;
            };
            match self.cfg.role {
                Role::Caller => {
                    if !self.registered {
                        let is_reg_ok = msg.status().is_some_and(|c| c.is_success())
                            && msg.cseq_method == Method::Register;
                        if is_reg_ok {
                            self.registered = true;
                            self.cfg.stats.borrow_mut().register_ok += 1;
                            self.phase = Phase::SleepingToStart;
                            return Syscall::SleepUntil(self.cfg.call_start);
                        }
                        continue;
                    }
                    let action = self
                        .engine
                        .as_mut()
                        .expect("caller engine")
                        .on_response(now, &msg);
                    if let EngineAction::Send(msgs) = action {
                        if let Some(s) = self.send_to_proxy(msgs, now) {
                            return s;
                        }
                    }
                }
                Role::Callee => {
                    if !self.registered {
                        let is_reg_ok = msg.status().is_some_and(|c| c.is_success())
                            && msg.cseq_method == Method::Register;
                        if is_reg_ok {
                            self.registered = true;
                            self.cfg.stats.borrow_mut().register_ok += 1;
                        }
                        continue;
                    }
                    // Answer on the connection the request arrived on
                    // (RFC 3261 §18.2.2 for stream transports).
                    let answer = callee_answer_timed(&self.cfg.user, &msg, self.cfg.ring_delay);
                    for bytes in answer.immediate {
                        self.script.push_back(Syscall::TcpSend {
                            fd: src,
                            data: bytes,
                        });
                    }
                    if let Some(ok) = answer.delayed_ok {
                        self.delayed.push_back((now + self.cfg.ring_delay, src, ok));
                    }
                }
            }
        }
        let cont = if matches!(self.cfg.role, Role::Callee) {
            Cont::Serve
        } else {
            cont
        };
        self.park(cont, now)
    }
}

impl Process for TcpPhone {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        match std::mem::replace(&mut self.phase, Phase::Start) {
            Phase::Start => {
                self.phase = Phase::Listened;
                Syscall::TcpListen {
                    port: self.cfg.port,
                    backlog: 64,
                }
            }
            Phase::Listened => {
                self.listener = last.expect_fd();
                self.engine = Some(CallEngine::new(&self.cfg, ctx.host));
                self.phase = Phase::Staggered;
                Syscall::Sleep(self.cfg.stagger)
            }
            Phase::Staggered => {
                self.phase = Phase::Connecting(Why::Register);
                Syscall::TcpConnect { to: self.cfg.proxy }
            }
            Phase::Connecting(why) => match last {
                SysResult::NewFd(fd) => {
                    self.client = Some(fd);
                    self.framers.insert(fd, StreamFramer::new());
                    self.ops_at_conn = self.engine.as_ref().map(|e| e.ops_done).unwrap_or(0);
                    match why {
                        Why::Register => {
                            self.reg_deadline = ctx.now + TIMEOUT;
                            let msg = self.cfg.register_msg(ctx.host);
                            self.script.push_back(Syscall::TcpSend { fd, data: msg });
                            self.park(Cont::Reg, ctx.now)
                        }
                        Why::Flush => {
                            for m in std::mem::take(&mut self.pending_out) {
                                self.script.push_back(Syscall::TcpSend { fd, data: m });
                            }
                            self.park(Cont::Call, ctx.now)
                        }
                    }
                }
                SysResult::Err(_) => {
                    self.cfg.stats.borrow_mut().connect_errors += 1;
                    self.phase = Phase::Backoff(why);
                    Syscall::Sleep(CONNECT_BACKOFF)
                }
                other => panic!("phone connect got {other:?}"),
            },
            Phase::Backoff(why) => {
                let _ = last;
                self.phase = Phase::Connecting(why);
                Syscall::TcpConnect { to: self.cfg.proxy }
            }
            Phase::SleepingToStart => {
                let invite = self
                    .engine
                    .as_mut()
                    .expect("caller engine")
                    .start_call(ctx.now);
                if let Some(s) = self.send_to_proxy(vec![invite], ctx.now) {
                    return s;
                }
                self.park(Cont::Call, ctx.now)
            }
            Phase::Polling(cont) => match last {
                SysResult::Ready(fds) => {
                    self.pending_ready.extend(fds);
                    self.park(cont, ctx.now)
                }
                SysResult::TimedOut => match cont {
                    Cont::Reg => {
                        // Registration timed out — a fault swallowed the
                        // REGISTER or its 200. Retry over a fresh connection
                        // a bounded number of times, then give up quietly
                        // instead of panicking the whole simulation.
                        self.reg_attempts += 1;
                        if self.reg_attempts >= MAX_REG_ATTEMPTS {
                            self.cfg.stats.borrow_mut().connect_errors += 1;
                            return Syscall::Exit;
                        }
                        if let Some(fd) = self.client.take() {
                            self.framers.remove(&fd);
                            self.script.push_back(Syscall::Close { fd });
                        }
                        self.phase = Phase::Connecting(Why::Register);
                        Syscall::TcpConnect { to: self.cfg.proxy }
                    }
                    Cont::Call => {
                        let action = self
                            .engine
                            .as_mut()
                            .expect("caller engine")
                            .on_timer(ctx.now);
                        self.handle_engine_action(action, ctx.now)
                    }
                    Cont::Serve => self.park(Cont::Serve, ctx.now),
                },
                other => panic!("phone poll got {other:?}"),
            },
            Phase::Accepting(cont) => {
                match last {
                    SysResult::Accepted { fd, .. } => {
                        self.framers.insert(fd, StreamFramer::new());
                    }
                    SysResult::Err(_) => {
                        self.cfg.stats.borrow_mut().connect_errors += 1;
                    }
                    other => panic!("phone accept got {other:?}"),
                }
                self.park(cont, ctx.now)
            }
            Phase::Receiving(cont, fd) => match last {
                SysResult::Data(bytes) => {
                    let frames = {
                        let Some(framer) = self.framers.get_mut(&fd) else {
                            return self.park(cont, ctx.now);
                        };
                        framer.push(&bytes);
                        framer.drain_messages()
                    };
                    match frames {
                        Ok(frames) => self.handle_frames(ctx.now, fd, frames, cont),
                        Err(_) => {
                            self.conn_gone(fd, ctx.now, false);
                            if let Some(s) = self.reconnect_after_loss() {
                                return s;
                            }
                            self.park(cont, ctx.now)
                        }
                    }
                }
                SysResult::Eof => {
                    self.conn_gone(fd, ctx.now, false);
                    if let Some(s) = self.reconnect_after_loss() {
                        return s;
                    }
                    self.park(cont, ctx.now)
                }
                SysResult::Err(_) => {
                    self.conn_gone(fd, ctx.now, true);
                    if let Some(s) = self.reconnect_after_loss() {
                        return s;
                    }
                    self.park(cont, ctx.now)
                }
                other => panic!("phone recv got {other:?}"),
            },
            Phase::Script(cont) => {
                if let SysResult::Err(_) = last {
                    // A send on a dead connection; the poll loop will see
                    // the EOF and clean up.
                    self.cfg.stats.borrow_mut().connect_errors += 1;
                }
                self.park(cont, ctx.now)
            }
        }
    }
}
