//! Phone process for message-oriented transports (UDP and SCTP).
//!
//! One simulated process per phone: bind the phone's fixed port, register,
//! then either drive calls ([`Role::Caller`]) or answer them
//! ([`Role::Callee`]). Responses are sent to the topmost Via's sent-by, as
//! RFC 3261 §18.2.2 prescribes for datagram transports.

use std::collections::VecDeque;

use siperf_proxy::util::parse_sim_addr;
use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::addr::SockAddr;
use siperf_simnet::endpoint::Bytes;
use siperf_simos::process::{Process, ResumeCtx};
use siperf_simos::syscall::{Fd, SysResult, Syscall};
use siperf_sip::msg::Method;
use siperf_sip::parse::parse_message;
use siperf_sip::txn::{RetransClock, TimerVerdict};

use crate::phone::{callee_answer_timed, CallEngine, EngineAction, PhoneCfg, Role};

/// Which message-oriented transport the phone speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgTransport {
    /// Plain datagrams.
    Udp,
    /// Kernel-managed associations.
    Sctp,
}

// The shared postfix is the point: each variant names which poll loop the
// process resumes into.
#[allow(clippy::enum_variant_names)]
#[derive(Debug, Clone, Copy)]
enum Cont {
    RegPoll,
    CallPoll,
    ServePoll,
}

enum Phase {
    Start,
    Bound,
    Staggered,
    Polling(Cont),
    Receiving(Cont),
    Script(Cont),
    SleepingToStart,
}

/// A UDP/SCTP phone process.
pub struct MsgPhone {
    cfg: PhoneCfg,
    mt: MsgTransport,
    fd: Fd,
    engine: Option<CallEngine>,
    reg_msg: Option<Bytes>,
    reg_clock: Option<RetransClock>,
    script: VecDeque<Syscall>,
    phase: Phase,
    /// Ringing calls whose 200 OK is due at the embedded instant.
    delayed: VecDeque<(SimTime, SockAddr, Bytes)>,
}

impl MsgPhone {
    /// Creates the phone process.
    pub fn new(cfg: PhoneCfg, mt: MsgTransport) -> Self {
        MsgPhone {
            cfg,
            mt,
            fd: Fd(u32::MAX),
            engine: None,
            reg_msg: None,
            reg_clock: None,
            script: VecDeque::new(),
            phase: Phase::Start,
            delayed: VecDeque::new(),
        }
    }

    fn send_syscall(&self, to: SockAddr, data: Bytes) -> Syscall {
        match self.mt {
            MsgTransport::Udp => Syscall::UdpSend {
                fd: self.fd,
                to,
                data,
            },
            MsgTransport::Sctp => Syscall::SctpSend {
                fd: self.fd,
                to,
                data,
            },
        }
    }

    fn recv_syscall(&self) -> Syscall {
        match self.mt {
            MsgTransport::Udp => Syscall::UdpRecv { fd: self.fd },
            MsgTransport::Sctp => Syscall::SctpRecv { fd: self.fd },
        }
    }

    fn poll_for(&self, cont: Cont, now: SimTime) -> Syscall {
        let timeout = match cont {
            Cont::RegPoll => {
                let next = self.reg_clock.as_ref().expect("registering").next_at();
                Some(next.max(now) - now)
            }
            Cont::CallPoll => {
                let next = self.engine.as_ref().expect("caller").next_wake();
                if next == SimTime::MAX {
                    None
                } else {
                    Some(next.max(now) - now)
                }
            }
            Cont::ServePoll => self.delayed.front().map(|&(at, _, _)| at.max(now) - now),
        };
        Syscall::Poll {
            fds: vec![self.fd],
            timeout,
        }
    }

    /// Queues any ring-expired 200 OKs for transmission.
    fn flush_delayed(&mut self, now: SimTime) {
        while let Some(&(at, dest, _)) = self.delayed.front() {
            if at > now {
                break;
            }
            let (_, _, bytes) = self.delayed.pop_front().expect("peeked");
            let s = self.send_syscall(dest, bytes);
            self.script.push_back(s);
        }
    }

    /// After a script drains (or a non-event), where to park.
    fn park(&mut self, cont: Cont, now: SimTime) -> Syscall {
        self.flush_delayed(now);
        if let Some(s) = self.script.pop_front() {
            self.phase = Phase::Script(cont);
            return s;
        }
        self.phase = Phase::Polling(cont);
        self.poll_for(cont, now)
    }

    fn queue_sends(&mut self, to: SockAddr, msgs: Vec<Bytes>) {
        for m in msgs {
            let s = self.send_syscall(to, m);
            self.script.push_back(s);
        }
    }

    fn handle_engine_action(&mut self, action: EngineAction, now: SimTime) -> Syscall {
        if let EngineAction::Send(msgs) = action {
            self.queue_sends(self.cfg.proxy, msgs);
        }
        self.park(Cont::CallPoll, now)
    }

    /// Handles one inbound datagram according to role/phase.
    fn handle_message(&mut self, now: SimTime, from: SockAddr, data: Bytes, cont: Cont) -> Syscall {
        self.script.push_back(Syscall::Compute {
            ns: self.cfg.proc_ns.max(10),
            tag: "user/phone",
        });
        let Ok(msg) = parse_message(&data) else {
            return self.park(cont, now);
        };
        match cont {
            Cont::RegPoll => {
                let is_reg_ok = msg.status().is_some_and(|c| c.is_success())
                    && msg.cseq_method == Method::Register;
                if is_reg_ok {
                    self.cfg.stats.borrow_mut().register_ok += 1;
                    self.reg_clock = None;
                    match self.cfg.role {
                        Role::Caller => {
                            self.phase = Phase::SleepingToStart;
                            return Syscall::SleepUntil(self.cfg.call_start);
                        }
                        Role::Callee => return self.park(Cont::ServePoll, now),
                    }
                }
                self.park(Cont::RegPoll, now)
            }
            Cont::CallPoll => {
                let action = self
                    .engine
                    .as_mut()
                    .expect("caller engine")
                    .on_response(now, &msg);
                self.handle_engine_action(action, now)
            }
            Cont::ServePoll => {
                let answer = callee_answer_timed(&self.cfg.user, &msg, self.cfg.ring_delay);
                // Respond towards the topmost Via's sent-by (the proxy).
                let dest = msg
                    .vias
                    .first()
                    .and_then(|v| parse_sim_addr(&v.sent_by))
                    .unwrap_or(from);
                self.queue_sends(dest, answer.immediate);
                if let Some(ok) = answer.delayed_ok {
                    self.delayed
                        .push_back((now + self.cfg.ring_delay, dest, ok));
                }
                self.park(Cont::ServePoll, now)
            }
        }
    }
}

impl Process for MsgPhone {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        match std::mem::replace(&mut self.phase, Phase::Start) {
            Phase::Start => {
                self.phase = Phase::Bound;
                match self.mt {
                    MsgTransport::Udp => Syscall::UdpBind {
                        port: self.cfg.port,
                    },
                    MsgTransport::Sctp => Syscall::SctpBind {
                        port: self.cfg.port,
                    },
                }
            }
            Phase::Bound => {
                self.fd = last.expect_fd();
                self.engine = Some(CallEngine::new(&self.cfg, ctx.host));
                self.reg_msg = Some(self.cfg.register_msg(ctx.host));
                self.phase = Phase::Staggered;
                Syscall::Sleep(self.cfg.stagger)
            }
            Phase::Staggered => {
                // Register (with a non-INVITE retransmission clock on UDP).
                let clock = if self.cfg.reliable {
                    RetransClock::reliable(ctx.now)
                } else {
                    RetransClock::new(ctx.now, Method::Register)
                };
                self.reg_clock = Some(clock);
                let msg = self.reg_msg.clone().expect("built at bind");
                self.queue_sends(self.cfg.proxy, vec![msg]);
                self.park(Cont::RegPoll, ctx.now)
            }
            Phase::SleepingToStart => {
                let invite = self
                    .engine
                    .as_mut()
                    .expect("caller engine")
                    .start_call(ctx.now);
                self.queue_sends(self.cfg.proxy, vec![invite]);
                self.park(Cont::CallPoll, ctx.now)
            }
            Phase::Polling(cont) => match last {
                SysResult::Ready(_) => {
                    self.phase = Phase::Receiving(cont);
                    self.recv_syscall()
                }
                SysResult::TimedOut => match cont {
                    Cont::RegPoll => {
                        let verdict = self.reg_clock.as_mut().expect("registering").check(ctx.now);
                        match verdict {
                            TimerVerdict::Retransmit { .. } => {
                                self.cfg.stats.borrow_mut().phone_retransmits += 1;
                                let msg = self.reg_msg.clone().expect("built");
                                self.queue_sends(self.cfg.proxy, vec![msg]);
                                self.park(Cont::RegPoll, ctx.now)
                            }
                            TimerVerdict::Wait { .. } => self.park(Cont::RegPoll, ctx.now),
                            TimerVerdict::TimedOut | TimerVerdict::Done => {
                                panic!(
                                    "phone {} failed to register — proxy unreachable",
                                    self.cfg.user
                                );
                            }
                        }
                    }
                    Cont::CallPoll => {
                        let action = self
                            .engine
                            .as_mut()
                            .expect("caller engine")
                            .on_timer(ctx.now);
                        self.handle_engine_action(action, ctx.now)
                    }
                    Cont::ServePoll => self.park(Cont::ServePoll, ctx.now),
                },
                other => panic!("phone poll got {other:?}"),
            },
            Phase::Receiving(cont) => match last {
                SysResult::Datagram { from, data } => {
                    self.handle_message(ctx.now, from, data, cont)
                }
                SysResult::SctpMsg { from, data } => self.handle_message(ctx.now, from, data, cont),
                other => panic!("phone recv got {other:?}"),
            },
            Phase::Script(cont) => {
                if let SysResult::Err(_) = last {
                    self.cfg.stats.borrow_mut().connect_errors += 1;
                }
                self.park(cont, ctx.now)
            }
        }
    }
}

/// A small helper so scenario code can build send/receive deadlines without
/// underflow when the wake time is already past.
pub(crate) fn _deadline_after(now: SimTime, next: SimTime) -> SimDuration {
    next.max(now) - now
}
