//! Open-loop Poisson callers — the arrival process the overload
//! literature plots goodput against.
//!
//! The closed-loop phones ([`crate::phone_msg`], [`crate::phone_tcp`])
//! keep exactly one call in flight per caller/callee pair, so a slow proxy
//! automatically slows the offered load: the sweep can drive the server
//! *to* saturation but never meaningfully past it, and the goodput-vs-
//! offered-load curves of the overload-control literature (Hong/Huang/Yan;
//! Shen/Schulzrinne) cannot be reproduced. This module adds the second
//! caller architecture those curves need: a seeded Poisson arrival process
//! per client host that originates calls at a configured aggregate rate
//! *regardless of how many are outstanding*, with per-call transaction
//! state carried in a pool instead of one phone pair per call.
//!
//! * [`OpenLoopEngine`] is the transport-independent brain: the arrival
//!   clock, the call pool (each entry owns its RFC 3261 retransmission
//!   clock and deadline), and the jittered 503 retry queue.
//! * [`OpenLoopMsgPhone`] drives it over UDP or SCTP.
//! * [`OpenLoopTcpPhone`] drives it over one persistent TCP connection.
//!
//! Callees are unchanged — the ordinary [`crate::phone::Role::Callee`]
//! phones answer whatever arrives, so all three transports serve both
//! caller architectures. Unlike the closed loop, a failed or rejected call
//! does **not** immediately start a successor: arrivals are independent of
//! outcomes, which is exactly what lets the offered rate exceed capacity
//! and the goodput cliff appear.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::rc::Rc;

use siperf_simcore::rng::SimRng;
use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::addr::SockAddr;
use siperf_simnet::endpoint::{bytes_from, Bytes};
use siperf_simos::process::{Process, ResumeCtx};
use siperf_simos::syscall::{Fd, SysResult, Syscall};
use siperf_sip::framer::StreamFramer;
use siperf_sip::gen::{self, CallParty};
use siperf_sip::msg::{Method, SipMessage, StatusCode};
use siperf_sip::parse::parse_message;
use siperf_sip::txn::{RetransClock, TimerVerdict, TIMEOUT};

use crate::phone::{reject_backoff, EngineAction};
use crate::phone_msg::MsgTransport;
use crate::stats::WorkloadStats;

/// Static description of one open-loop caller process (one per client
/// host; the scenario splits the aggregate arrival rate evenly).
#[derive(Debug, Clone)]
pub struct OpenLoopCfg {
    /// SIP user name of the caller identity (e.g. `o0`).
    pub user: String,
    /// Number of callees (`e0`..`e{n-1}`) this caller dials uniformly.
    pub callees: usize,
    /// The caller's fixed local port.
    pub port: u16,
    /// The proxy's address.
    pub proxy: SockAddr,
    /// SIP domain served by the proxy.
    pub domain: String,
    /// Via/Contact transport token ("UDP"/"TCP"/"SCTP").
    pub transport: &'static str,
    /// Whether the transport retransmits for us.
    pub reliable: bool,
    /// When the arrival process starts (registration happens before).
    pub call_start: SimTime,
    /// Per-process startup stagger before registering.
    pub stagger: SimDuration,
    /// Mean calls per second this process originates (Poisson).
    pub arrival_rate: f64,
    /// Setup-delay budget: a call whose INVITE transaction takes longer
    /// still completes (the proxy paid for it) but scores zero goodput,
    /// the way the overload literature counts sessions established past
    /// their deadline. `None` counts every completion.
    pub setup_deadline: Option<SimDuration>,
    /// CPU charged per message handled by the phone.
    pub proc_ns: u64,
    /// Seed for this caller's private RNG stream (arrival gaps, callee
    /// choice, 503 retry jitter).
    pub seed: u64,
    /// Shared result sink.
    pub stats: Rc<RefCell<WorkloadStats>>,
}

impl OpenLoopCfg {
    /// This caller as a SIP party (contact host is its `hN:port`).
    pub fn party(&self, host: siperf_simnet::HostId) -> CallParty {
        CallParty::new(self.user.clone(), format!("{}:{}", host, self.port))
    }

    /// Builds this caller's REGISTER request.
    pub fn register_msg(&self, host: siperf_simnet::HostId) -> Bytes {
        let party = self.party(host);
        let msg = gen::register(
            &party,
            &self.domain,
            1,
            &format!("z9hG4bKreg{}", self.user),
            self.transport,
        );
        bytes_from(msg.to_bytes())
    }
}

/// Phase of one pooled call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CallPhase {
    /// INVITE sent; waiting for the 200.
    AwaitInvite,
    /// ACK and BYE sent; waiting for the BYE's 200.
    AwaitByeOk,
}

/// Per-call transaction state held in the pool.
#[derive(Debug)]
struct OpenCall {
    phase: CallPhase,
    /// This call's own origination number — branch IDs derive from it, so
    /// they stay unique per call (the engine-wide counter keeps moving).
    no: u64,
    clock: RetransClock,
    deadline: SimTime,
    cur_msg: Bytes,
    txn_start: SimTime,
    /// Setup exceeded the deadline budget; finish the call but record no
    /// goodput for it.
    late: bool,
}

impl OpenCall {
    /// The instant this call next needs the engine's attention.
    fn next_event(&self) -> SimTime {
        if self.clock.is_stopped() {
            self.deadline
        } else {
            self.clock.next_at().min(self.deadline)
        }
    }
}

/// The open-loop caller's brain: Poisson arrivals, a pool of concurrent
/// calls, and the jittered 503 retry queue. Transport processes feed it
/// timer expiries and responses exactly like [`crate::phone::CallEngine`];
/// the difference is that many calls are in flight at once and new ones
/// arrive on the clock, not on completion.
#[derive(Debug)]
pub struct OpenLoopEngine {
    party: CallParty,
    domain: String,
    transport: &'static str,
    reliable: bool,
    callees: usize,
    mean_gap_ns: f64,
    setup_deadline: Option<SimDuration>,
    rng: SimRng,
    stats: Rc<RefCell<WorkloadStats>>,
    call_no: u64,
    /// Per-call state, keyed by Call-ID. A BTreeMap so that any future
    /// iteration is deterministic by construction.
    calls: BTreeMap<String, OpenCall>,
    /// Pending per-call wake-ups (lazily invalidated: an entry is stale
    /// when the call is gone or its `next_event` moved).
    wakes: BinaryHeap<Reverse<(SimTime, String)>>,
    /// Jittered retry instants from 503-shed calls.
    retries: BinaryHeap<Reverse<SimTime>>,
    /// Next Poisson arrival.
    next_arrival: SimTime,
    /// Consecutive 503s without an admitted call (backoff exponent).
    consecutive_rejects: u32,
}

impl OpenLoopEngine {
    /// Creates the engine for one open-loop caller.
    ///
    /// # Panics
    ///
    /// Panics if the arrival rate is not positive and finite or no callees
    /// exist to dial.
    pub fn new(cfg: &OpenLoopCfg, host: siperf_simnet::HostId) -> Self {
        assert!(
            cfg.arrival_rate.is_finite() && cfg.arrival_rate > 0.0,
            "open-loop arrival rate must be positive, got {}",
            cfg.arrival_rate
        );
        assert!(cfg.callees > 0, "open-loop caller needs callees to dial");
        let mut engine = OpenLoopEngine {
            party: cfg.party(host),
            domain: cfg.domain.clone(),
            transport: cfg.transport,
            reliable: cfg.reliable,
            callees: cfg.callees,
            mean_gap_ns: 1e9 / cfg.arrival_rate,
            setup_deadline: cfg.setup_deadline,
            rng: SimRng::seed_from_u64(cfg.seed),
            stats: cfg.stats.clone(),
            call_no: 0,
            calls: BTreeMap::new(),
            wakes: BinaryHeap::new(),
            retries: BinaryHeap::new(),
            next_arrival: SimTime::ZERO,
            consecutive_rejects: 0,
        };
        let first_gap = engine.draw_gap();
        engine.next_arrival = cfg.call_start + first_gap;
        engine
    }

    /// Number of calls currently in flight.
    pub fn in_flight(&self) -> usize {
        self.calls.len()
    }

    fn draw_gap(&mut self) -> SimDuration {
        SimDuration::from_nanos(self.rng.exponential(self.mean_gap_ns).max(1.0) as u64)
    }

    fn new_clock(&self, now: SimTime) -> RetransClock {
        if self.reliable {
            RetransClock::reliable(now)
        } else {
            RetransClock::new(now, Method::Invite)
        }
    }

    /// Originates one call right now, returning its INVITE.
    fn start_call(&mut self, now: SimTime) -> Bytes {
        self.call_no += 1;
        let callee = self.rng.range_usize(0..self.callees);
        let peer = CallParty::new(format!("e{callee}"), String::new());
        let call_id = format!("o{}-{}", self.call_no, self.party.user);
        let branch = format!("z9hG4bK{}i{}", self.party.user, self.call_no);
        let invite = gen::invite(
            &self.party,
            &peer,
            &self.domain,
            &call_id,
            &branch,
            self.transport,
        );
        let bytes = bytes_from(invite.to_bytes());
        let call = OpenCall {
            phase: CallPhase::AwaitInvite,
            no: self.call_no,
            clock: self.new_clock(now),
            deadline: now + TIMEOUT,
            cur_msg: bytes.clone(),
            txn_start: now,
            late: false,
        };
        self.wakes
            .push(Reverse((call.next_event(), call_id.clone())));
        self.calls.insert(call_id, call);
        let mut stats = self.stats.borrow_mut();
        stats.record_attempt(now);
        stats.open_calls_peak = stats.open_calls_peak.max(self.calls.len() as u64);
        bytes
    }

    fn fail_call(&mut self, call_id: &str) {
        self.calls.remove(call_id);
        self.stats.borrow_mut().call_failures += 1;
    }

    /// When the transport should next wake the engine if nothing arrives.
    /// Stale pool wake-ups can make this early, never late — an early wake
    /// just pops the stale entry and parks again.
    pub fn next_wake(&self) -> SimTime {
        let mut next = self.next_arrival;
        if let Some(&Reverse((at, _))) = self.wakes.peek() {
            next = next.min(at);
        }
        if let Some(&Reverse(at)) = self.retries.peek() {
            next = next.min(at);
        }
        next
    }

    /// Clock tick: fire due arrivals and 503 retries, retransmit or expire
    /// due pool calls, and report everything to transmit.
    pub fn on_timer(&mut self, now: SimTime) -> EngineAction {
        let mut out = Vec::new();

        // Due per-call events (retransmission clocks and Timer B deadlines).
        while let Some(Reverse((at, _))) = self.wakes.peek() {
            if *at > now {
                break;
            }
            let Reverse((at, call_id)) = self.wakes.pop().expect("peeked");
            let Some(call) = self.calls.get_mut(&call_id) else {
                continue; // call completed or was shed — stale entry
            };
            if call.next_event() != at {
                continue; // state moved since this wake was scheduled
            }
            if now >= call.deadline {
                self.fail_call(&call_id);
                continue;
            }
            if call.clock.is_stopped() {
                continue; // deadline is in the future, nothing to send
            }
            match call.clock.check(now) {
                TimerVerdict::Retransmit { .. } => {
                    self.stats.borrow_mut().phone_retransmits += 1;
                    out.push(call.cur_msg.clone());
                    self.wakes.push(Reverse((call.next_event(), call_id)));
                }
                TimerVerdict::Wait { .. } => {
                    self.wakes.push(Reverse((call.next_event(), call_id)));
                }
                TimerVerdict::TimedOut => self.fail_call(&call_id),
                TimerVerdict::Done => {
                    self.wakes.push(Reverse((call.deadline, call_id)));
                }
            }
        }

        // Due 503 retries (the amplification the counters measure).
        while let Some(&Reverse(at)) = self.retries.peek() {
            if at > now {
                break;
            }
            self.retries.pop();
            self.stats.borrow_mut().rejection_retries += 1;
            out.push(self.start_call(now));
        }

        // Due Poisson arrivals — unconditionally: this is the open loop.
        while self.next_arrival <= now {
            out.push(self.start_call(now));
            let gap = self.draw_gap();
            self.next_arrival += gap;
        }

        if out.is_empty() {
            EngineAction::Wait(self.next_wake())
        } else {
            EngineAction::Send(out)
        }
    }

    /// Feeds a parsed response; returns what to transmit next.
    pub fn on_response(&mut self, now: SimTime, msg: &SipMessage) -> EngineAction {
        let Some(code) = msg.status() else {
            // Callers only expect responses; ignore stray requests.
            return EngineAction::Wait(self.next_wake());
        };
        if msg.cseq_method == Method::Cancel {
            return EngineAction::Wait(self.next_wake());
        }
        let Some(call) = self.calls.get_mut(&msg.call_id) else {
            return EngineAction::Wait(self.next_wake()); // stale/duplicate
        };
        match call.phase {
            CallPhase::AwaitInvite if msg.cseq_method == Method::Invite => {
                if code.is_provisional() {
                    // Any response stops INVITE retransmissions (Timer A).
                    call.clock.stop();
                    let call_id = msg.call_id.clone();
                    let at = call.next_event();
                    self.wakes.push(Reverse((at, call_id)));
                    return EngineAction::Wait(self.next_wake());
                }
                if code == StatusCode::SERVICE_UNAVAILABLE {
                    // Shed: the user retries after a jittered, capped
                    // exponential backoff — on top of the arrivals that
                    // keep coming regardless.
                    let delay = reject_backoff(
                        msg.retry_after.unwrap_or(1),
                        self.consecutive_rejects,
                        &mut self.rng,
                    );
                    self.consecutive_rejects = self.consecutive_rejects.saturating_add(1);
                    self.calls.remove(&msg.call_id);
                    self.retries.push(Reverse(now + delay));
                    self.stats.borrow_mut().record_rejection(now);
                    return EngineAction::Wait(self.next_wake());
                }
                if code == StatusCode::OK {
                    let to_tag = msg.to.tag.clone().unwrap_or_else(|| "t".into());
                    let started = call.txn_start;
                    let call_no = call.no;
                    let peer = CallParty::new(msg.to.uri.user.clone(), String::new());
                    let ack = gen::ack(
                        &self.party,
                        &peer,
                        &self.domain,
                        &msg.call_id,
                        &to_tag,
                        &format!("z9hG4bK{}a{}", self.party.user, call_no),
                        self.transport,
                    );
                    let bye = gen::bye(
                        &self.party,
                        &peer,
                        &self.domain,
                        &msg.call_id,
                        &to_tag,
                        &format!("z9hG4bK{}b{}", self.party.user, call_no),
                        self.transport,
                    );
                    let bye_bytes = bytes_from(bye.to_bytes());
                    let late = self
                        .setup_deadline
                        .is_some_and(|budget| now - started > budget);
                    let call = self.calls.get_mut(&msg.call_id).expect("looked up");
                    call.phase = CallPhase::AwaitByeOk;
                    call.clock = if self.reliable {
                        RetransClock::reliable(now)
                    } else {
                        RetransClock::new(now, Method::Invite)
                    };
                    call.deadline = now + TIMEOUT;
                    call.cur_msg = bye_bytes.clone();
                    call.txn_start = now;
                    call.late = late;
                    let at = call.next_event();
                    self.wakes.push(Reverse((at, msg.call_id.clone())));
                    if late {
                        self.stats.borrow_mut().calls_late += 1;
                    } else {
                        self.stats.borrow_mut().record_invite(started, now);
                    }
                    self.consecutive_rejects = 0;
                    return EngineAction::Send(vec![bytes_from(ack.to_bytes()), bye_bytes]);
                }
                // Final error: the call dies; no successor (open loop).
                self.fail_call(&msg.call_id);
                EngineAction::Wait(self.next_wake())
            }
            CallPhase::AwaitByeOk if msg.cseq_method == Method::Bye => {
                if code == StatusCode::OK {
                    let started = call.txn_start;
                    let late = call.late;
                    self.calls.remove(&msg.call_id);
                    if !late {
                        self.stats.borrow_mut().record_bye(started, now);
                    }
                } else if !code.is_provisional() {
                    self.fail_call(&msg.call_id);
                }
                EngineAction::Wait(self.next_wake())
            }
            // Duplicate/late response for the other phase: ignore.
            _ => EngineAction::Wait(self.next_wake()),
        }
    }
}

// ---------------------------------------------------------------------------
// UDP / SCTP process
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum MsgCont {
    RegPoll,
    CallPoll,
}

enum MsgPhase {
    Start,
    Bound,
    Staggered,
    Polling(MsgCont),
    Receiving(MsgCont),
    Script(MsgCont),
    SleepingToStart,
}

/// An open-loop caller over a message-oriented transport (UDP or SCTP):
/// bind, register, then run the Poisson loop on one socket.
pub struct OpenLoopMsgPhone {
    cfg: OpenLoopCfg,
    mt: MsgTransport,
    fd: Fd,
    engine: Option<OpenLoopEngine>,
    reg_msg: Option<Bytes>,
    reg_clock: Option<RetransClock>,
    script: VecDeque<Syscall>,
    phase: MsgPhase,
}

impl OpenLoopMsgPhone {
    /// Creates the caller process.
    pub fn new(cfg: OpenLoopCfg, mt: MsgTransport) -> Self {
        OpenLoopMsgPhone {
            cfg,
            mt,
            fd: Fd(u32::MAX),
            engine: None,
            reg_msg: None,
            reg_clock: None,
            script: VecDeque::new(),
            phase: MsgPhase::Start,
        }
    }

    fn send_syscall(&self, data: Bytes) -> Syscall {
        match self.mt {
            MsgTransport::Udp => Syscall::UdpSend {
                fd: self.fd,
                to: self.cfg.proxy,
                data,
            },
            MsgTransport::Sctp => Syscall::SctpSend {
                fd: self.fd,
                to: self.cfg.proxy,
                data,
            },
        }
    }

    fn recv_syscall(&self) -> Syscall {
        match self.mt {
            MsgTransport::Udp => Syscall::UdpRecv { fd: self.fd },
            MsgTransport::Sctp => Syscall::SctpRecv { fd: self.fd },
        }
    }

    fn poll_for(&self, cont: MsgCont, now: SimTime) -> Syscall {
        let timeout = match cont {
            MsgCont::RegPoll => {
                let next = self.reg_clock.as_ref().expect("registering").next_at();
                Some(next.max(now) - now)
            }
            MsgCont::CallPoll => {
                let next = self.engine.as_ref().expect("engine").next_wake();
                if next == SimTime::MAX {
                    None
                } else {
                    Some(next.max(now) - now)
                }
            }
        };
        Syscall::Poll {
            fds: vec![self.fd],
            timeout,
        }
    }

    fn park(&mut self, cont: MsgCont, now: SimTime) -> Syscall {
        if let Some(s) = self.script.pop_front() {
            self.phase = MsgPhase::Script(cont);
            return s;
        }
        self.phase = MsgPhase::Polling(cont);
        self.poll_for(cont, now)
    }

    fn queue_sends(&mut self, msgs: Vec<Bytes>) {
        for m in msgs {
            let s = self.send_syscall(m);
            self.script.push_back(s);
        }
    }

    fn handle_engine_action(&mut self, action: EngineAction, now: SimTime) -> Syscall {
        if let EngineAction::Send(msgs) = action {
            self.queue_sends(msgs);
        }
        self.park(MsgCont::CallPoll, now)
    }
}

impl Process for OpenLoopMsgPhone {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        match std::mem::replace(&mut self.phase, MsgPhase::Start) {
            MsgPhase::Start => {
                self.phase = MsgPhase::Bound;
                match self.mt {
                    MsgTransport::Udp => Syscall::UdpBind {
                        port: self.cfg.port,
                    },
                    MsgTransport::Sctp => Syscall::SctpBind {
                        port: self.cfg.port,
                    },
                }
            }
            MsgPhase::Bound => {
                self.fd = last.expect_fd();
                self.engine = Some(OpenLoopEngine::new(&self.cfg, ctx.host));
                self.reg_msg = Some(self.cfg.register_msg(ctx.host));
                self.phase = MsgPhase::Staggered;
                Syscall::Sleep(self.cfg.stagger)
            }
            MsgPhase::Staggered => {
                let clock = if self.cfg.reliable {
                    RetransClock::reliable(ctx.now)
                } else {
                    RetransClock::new(ctx.now, Method::Register)
                };
                self.reg_clock = Some(clock);
                let msg = self.reg_msg.clone().expect("built at bind");
                self.queue_sends(vec![msg]);
                self.park(MsgCont::RegPoll, ctx.now)
            }
            MsgPhase::SleepingToStart => {
                // The arrival clock started ticking at `call_start`; the
                // first on_timer fires any arrival already due.
                let action = self.engine.as_mut().expect("engine").on_timer(ctx.now);
                self.handle_engine_action(action, ctx.now)
            }
            MsgPhase::Polling(cont) => match last {
                SysResult::Ready(_) => {
                    self.phase = MsgPhase::Receiving(cont);
                    self.recv_syscall()
                }
                SysResult::TimedOut => match cont {
                    MsgCont::RegPoll => {
                        let verdict = self.reg_clock.as_mut().expect("registering").check(ctx.now);
                        match verdict {
                            TimerVerdict::Retransmit { .. } => {
                                self.cfg.stats.borrow_mut().phone_retransmits += 1;
                                let msg = self.reg_msg.clone().expect("built");
                                self.queue_sends(vec![msg]);
                                self.park(MsgCont::RegPoll, ctx.now)
                            }
                            TimerVerdict::Wait { .. } => self.park(MsgCont::RegPoll, ctx.now),
                            TimerVerdict::TimedOut | TimerVerdict::Done => {
                                panic!(
                                    "open-loop caller {} failed to register — proxy unreachable",
                                    self.cfg.user
                                );
                            }
                        }
                    }
                    MsgCont::CallPoll => {
                        let action = self.engine.as_mut().expect("engine").on_timer(ctx.now);
                        self.handle_engine_action(action, ctx.now)
                    }
                },
                other => panic!("open-loop phone poll got {other:?}"),
            },
            MsgPhase::Receiving(cont) => {
                let (_from, data) = match last {
                    SysResult::Datagram { from, data } => (from, data),
                    SysResult::SctpMsg { from, data } => (from, data),
                    other => panic!("open-loop phone recv got {other:?}"),
                };
                self.script.push_back(Syscall::Compute {
                    ns: self.cfg.proc_ns.max(10),
                    tag: "user/phone",
                });
                let Ok(msg) = parse_message(&data) else {
                    return self.park(cont, ctx.now);
                };
                match cont {
                    MsgCont::RegPoll => {
                        let is_reg_ok = msg.status().is_some_and(|c| c.is_success())
                            && msg.cseq_method == Method::Register;
                        if is_reg_ok {
                            self.cfg.stats.borrow_mut().register_ok += 1;
                            self.reg_clock = None;
                            self.phase = MsgPhase::SleepingToStart;
                            return Syscall::SleepUntil(self.cfg.call_start);
                        }
                        self.park(MsgCont::RegPoll, ctx.now)
                    }
                    MsgCont::CallPoll => {
                        let action = self
                            .engine
                            .as_mut()
                            .expect("engine")
                            .on_response(ctx.now, &msg);
                        self.handle_engine_action(action, ctx.now)
                    }
                }
            }
            MsgPhase::Script(cont) => {
                if let SysResult::Err(_) = last {
                    self.cfg.stats.borrow_mut().connect_errors += 1;
                }
                self.park(cont, ctx.now)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TCP process
// ---------------------------------------------------------------------------

const RECV_CHUNK: usize = 16 * 1024;
const CONNECT_BACKOFF: SimDuration = SimDuration::from_millis(100);
const MAX_REG_ATTEMPTS: u32 = 5;

#[derive(Debug, Clone, Copy)]
enum TcpCont {
    Reg,
    Call,
}

#[derive(Debug, Clone, Copy)]
enum Why {
    Register,
    Flush,
}

enum TcpPhase {
    Start,
    Listened,
    Staggered,
    Connecting(Why),
    Backoff(Why),
    SleepingToStart,
    Polling(TcpCont),
    Accepting(TcpCont),
    Receiving(TcpCont, Fd),
    Script(TcpCont),
}

/// An open-loop caller over TCP: one persistent client connection carries
/// every pooled call's requests (plus a listener so the proxy can open a
/// connection back if it needs to). If the connection dies, the caller
/// reconnects on the next send; responses lost with it surface as call
/// timeouts, as they would for a real user agent.
pub struct OpenLoopTcpPhone {
    cfg: OpenLoopCfg,
    listener: Fd,
    client: Option<Fd>,
    framers: HashMap<Fd, StreamFramer>,
    engine: Option<OpenLoopEngine>,
    reg_deadline: SimTime,
    registered: bool,
    reg_attempts: u32,
    pending_out: Vec<Bytes>,
    pending_ready: VecDeque<Fd>,
    script: VecDeque<Syscall>,
    phase: TcpPhase,
}

impl OpenLoopTcpPhone {
    /// Creates the caller process.
    pub fn new(cfg: OpenLoopCfg) -> Self {
        OpenLoopTcpPhone {
            cfg,
            listener: Fd(u32::MAX),
            client: None,
            framers: HashMap::new(),
            engine: None,
            reg_deadline: SimTime::MAX,
            registered: false,
            reg_attempts: 0,
            pending_out: Vec::new(),
            pending_ready: VecDeque::new(),
            script: VecDeque::new(),
            phase: TcpPhase::Start,
        }
    }

    fn poll_for(&self, cont: TcpCont, now: SimTime) -> Syscall {
        let timeout = match cont {
            TcpCont::Reg => Some(self.reg_deadline.max(now) - now),
            TcpCont::Call => {
                let next = self.engine.as_ref().expect("engine").next_wake();
                if next == SimTime::MAX {
                    None
                } else {
                    Some(next.max(now) - now)
                }
            }
        };
        let mut fds = Vec::with_capacity(2 + self.framers.len());
        fds.push(self.listener);
        fds.extend(self.framers.keys().copied());
        Syscall::Poll { fds, timeout }
    }

    fn park(&mut self, cont: TcpCont, now: SimTime) -> Syscall {
        if let Some(s) = self.script.pop_front() {
            self.phase = TcpPhase::Script(cont);
            return s;
        }
        match self.pending_ready.pop_front() {
            Some(fd) if fd == self.listener => {
                self.phase = TcpPhase::Accepting(cont);
                return Syscall::TcpAccept { fd: self.listener };
            }
            Some(fd) if self.framers.contains_key(&fd) => {
                self.phase = TcpPhase::Receiving(cont, fd);
                return Syscall::TcpRecv {
                    fd,
                    max: RECV_CHUNK,
                };
            }
            Some(_) => return self.park(cont, now), // stale fd
            None => {}
        }
        self.phase = TcpPhase::Polling(cont);
        self.poll_for(cont, now)
    }

    /// Queues caller-originated messages, reconnecting first if the client
    /// connection is gone.
    fn send_to_proxy(&mut self, msgs: Vec<Bytes>) -> Option<Syscall> {
        if self.client.is_none() {
            self.pending_out.extend(msgs);
            self.phase = TcpPhase::Connecting(Why::Flush);
            return Some(Syscall::TcpConnect { to: self.cfg.proxy });
        }
        let fd = self.client.expect("checked above");
        for m in msgs {
            self.script.push_back(Syscall::TcpSend { fd, data: m });
        }
        None
    }

    fn handle_engine_action(&mut self, action: EngineAction, now: SimTime) -> Syscall {
        if let EngineAction::Send(msgs) = action {
            if let Some(s) = self.send_to_proxy(msgs) {
                return s;
            }
        }
        self.park(TcpCont::Call, now)
    }

    fn conn_gone(&mut self, fd: Fd) {
        if self.client == Some(fd) {
            self.client = None;
        }
        self.framers.remove(&fd);
        self.script.push_back(Syscall::Close { fd });
    }

    fn handle_frames(&mut self, now: SimTime, frames: Vec<Vec<u8>>, cont: TcpCont) -> Syscall {
        for raw in frames {
            self.script.push_back(Syscall::Compute {
                ns: self.cfg.proc_ns.max(10),
                tag: "user/phone",
            });
            let Ok(msg) = parse_message(&raw) else {
                continue;
            };
            if !self.registered {
                let is_reg_ok = msg.status().is_some_and(|c| c.is_success())
                    && msg.cseq_method == Method::Register;
                if is_reg_ok {
                    self.registered = true;
                    self.cfg.stats.borrow_mut().register_ok += 1;
                    self.phase = TcpPhase::SleepingToStart;
                    return Syscall::SleepUntil(self.cfg.call_start);
                }
                continue;
            }
            let action = self.engine.as_mut().expect("engine").on_response(now, &msg);
            if let EngineAction::Send(msgs) = action {
                if let Some(s) = self.send_to_proxy(msgs) {
                    return s;
                }
            }
        }
        self.park(cont, now)
    }
}

impl Process for OpenLoopTcpPhone {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        match std::mem::replace(&mut self.phase, TcpPhase::Start) {
            TcpPhase::Start => {
                self.phase = TcpPhase::Listened;
                Syscall::TcpListen {
                    port: self.cfg.port,
                    backlog: 64,
                }
            }
            TcpPhase::Listened => {
                self.listener = last.expect_fd();
                self.engine = Some(OpenLoopEngine::new(&self.cfg, ctx.host));
                self.phase = TcpPhase::Staggered;
                Syscall::Sleep(self.cfg.stagger)
            }
            TcpPhase::Staggered => {
                self.phase = TcpPhase::Connecting(Why::Register);
                Syscall::TcpConnect { to: self.cfg.proxy }
            }
            TcpPhase::Connecting(why) => match last {
                SysResult::NewFd(fd) => {
                    self.client = Some(fd);
                    self.framers.insert(fd, StreamFramer::new());
                    match why {
                        Why::Register => {
                            self.reg_deadline = ctx.now + TIMEOUT;
                            let msg = self.cfg.register_msg(ctx.host);
                            self.script.push_back(Syscall::TcpSend { fd, data: msg });
                            self.park(TcpCont::Reg, ctx.now)
                        }
                        Why::Flush => {
                            for m in std::mem::take(&mut self.pending_out) {
                                self.script.push_back(Syscall::TcpSend { fd, data: m });
                            }
                            self.park(TcpCont::Call, ctx.now)
                        }
                    }
                }
                SysResult::Err(_) => {
                    self.cfg.stats.borrow_mut().connect_errors += 1;
                    self.phase = TcpPhase::Backoff(why);
                    Syscall::Sleep(CONNECT_BACKOFF)
                }
                other => panic!("open-loop phone connect got {other:?}"),
            },
            TcpPhase::Backoff(why) => {
                let _ = last;
                self.phase = TcpPhase::Connecting(why);
                Syscall::TcpConnect { to: self.cfg.proxy }
            }
            TcpPhase::SleepingToStart => {
                let action = self.engine.as_mut().expect("engine").on_timer(ctx.now);
                self.handle_engine_action(action, ctx.now)
            }
            TcpPhase::Polling(cont) => match last {
                SysResult::Ready(fds) => {
                    self.pending_ready.extend(fds);
                    self.park(cont, ctx.now)
                }
                SysResult::TimedOut => match cont {
                    TcpCont::Reg => {
                        self.reg_attempts += 1;
                        if self.reg_attempts >= MAX_REG_ATTEMPTS {
                            self.cfg.stats.borrow_mut().connect_errors += 1;
                            return Syscall::Exit;
                        }
                        if let Some(fd) = self.client.take() {
                            self.framers.remove(&fd);
                            self.script.push_back(Syscall::Close { fd });
                        }
                        self.phase = TcpPhase::Connecting(Why::Register);
                        Syscall::TcpConnect { to: self.cfg.proxy }
                    }
                    TcpCont::Call => {
                        let action = self.engine.as_mut().expect("engine").on_timer(ctx.now);
                        self.handle_engine_action(action, ctx.now)
                    }
                },
                other => panic!("open-loop phone poll got {other:?}"),
            },
            TcpPhase::Accepting(cont) => {
                match last {
                    SysResult::Accepted { fd, .. } => {
                        self.framers.insert(fd, StreamFramer::new());
                    }
                    SysResult::Err(_) => {
                        self.cfg.stats.borrow_mut().connect_errors += 1;
                    }
                    other => panic!("open-loop phone accept got {other:?}"),
                }
                self.park(cont, ctx.now)
            }
            TcpPhase::Receiving(cont, fd) => match last {
                SysResult::Data(bytes) => {
                    let frames = {
                        let Some(framer) = self.framers.get_mut(&fd) else {
                            return self.park(cont, ctx.now);
                        };
                        framer.push(&bytes);
                        framer.drain_messages()
                    };
                    match frames {
                        Ok(frames) => self.handle_frames(ctx.now, frames, cont),
                        Err(_) => {
                            self.conn_gone(fd);
                            self.park(cont, ctx.now)
                        }
                    }
                }
                SysResult::Eof | SysResult::Err(_) => {
                    self.conn_gone(fd);
                    self.park(cont, ctx.now)
                }
                other => panic!("open-loop phone recv got {other:?}"),
            },
            TcpPhase::Script(cont) => {
                if let SysResult::Err(_) = last {
                    self.cfg.stats.borrow_mut().connect_errors += 1;
                }
                self.park(cont, ctx.now)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siperf_simnet::HostId;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn cfg(seed: u64, rate: f64) -> OpenLoopCfg {
        OpenLoopCfg {
            user: "o0".into(),
            callees: 4,
            port: 30_000,
            proxy: SockAddr::new(HostId(0), 5060),
            domain: "sip.lab".into(),
            transport: "UDP",
            reliable: false,
            call_start: t(0),
            stagger: SimDuration::ZERO,
            arrival_rate: rate,
            setup_deadline: None,
            proc_ns: 500,
            seed,
            stats: WorkloadStats::new((t(0), t(1_000_000))),
        }
    }

    /// Steps the engine's timer through `until`, collecting the instant of
    /// every *new* call the arrival process originates (retransmissions of
    /// outstanding calls are not arrivals).
    fn collect_arrivals(engine: &mut OpenLoopEngine, until: SimTime) -> Vec<SimTime> {
        let mut arrivals = Vec::new();
        loop {
            let at = engine.next_wake();
            if at > until {
                break;
            }
            let before = engine.call_no;
            engine.on_timer(at);
            for _ in before..engine.call_no {
                arrivals.push(at);
            }
        }
        arrivals
    }

    #[test]
    fn poisson_arrivals_replay_from_seed_and_match_the_rate() {
        let c = cfg(9, 1000.0);
        let mut a = OpenLoopEngine::new(&c, HostId(1));
        let mut b = OpenLoopEngine::new(&c, HostId(1));
        let ta = collect_arrivals(&mut a, t(2_000));
        let tb = collect_arrivals(&mut b, t(2_000));
        assert_eq!(ta, tb, "same seed must produce the same arrivals");
        // 1000 calls/s over 2 s → ~2000 arrivals; Poisson σ ≈ 45.
        assert!(
            (1700..2300).contains(&ta.len()),
            "arrival count {} far from the configured rate",
            ta.len()
        );

        let mut c2 = cfg(10, 1000.0);
        c2.stats = WorkloadStats::new((t(0), t(1_000_000)));
        let mut d = OpenLoopEngine::new(&c2, HostId(1));
        assert_ne!(
            collect_arrivals(&mut d, t(2_000)),
            ta,
            "different seeds must diverge"
        );
    }

    #[test]
    fn arrivals_continue_while_calls_are_outstanding() {
        let c = cfg(3, 100.0);
        let mut e = OpenLoopEngine::new(&c, HostId(1));
        // Never answer anything: a closed loop would stall after call one,
        // the open loop keeps originating.
        let arrivals = collect_arrivals(&mut e, t(1_000));
        assert!(
            arrivals.len() >= 70,
            "open loop stalled with calls outstanding: {} arrivals",
            arrivals.len()
        );
        assert!(e.in_flight() >= 70, "pool should hold unanswered calls");
        assert_eq!(c.stats.borrow().call_attempts, arrivals.len() as u64);
        assert!(c.stats.borrow().open_calls_peak >= 70);
    }

    #[test]
    fn pool_completes_concurrent_calls_independently() {
        let c = cfg(4, 10_000.0);
        let mut e = OpenLoopEngine::new(&c, HostId(1));
        // Originate two calls.
        let mut invites = Vec::new();
        while invites.len() < 2 {
            let at = e.next_wake();
            if let EngineAction::Send(msgs) = e.on_timer(at) {
                invites.extend(msgs);
            }
        }
        assert_eq!(e.in_flight(), 2);
        let inv0 = parse_message(&invites[0]).unwrap();
        let inv1 = parse_message(&invites[1]).unwrap();
        assert_ne!(inv0.call_id, inv1.call_id);

        // Answer the *second* call first: the pool must route by Call-ID.
        let ok1 = gen::response(StatusCode::OK, &inv1, Some("tt"), None);
        let EngineAction::Send(msgs) = e.on_response(t(50), &ok1) else {
            panic!("expected ACK+BYE for call 2");
        };
        let bye1 = parse_message(&msgs[1]).unwrap();
        assert_eq!(bye1.method(), Some(Method::Bye));
        assert_eq!(bye1.call_id, inv1.call_id);
        assert_eq!(e.in_flight(), 2, "call 1 still awaits its INVITE 200");

        let bye_ok1 = gen::response(StatusCode::OK, &bye1, Some("tt"), None);
        e.on_response(t(60), &bye_ok1);
        assert_eq!(e.in_flight(), 1, "call 2 completed and left the pool");

        let ok0 = gen::response(StatusCode::OK, &inv0, Some("tt"), None);
        let EngineAction::Send(msgs) = e.on_response(t(70), &ok0) else {
            panic!("expected ACK+BYE for call 1");
        };
        let bye0 = parse_message(&msgs[1]).unwrap();
        let bye_ok0 = gen::response(StatusCode::OK, &bye0, Some("tt"), None);
        e.on_response(t(80), &bye_ok0);
        assert_eq!(e.in_flight(), 0);
        let s = c.stats.borrow();
        assert_eq!(s.invite_ok, 2);
        assert_eq!(s.bye_ok, 2);
        assert_eq!(s.call_failures, 0);
    }

    #[test]
    fn rejected_call_leaves_pool_and_retries_with_jitter() {
        let c = cfg(5, 10_000.0);
        let mut e = OpenLoopEngine::new(&c, HostId(1));
        let mut invite = None;
        while invite.is_none() {
            let at = e.next_wake();
            if let EngineAction::Send(mut msgs) = e.on_timer(at) {
                invite = msgs.pop();
            }
        }
        let req = parse_message(&invite.unwrap()).unwrap();
        let now = t(10);
        let rejected = gen::service_unavailable(&req, 2);
        e.on_response(now, &rejected);
        assert_eq!(e.in_flight(), 0, "shed call must leave the pool");
        let retry_at = e
            .retries
            .peek()
            .map(|&Reverse(at)| at)
            .expect("retry queued");
        let delay = retry_at - now;
        assert!(
            delay >= SimDuration::from_secs(1) && delay <= SimDuration::from_secs(2),
            "jittered retry delay {delay:?} outside [Retry-After/2, Retry-After]"
        );
        let s = c.stats.borrow();
        assert_eq!(s.calls_rejected, 1);
        assert_eq!(s.call_failures, 0, "a shed call is not a failure");
    }

    #[test]
    fn call_past_the_setup_deadline_completes_but_scores_no_goodput() {
        let mut c = cfg(8, 10_000.0);
        c.setup_deadline = Some(SimDuration::from_millis(200));
        let mut e = OpenLoopEngine::new(&c, HostId(1));
        let mut invites = Vec::new();
        while invites.len() < 2 {
            let at = e.next_wake();
            if let EngineAction::Send(msgs) = e.on_timer(at) {
                invites.extend(msgs);
            }
        }
        let fast = parse_message(&invites[0]).unwrap();
        let slow = parse_message(&invites[1]).unwrap();

        // First call answered within budget, second well past it.
        let ok = gen::response(StatusCode::OK, &fast, Some("tt"), None);
        let EngineAction::Send(msgs) = e.on_response(t(100), &ok) else {
            panic!("expected ACK+BYE");
        };
        let bye = parse_message(&msgs[1]).unwrap();
        e.on_response(
            t(110),
            &gen::response(StatusCode::OK, &bye, Some("tt"), None),
        );

        let ok = gen::response(StatusCode::OK, &slow, Some("tt"), None);
        let EngineAction::Send(msgs) = e.on_response(t(900), &ok) else {
            panic!("late call still finishes its ACK+BYE");
        };
        let bye = parse_message(&msgs[1]).unwrap();
        e.on_response(
            t(910),
            &gen::response(StatusCode::OK, &bye, Some("tt"), None),
        );

        assert_eq!(e.in_flight(), 0, "both calls ran to completion");
        let s = c.stats.borrow();
        assert_eq!(s.calls_late, 1);
        assert_eq!(s.invite_ok, 1, "only the in-budget call counts");
        assert_eq!(s.bye_ok, 1);
        assert_eq!(s.call_failures, 0, "late is not failed");
    }

    #[test]
    fn unanswered_call_times_out_as_failure() {
        let c = cfg(6, 1.0);
        let mut e = OpenLoopEngine::new(&c, HostId(1));
        let mut invite = None;
        let mut at = SimTime::ZERO;
        while invite.is_none() {
            at = e.next_wake();
            if let EngineAction::Send(mut msgs) = e.on_timer(at) {
                invite = msgs.pop();
            }
        }
        // Stop retransmissions with a provisional, then run past Timer B.
        // Later arrivals keep originating meanwhile — that's the open loop —
        // so assert on the timed-out call specifically.
        let req = parse_message(&invite.unwrap()).unwrap();
        let trying = gen::response(StatusCode::TRYING, &req, None, None);
        e.on_response(at, &trying);
        e.on_timer(at + TIMEOUT + SimDuration::from_millis(1));
        assert!(
            !e.calls.contains_key(&req.call_id),
            "timed-out call must leave the pool"
        );
        assert_eq!(c.stats.borrow().call_failures, 1);
    }
}
