//! The paper's experiment grid, as reusable scenario constructors.
//!
//! Figures 3–5 share one grid: {100, 500, 1000} clients × {TCP 50 ops/conn,
//! TCP 500 ops/conn, TCP persistent, UDP}, differing only in which fixes
//! the proxy runs with. The ablations (§4.3) vary supervisor priority, idle
//! timeout, and worker count on top of the same machinery.

use siperf_proxy::config::{ProxyConfig, Transport};

use crate::scenario::{Scenario, ScenarioBuilder};

/// Which proxy build a figure evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureConfig {
    /// Figure 3: stock OpenSER.
    Baseline,
    /// Figure 4: baseline + per-worker fd cache (§5.2).
    FdCache,
    /// Figure 5: fd cache + priority-queue idle management (§5.3).
    FdCachePlusPq,
}

impl FigureConfig {
    /// Applies this figure's fixes to a TCP proxy config.
    pub fn apply(self, cfg: ProxyConfig) -> ProxyConfig {
        match self {
            FigureConfig::Baseline => cfg,
            FigureConfig::FdCache => cfg.with_fd_cache(),
            FigureConfig::FdCachePlusPq => cfg.with_fd_cache().with_priority_queue(),
        }
    }

    /// Figure label in the paper.
    pub fn label(self) -> &'static str {
        match self {
            FigureConfig::Baseline => "Figure 3 (baseline)",
            FigureConfig::FdCache => "Figure 4 (fd cache)",
            FigureConfig::FdCachePlusPq => "Figure 5 (fd cache + priority queue)",
        }
    }
}

/// One bar of a figure: the transport workload dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportWorkload {
    /// TCP, reconnect every 50 operations.
    Tcp50,
    /// TCP, reconnect every 500 operations.
    Tcp500,
    /// TCP, connections persist for the whole run.
    TcpPersistent,
    /// UDP.
    Udp,
}

impl TransportWorkload {
    /// All four bars, in the figures' order.
    pub const ALL: [TransportWorkload; 4] = [
        TransportWorkload::Tcp50,
        TransportWorkload::Tcp500,
        TransportWorkload::TcpPersistent,
        TransportWorkload::Udp,
    ];

    /// Legend label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            TransportWorkload::Tcp50 => "TCP 50 ops/conn",
            TransportWorkload::Tcp500 => "TCP 500 ops/conn",
            TransportWorkload::TcpPersistent => "TCP persistent conn",
            TransportWorkload::Udp => "UDP",
        }
    }

    /// The transport this workload runs on.
    pub fn transport(self) -> Transport {
        match self {
            TransportWorkload::Udp => Transport::Udp,
            _ => Transport::Tcp,
        }
    }

    /// The reconnect policy, if any.
    pub fn ops_per_conn(self) -> Option<u32> {
        match self {
            TransportWorkload::Tcp50 => Some(50),
            TransportWorkload::Tcp500 => Some(500),
            _ => None,
        }
    }
}

/// The client counts on the figures' x-axes.
pub const CLIENT_COUNTS: [usize; 3] = [100, 500, 1000];

/// Builds one cell of a figure (a single bar).
pub fn figure_cell(
    fig: FigureConfig,
    workload: TransportWorkload,
    clients: usize,
    measure_secs: u64,
    seed: u64,
) -> Scenario {
    let transport = workload.transport();
    let mut proxy = ProxyConfig::paper(transport);
    if transport == Transport::Tcp {
        proxy = fig.apply(proxy);
    }
    let mut builder = Scenario::builder(format!(
        "{} / {} clients / {}",
        workload.label(),
        clients,
        match fig {
            FigureConfig::Baseline => "baseline",
            FigureConfig::FdCache => "fd-cache",
            FigureConfig::FdCachePlusPq => "fd-cache+pq",
        }
    ))
    .proxy(proxy)
    .client_pairs(clients)
    .measure_secs(measure_secs)
    .seed(seed);
    if let Some(k) = workload.ops_per_conn() {
        builder = builder.ops_per_conn(k);
    }
    builder.build()
}

/// A scaled-down figure cell for tests: fewer clients, shorter window.
pub fn quick_cell(
    fig: FigureConfig,
    workload: TransportWorkload,
    clients: usize,
    seed: u64,
) -> Scenario {
    let mut s = figure_cell(fig, workload, clients, 4, seed);
    s.measure_from = siperf_simcore::time::SimDuration::from_millis(1500);
    s.call_start = siperf_simcore::time::SimDuration::from_millis(800);
    s
}

/// §4.3 supervisor-priority ablation: the same TCP persistent run with the
/// supervisor at normal priority vs. nice −20.
pub fn supervisor_priority_cell(elevated: bool, clients: usize, measure_secs: u64) -> Scenario {
    let mut proxy = ProxyConfig::paper(Transport::Tcp);
    if !elevated {
        proxy.supervisor_nice = siperf_simos::process::Nice::NORMAL;
    }
    Scenario::builder(format!(
        "supervisor nice {} / {clients} clients",
        if elevated { "-20" } else { "0" }
    ))
    .proxy(proxy)
    .client_pairs(clients)
    .measure_secs(measure_secs)
    .build()
}

/// §4.3 idle-timeout ablation: 10 s (the paper's choice) vs. the 120 s
/// default that starved the server, under the churny 50-ops workload.
pub fn idle_timeout_cell(timeout_secs: u64, clients: usize, measure_secs: u64) -> Scenario {
    let mut proxy = ProxyConfig::paper(Transport::Tcp);
    proxy.idle_timeout = siperf_simcore::time::SimDuration::from_secs(timeout_secs);
    Scenario::builder(format!("idle timeout {timeout_secs}s / {clients} clients"))
        .proxy(proxy)
        .client_pairs(clients)
        .ops_per_conn(50)
        .measure_secs(measure_secs)
        .build()
}

/// §4.3 worker-count selection sweep.
pub fn worker_count_cell(
    transport: Transport,
    workers: usize,
    clients: usize,
    measure_secs: u64,
) -> Scenario {
    let mut proxy = ProxyConfig::paper(transport);
    proxy.workers = Some(workers);
    Scenario::builder(format!(
        "{} workers={workers} / {clients} clients",
        transport.token()
    ))
    .proxy(proxy)
    .client_pairs(clients)
    .measure_secs(measure_secs)
    .build()
}

/// §6 extension: the multi-threaded architecture.
pub fn threaded_cell(workload: TransportWorkload, clients: usize, measure_secs: u64) -> Scenario {
    let mut proxy = ProxyConfig::paper(Transport::Tcp)
        .with_fd_cache()
        .with_priority_queue();
    proxy.arch = siperf_proxy::config::Arch::MultiThread;
    let mut builder = Scenario::builder(format!(
        "threaded / {} / {clients} clients",
        workload.label()
    ))
    .proxy(proxy)
    .client_pairs(clients)
    .measure_secs(measure_secs);
    if let Some(k) = workload.ops_per_conn() {
        builder = builder.ops_per_conn(k);
    }
    builder.build()
}

/// §6 extension: SCTP.
pub fn sctp_cell(clients: usize, measure_secs: u64) -> Scenario {
    Scenario::builder(format!("SCTP / {clients} clients"))
        .transport(Transport::Sctp)
        .client_pairs(clients)
        .measure_secs(measure_secs)
        .build()
}

/// Returns a builder preconfigured like `figure_cell` for further tuning.
pub fn figure_builder(
    fig: FigureConfig,
    workload: TransportWorkload,
    clients: usize,
) -> ScenarioBuilder {
    let transport = workload.transport();
    let mut proxy = ProxyConfig::paper(transport);
    if transport == Transport::Tcp {
        proxy = fig.apply(proxy);
    }
    let mut b = Scenario::builder("custom")
        .proxy(proxy)
        .client_pairs(clients);
    if let Some(k) = workload.ops_per_conn() {
        b = b.ops_per_conn(k);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use siperf_proxy::config::IdleStrategy;

    #[test]
    fn figure_configs_apply_the_right_fixes() {
        let base = ProxyConfig::paper(Transport::Tcp);
        let f3 = FigureConfig::Baseline.apply(base.clone());
        assert!(!f3.fd_cache);
        assert_eq!(f3.idle_strategy, IdleStrategy::LinearScan);
        let f4 = FigureConfig::FdCache.apply(base.clone());
        assert!(f4.fd_cache);
        assert_eq!(f4.idle_strategy, IdleStrategy::LinearScan);
        let f5 = FigureConfig::FdCachePlusPq.apply(base);
        assert!(f5.fd_cache);
        assert_eq!(f5.idle_strategy, IdleStrategy::PriorityQueue);
    }

    #[test]
    fn workloads_map_to_transport_and_policy() {
        assert_eq!(TransportWorkload::Udp.transport(), Transport::Udp);
        assert_eq!(TransportWorkload::Tcp50.ops_per_conn(), Some(50));
        assert_eq!(TransportWorkload::Tcp500.ops_per_conn(), Some(500));
        assert_eq!(TransportWorkload::TcpPersistent.ops_per_conn(), None);
        assert_eq!(TransportWorkload::ALL.len(), 4);
    }

    #[test]
    fn cells_carry_the_grid_parameters() {
        let s = figure_cell(FigureConfig::FdCache, TransportWorkload::Tcp50, 500, 8, 1);
        assert_eq!(s.pairs, 500);
        assert_eq!(s.ops_per_conn, Some(50));
        assert!(s.proxy.fd_cache);
        assert_eq!(s.proxy.worker_count(), 32);
        let udp = figure_cell(FigureConfig::Baseline, TransportWorkload::Udp, 100, 8, 1);
        assert_eq!(udp.proxy.worker_count(), 24);
        assert_eq!(udp.ops_per_conn, None);
    }

    #[test]
    fn ablation_cells() {
        let normal = supervisor_priority_cell(false, 500, 4);
        assert_eq!(
            normal.proxy.supervisor_nice,
            siperf_simos::process::Nice::NORMAL
        );
        let long = idle_timeout_cell(120, 500, 4);
        assert_eq!(
            long.proxy.idle_timeout,
            siperf_simcore::time::SimDuration::from_secs(120)
        );
        assert_eq!(long.ops_per_conn, Some(50));
        let sweep = worker_count_cell(Transport::Udp, 8, 100, 4);
        assert_eq!(sweep.proxy.worker_count(), 8);
    }

    #[test]
    fn extension_cells() {
        let thr = threaded_cell(TransportWorkload::TcpPersistent, 100, 4);
        assert_eq!(thr.proxy.arch, siperf_proxy::config::Arch::MultiThread);
        let sctp = sctp_cell(100, 4);
        assert_eq!(sctp.proxy.transport, Transport::Sctp);
    }
}
