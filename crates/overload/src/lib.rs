//! Overload control for the simulated SIP proxy.
//!
//! The source paper stops at the saturation knee; this crate extends the
//! study into the regime beyond it, where offered load exceeds capacity and
//! transport choice matters most: UDP clients retransmit into the overload
//! (amplifying it and collapsing goodput) while TCP queues requests into
//! unbounded latency. Overload control — shedding excess work early with
//! `503 Service Unavailable` + `Retry-After` — is what keeps goodput near
//! the saturation peak past the knee (Shen & Schulzrinne, *On TCP-based SIP
//! Server Overload Control*; Hong, Huang & Yan, *A Comparative Study of SIP
//! Overload Control Algorithms*).
//!
//! The proxy consults a pluggable [`OverloadPolicy`] before creating each
//! INVITE transaction — only new calls are shed; in-progress work (BYE,
//! ACK, CANCEL, REGISTER) always passes, because completing accepted calls
//! is precisely the goodput the policy defends. Three policies ship:
//!
//! * [`NoControl`] — the baseline: admit everything, let the transports
//!   fight it out (the paper's world).
//! * [`QueueThreshold`] — local admission control: reject while the
//!   pending-work level (live transactions plus reported worker-queue
//!   backlog) sits above a high-water mark, with hysteresis so shedding
//!   stops only once the level drains below a low-water mark.
//! * [`WindowFeedback`] — receiver-driven per-upstream windows in the
//!   spirit of Shen & Schulzrinne: each upstream host gets a dynamic
//!   window of in-flight INVITEs, grown additively on timely completions
//!   and halved when the proxy is congested or a transaction times out.
//!
//! Policies are plain deterministic state machines (no clocks or RNG of
//! their own) so simulations stay bit-reproducible.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;

use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::{HostId, SockAddr};

/// The load signals a proxy hands the policy at each admission decision.
///
/// Both are receiver-side observations, matching what a real OpenSER-style
/// proxy can see locally: the transaction table it owns and the message
/// queues its workers drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadSignals {
    /// Transactions created but not yet completed (final response or
    /// timeout still outstanding) — the proxy's pending-request queue.
    pub active_txns: usize,
    /// Messages sitting in worker input queues, as last reported by the
    /// per-transport workers (zero on transports whose queueing happens in
    /// the kernel socket buffer, where the application cannot see it).
    pub worker_backlog: usize,
}

impl LoadSignals {
    /// The combined pending-work level policies threshold on.
    pub fn level(&self) -> usize {
        self.active_txns + self.worker_backlog
    }
}

/// A policy's decision on one would-be transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Create the transaction and forward the request.
    Admit,
    /// Shed the request with `503 Service Unavailable`, advertising this
    /// many seconds in `Retry-After`.
    Reject {
        /// Seconds the upstream should back off before retrying.
        retry_after: u32,
    },
}

impl Verdict {
    /// True for [`Verdict::Admit`].
    pub fn is_admit(self) -> bool {
        matches!(self, Verdict::Admit)
    }
}

/// An admission-control policy consulted before each INVITE transaction.
///
/// The proxy's contract: [`admit`](OverloadPolicy::admit) is called once
/// per admission-eligible request, and every `Admit` is followed by exactly
/// one [`on_complete`](OverloadPolicy::on_complete) or
/// [`on_timeout`](OverloadPolicy::on_timeout) for the same upstream once
/// the transaction ends. Policies must be deterministic: no wall clocks,
/// no randomness.
pub trait OverloadPolicy: fmt::Debug {
    /// Short token naming the policy (for reports and plot labels).
    fn name(&self) -> &'static str;

    /// Decides whether to admit a new INVITE transaction from `src` given
    /// the current load.
    fn admit(&mut self, now: SimTime, src: SockAddr, load: &LoadSignals) -> Verdict;

    /// Observes an admitted transaction completing with a final response
    /// after `latency`.
    fn on_complete(&mut self, now: SimTime, src: SockAddr, latency: SimDuration) {
        let _ = (now, src, latency);
    }

    /// Observes an admitted transaction dying of a transaction timeout —
    /// the strongest congestion signal the receiver has.
    fn on_timeout(&mut self, now: SimTime, src: SockAddr) {
        let _ = (now, src);
    }
}

/// The baseline: admit everything, shed nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoControl;

impl OverloadPolicy for NoControl {
    fn name(&self) -> &'static str {
        "none"
    }

    fn admit(&mut self, _now: SimTime, _src: SockAddr, _load: &LoadSignals) -> Verdict {
        Verdict::Admit
    }
}

/// Local admission control with hysteresis: shed while the pending-work
/// level is above `high`, stop once it drains to `low`.
///
/// The hysteresis band prevents flapping: without it the policy would
/// oscillate between admit and reject on every transaction boundary right
/// at the threshold, chopping goodput into bursts.
#[derive(Debug, Clone)]
pub struct QueueThreshold {
    /// Pending-work level at which shedding starts.
    pub high: usize,
    /// Pending-work level at which shedding stops (must be ≤ `high`).
    pub low: usize,
    /// Seconds advertised in `Retry-After` on rejections.
    pub retry_after: u32,
    shedding: bool,
}

impl QueueThreshold {
    /// Builds the policy; `low` must not exceed `high`.
    pub fn new(high: usize, low: usize, retry_after: u32) -> Self {
        assert!(low <= high, "hysteresis low-water above high-water");
        QueueThreshold {
            high,
            low,
            retry_after,
            shedding: false,
        }
    }

    /// True while the policy is currently rejecting.
    pub fn is_shedding(&self) -> bool {
        self.shedding
    }
}

impl OverloadPolicy for QueueThreshold {
    fn name(&self) -> &'static str {
        "queue-threshold"
    }

    fn admit(&mut self, _now: SimTime, _src: SockAddr, load: &LoadSignals) -> Verdict {
        let level = load.level();
        if self.shedding {
            if level <= self.low {
                self.shedding = false;
            }
        } else if level >= self.high {
            self.shedding = true;
        }
        if self.shedding {
            Verdict::Reject {
                retry_after: self.retry_after,
            }
        } else {
            Verdict::Admit
        }
    }
}

/// Receiver-driven dynamic windows per upstream host, in the spirit of
/// Shen & Schulzrinne's TCP-based SIP overload control.
///
/// Each upstream host may have at most `⌊window⌋` INVITE transactions in
/// flight. The window adapts AIMD-style from receiver-side signals only:
///
/// * additive increase (`+increase`) on every completion whose latency is
///   at or under `target_latency` — the proxy is keeping up;
/// * multiplicative decrease (halving) when an admission arrives while the
///   proxy's pending level exceeds `pressure`, at most once per
///   `decrease_hold` so one burst cannot collapse the window to the floor;
/// * halving on every transaction timeout, the unambiguous overload signal.
#[derive(Debug, Clone)]
pub struct WindowFeedback {
    /// Window each new upstream starts with.
    pub initial_window: f64,
    /// Floor the window never shrinks below (keeps probing for recovery).
    pub min_window: f64,
    /// Ceiling the window never grows above.
    pub max_window: f64,
    /// Pending-work level treated as congestion pressure.
    pub pressure: usize,
    /// Completion latency considered healthy.
    pub target_latency: SimDuration,
    /// Additive window increase per healthy completion.
    pub increase: f64,
    /// Minimum spacing between multiplicative decreases of one window.
    pub decrease_hold: SimDuration,
    /// Seconds advertised in `Retry-After` on rejections.
    pub retry_after: u32,
    state: HashMap<HostId, UpstreamWindow>,
}

#[derive(Debug, Clone, Copy)]
struct UpstreamWindow {
    window: f64,
    outstanding: u32,
    last_decrease: Option<SimTime>,
}

impl WindowFeedback {
    /// Builds the policy with the given congestion-pressure level and
    /// `Retry-After`; tuning knobs start at sensible defaults
    /// (window 8 in [1, 64], 500 ms healthy latency, +0.5 per completion,
    /// one decrease per 200 ms).
    pub fn new(pressure: usize, retry_after: u32) -> Self {
        WindowFeedback {
            initial_window: 8.0,
            min_window: 1.0,
            max_window: 64.0,
            pressure,
            target_latency: SimDuration::from_millis(500),
            increase: 0.5,
            decrease_hold: SimDuration::from_millis(200),
            retry_after,
            state: HashMap::new(),
        }
    }

    /// The current window for an upstream host, if it has one.
    pub fn window_of(&self, host: HostId) -> Option<f64> {
        self.state.get(&host).map(|s| s.window)
    }

    fn entry(&mut self, host: HostId) -> &mut UpstreamWindow {
        let init = self.initial_window;
        self.state.entry(host).or_insert(UpstreamWindow {
            window: init,
            outstanding: 0,
            last_decrease: None,
        })
    }

    fn decrease(&mut self, now: SimTime, host: HostId) {
        let hold = self.decrease_hold;
        let floor = self.min_window;
        let s = self.entry(host);
        let held = s.last_decrease.is_some_and(|at| now < at + hold);
        if !held {
            s.window = (s.window * 0.5).max(floor);
            s.last_decrease = Some(now);
        }
    }
}

impl OverloadPolicy for WindowFeedback {
    fn name(&self) -> &'static str {
        "window-feedback"
    }

    fn admit(&mut self, now: SimTime, src: SockAddr, load: &LoadSignals) -> Verdict {
        if load.level() > self.pressure {
            self.decrease(now, src.host);
        }
        let s = self.entry(src.host);
        if (s.outstanding as f64) < s.window.floor() {
            s.outstanding += 1;
            Verdict::Admit
        } else {
            Verdict::Reject {
                retry_after: self.retry_after,
            }
        }
    }

    fn on_complete(&mut self, _now: SimTime, src: SockAddr, latency: SimDuration) {
        let target = self.target_latency;
        let (incr, cap) = (self.increase, self.max_window);
        let s = self.entry(src.host);
        s.outstanding = s.outstanding.saturating_sub(1);
        if latency <= target {
            s.window = (s.window + incr).min(cap);
        }
    }

    fn on_timeout(&mut self, now: SimTime, src: SockAddr) {
        self.entry(src.host).outstanding = self.entry(src.host).outstanding.saturating_sub(1);
        // A timeout is unambiguous congestion: always shrink, ignoring the
        // decrease hold.
        let floor = self.min_window;
        let s = self.entry(src.host);
        s.window = (s.window * 0.5).max(floor);
        s.last_decrease = Some(now);
    }
}

/// Cloneable, comparable policy selection that travels inside scenario and
/// proxy configuration; [`build`](OverloadConfig::build) turns it into the
/// live policy object the proxy core owns.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum OverloadConfig {
    /// Admit everything (the paper's baseline behaviour).
    #[default]
    NoControl,
    /// [`QueueThreshold`] with the given waters and `Retry-After`.
    QueueThreshold {
        /// Pending-work level at which shedding starts.
        high: usize,
        /// Pending-work level at which shedding stops.
        low: usize,
        /// Seconds advertised in `Retry-After`.
        retry_after: u32,
    },
    /// [`WindowFeedback`] with the given congestion pressure and
    /// `Retry-After`; other knobs take that policy's defaults.
    WindowFeedback {
        /// Pending-work level treated as congestion pressure.
        pressure: usize,
        /// Seconds advertised in `Retry-After`.
        retry_after: u32,
    },
}

impl OverloadConfig {
    /// A `QueueThreshold` tuned for the paper-scale proxy: start shedding
    /// at 600 pending INVITEs, resume at 400, and ask upstreams to back
    /// off for one second — short enough that closed-loop phones probe
    /// again within the measurement window.
    pub fn queue_threshold_default() -> Self {
        OverloadConfig::QueueThreshold {
            high: 600,
            low: 400,
            retry_after: 1,
        }
    }

    /// A `WindowFeedback` tuned for the paper-scale proxy, treating the
    /// same 600 pending INVITEs as congestion pressure.
    pub fn window_feedback_default() -> Self {
        OverloadConfig::WindowFeedback {
            pressure: 600,
            retry_after: 1,
        }
    }

    /// Short token naming the policy (for reports and plot labels).
    pub fn token(&self) -> &'static str {
        match self {
            OverloadConfig::NoControl => "none",
            OverloadConfig::QueueThreshold { .. } => "queue-threshold",
            OverloadConfig::WindowFeedback { .. } => "window-feedback",
        }
    }

    /// True unless this is [`OverloadConfig::NoControl`].
    pub fn is_active(&self) -> bool {
        !matches!(self, OverloadConfig::NoControl)
    }

    /// Instantiates the live policy object.
    pub fn build(&self) -> Box<dyn OverloadPolicy> {
        match *self {
            OverloadConfig::NoControl => Box::new(NoControl),
            OverloadConfig::QueueThreshold {
                high,
                low,
                retry_after,
            } => Box::new(QueueThreshold::new(high, low, retry_after)),
            OverloadConfig::WindowFeedback {
                pressure,
                retry_after,
            } => Box::new(WindowFeedback::new(pressure, retry_after)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn src(host: u32) -> SockAddr {
        SockAddr::new(HostId(host), 20_000)
    }

    fn load(active: usize) -> LoadSignals {
        LoadSignals {
            active_txns: active,
            worker_backlog: 0,
        }
    }

    #[test]
    fn no_control_admits_under_any_load() {
        let mut p = NoControl;
        assert!(p.admit(t(0), src(1), &load(usize::MAX / 2)).is_admit());
    }

    #[test]
    fn queue_threshold_sheds_with_hysteresis() {
        let mut p = QueueThreshold::new(100, 60, 2);
        assert!(p.admit(t(0), src(1), &load(99)).is_admit());
        // Crossing high starts shedding.
        assert_eq!(
            p.admit(t(1), src(1), &load(100)),
            Verdict::Reject { retry_after: 2 }
        );
        assert!(p.is_shedding());
        // Draining below high but above low keeps shedding (hysteresis).
        assert!(!p.admit(t(2), src(1), &load(80)).is_admit());
        // Only at/below low does admission resume.
        assert!(p.admit(t(3), src(1), &load(60)).is_admit());
        assert!(!p.is_shedding());
        assert!(p.admit(t(4), src(1), &load(99)).is_admit());
    }

    #[test]
    fn queue_threshold_counts_worker_backlog() {
        let mut p = QueueThreshold::new(100, 60, 2);
        let l = LoadSignals {
            active_txns: 50,
            worker_backlog: 50,
        };
        assert!(!p.admit(t(0), src(1), &l).is_admit());
    }

    #[test]
    fn window_feedback_caps_outstanding_per_upstream() {
        let mut p = WindowFeedback::new(1000, 1);
        p.initial_window = 2.0;
        // Two in flight admitted, the third rejected.
        assert!(p.admit(t(0), src(1), &load(0)).is_admit());
        assert!(p.admit(t(1), src(1), &load(0)).is_admit());
        assert_eq!(
            p.admit(t(2), src(1), &load(0)),
            Verdict::Reject { retry_after: 1 }
        );
        // A different upstream host has its own window.
        assert!(p.admit(t(3), src(2), &load(0)).is_admit());
        // Completion frees a slot.
        p.on_complete(t(4), src(1), SimDuration::from_millis(10));
        assert!(p.admit(t(5), src(1), &load(0)).is_admit());
    }

    #[test]
    fn window_feedback_grows_on_healthy_completions_only() {
        let mut p = WindowFeedback::new(1000, 1);
        p.initial_window = 2.0;
        assert!(p.admit(t(0), src(1), &load(0)).is_admit());
        p.on_complete(t(1), src(1), SimDuration::from_millis(100));
        assert!(p.window_of(HostId(1)).unwrap() > 2.0, "healthy grows");
        let grown = p.window_of(HostId(1)).unwrap();
        assert!(p.admit(t(2), src(1), &load(0)).is_admit());
        p.on_complete(t(3), src(1), SimDuration::from_secs(4));
        assert_eq!(p.window_of(HostId(1)), Some(grown), "slow does not grow");
    }

    #[test]
    fn window_feedback_halves_under_pressure_with_hold() {
        let mut p = WindowFeedback::new(100, 1);
        p.initial_window = 8.0;
        // Pressure halves the window once…
        let _ = p.admit(t(0), src(1), &load(500));
        assert_eq!(p.window_of(HostId(1)), Some(4.0));
        // …but not again within the hold…
        let _ = p.admit(t(50), src(1), &load(500));
        assert_eq!(p.window_of(HostId(1)), Some(4.0));
        // …and again after it.
        let _ = p.admit(t(300), src(1), &load(500));
        assert_eq!(p.window_of(HostId(1)), Some(2.0));
    }

    #[test]
    fn window_feedback_timeout_halves_to_floor() {
        let mut p = WindowFeedback::new(1000, 1);
        p.initial_window = 2.0;
        assert!(p.admit(t(0), src(1), &load(0)).is_admit());
        for i in 0..6 {
            p.on_timeout(t(1 + i), src(1));
        }
        assert_eq!(p.window_of(HostId(1)), Some(1.0), "floored at min");
        // Window of 1 still admits one at a time: the probe that detects
        // recovery.
        assert!(p.admit(t(10), src(1), &load(0)).is_admit());
        assert!(!p.admit(t(11), src(1), &load(0)).is_admit());
    }

    #[test]
    fn config_builds_matching_policies() {
        assert_eq!(OverloadConfig::default().token(), "none");
        assert!(!OverloadConfig::NoControl.is_active());
        let qt = OverloadConfig::queue_threshold_default();
        assert!(qt.is_active());
        assert_eq!(qt.build().name(), "queue-threshold");
        let wf = OverloadConfig::window_feedback_default();
        assert_eq!(wf.build().name(), "window-feedback");
        assert_eq!(OverloadConfig::NoControl.build().name(), "none");
    }
}
