//! Property tests on the connection table: the §5.3 priority-queue
//! strategy must agree with the baseline linear scan about *what is idle*
//! under arbitrary schedules of activity — only the cost differs.

use proptest::prelude::*;

use siperf_proxy::conn::{ConnId, ConnTable};
use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::{HostId, SockAddr};

const TIMEOUT: SimDuration = SimDuration::from_secs(10);

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

#[derive(Debug, Clone)]
enum Op {
    Insert(u16),
    Touch(usize),
    Return(usize),
    Hunt,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..500).prop_map(Op::Insert),
        (0usize..64).prop_map(Op::Touch),
        (0usize..64).prop_map(Op::Return),
        Just(Op::Hunt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Both strategies report identical idle sets at every hunt point, and
    /// identical surviving tables at the end, across arbitrary interleaved
    /// inserts, touches, returns, and hunts with advancing time.
    #[test]
    fn strategies_agree_under_arbitrary_schedules(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        step_ms in 100u64..8_000,
    ) {
        let mut lin = ConnTable::new();
        let mut pq = ConnTable::with_priority_queue();
        let mut ids: Vec<ConnId> = Vec::new();
        let mut now_ms = 0u64;

        for op in ops {
            now_ms += step_ms;
            let now = t(now_ms);
            match op {
                Op::Insert(port) => {
                    let peer = SockAddr::new(HostId(1), 10_000 + port);
                    let a = lin.insert(now, peer, 0, TIMEOUT);
                    let b = pq.insert(now, peer, 0, TIMEOUT);
                    prop_assert_eq!(a, b);
                    ids.push(a);
                }
                Op::Touch(k) if !ids.is_empty() => {
                    let id = ids[k % ids.len()];
                    lin.touch(id, now, TIMEOUT);
                    pq.touch(id, now, TIMEOUT);
                }
                Op::Return(k) if !ids.is_empty() => {
                    let id = ids[k % ids.len()];
                    if lin.get(id).is_some() && lin.get(id).unwrap().returned_at.is_none() {
                        lin.mark_returned(id, now, TIMEOUT);
                        pq.mark_returned(id, now, TIMEOUT);
                    }
                }
                Op::Hunt => {
                    let a = lin.hunt_linear(now, TIMEOUT);
                    let b = pq.hunt_priority_queue(now, TIMEOUT);
                    let mut a_ret = a.to_return.clone();
                    let mut b_ret = b.to_return.clone();
                    a_ret.sort();
                    b_ret.sort();
                    prop_assert_eq!(&a_ret, &b_ret, "to_return diverged at t={}ms", now_ms);
                    let mut a_des = a.to_destroy.clone();
                    let mut b_des = b.to_destroy.clone();
                    a_des.sort();
                    b_des.sort();
                    prop_assert_eq!(&a_des, &b_des, "to_destroy diverged at t={}ms", now_ms);
                    // Act on the hunt the way the proxy does, so state
                    // evolves identically: returns are marked, destroys
                    // removed.
                    for id in a_ret {
                        lin.mark_returned(id, now, TIMEOUT);
                        pq.mark_returned(id, now, TIMEOUT);
                    }
                    for id in a_des {
                        lin.remove(id);
                        pq.remove(id);
                    }
                }
                _ => {}
            }
        }
        prop_assert_eq!(lin.len(), pq.len());
    }

    /// The PQ hunt never examines more entries over a run than (touches +
    /// inserts + returns): each heap entry is popped at most once, so the
    /// total work is bounded by the activity, not by table size × hunts —
    /// the asymptotic claim behind the §5.3 fix.
    #[test]
    fn pq_work_is_bounded_by_activity(
        inserts in 1usize..80,
        hunts in 1usize..40,
    ) {
        let mut pq = ConnTable::with_priority_queue();
        for i in 0..inserts {
            pq.insert(t(0), SockAddr::new(HostId(1), 10_000 + i as u16), 0, TIMEOUT);
        }
        let mut examined = 0;
        for h in 0..hunts {
            // Hunt long after everything expired, repeatedly.
            let hunt = pq.hunt_priority_queue(t(20_000 + h as u64), TIMEOUT);
            examined += hunt.examined;
            for id in hunt.to_destroy {
                pq.remove(id);
            }
        }
        // Each of `inserts` entries pops at most twice (once expiring as
        // owned → reinserted, once as returned/destroyed after action) —
        // with no action taken on `to_return`, reinsertion caps at one
        // extra pop per hunt round for still-owned entries.
        prop_assert!(
            examined <= (inserts * (hunts + 1)) as u64,
            "examined {examined} with {inserts} inserts, {hunts} hunts"
        );
    }
}

/// A deterministic regression: returned connections are invisible to
/// `lookup_peer` (the route must fall back to reconnecting), but still
/// present in the table until destroyed.
#[test]
fn returned_connections_are_not_routes() {
    let mut tab = ConnTable::new();
    let peer = SockAddr::new(HostId(2), 30_000);
    let id = tab.insert(t(0), peer, 0, TIMEOUT);
    assert_eq!(tab.lookup_peer(peer), Some(id));
    tab.mark_returned(id, t(1), TIMEOUT);
    assert_eq!(
        tab.lookup_peer(peer),
        None,
        "half-closed conns are unusable"
    );
    assert!(
        tab.get(id).is_some(),
        "object lives until the supervisor reaps it"
    );
    // A fresh connection to the same peer becomes the route again.
    let id2 = tab.insert(t(2), peer, 1, TIMEOUT);
    assert_eq!(tab.lookup_peer(peer), Some(id2));
}
