//! End-to-end stateful-proxy behaviour against a *silent* callee: once the
//! proxy answers 100 Trying it owns reliability (§2) — it must retransmit
//! the forwarded INVITE on Timer A and eventually answer the caller with
//! 408 Request Timeout when Timer B expires.

use std::cell::RefCell;
use std::rc::Rc;

use siperf_proxy::config::{ProxyConfig, Transport};
use siperf_proxy::spawn::spawn_proxy;
use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::NetConfig;
use siperf_simos::cost::CostModel;
use siperf_simos::kernel::Kernel;
use siperf_simos::process::{Nice, ResumeCtx};
use siperf_simos::syscall::{Fd, SysResult, Syscall};
use siperf_sip::gen::{self, CallParty};
use siperf_sip::msg::StatusCode;
use siperf_sip::parse::parse_message;

fn secs(s: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(s)
}

#[test]
fn proxy_retransmits_and_times_out_towards_a_silent_callee() {
    let mut kernel = Kernel::new(NetConfig::lan(), CostModel::opteron_2006(), 3);
    let server = kernel.add_host(4);
    let clients = kernel.add_host(4);
    let mut cfg = ProxyConfig::paper(Transport::Udp);
    cfg.workers = Some(2);
    let proxy = spawn_proxy(&mut kernel, server, cfg);
    let proxy_addr = proxy.addr;

    // The ghost: registers, then receives everything and answers nothing.
    let ghost_rx = Rc::new(RefCell::new(0u32));
    let grx = ghost_rx.clone();
    let mut gstep = 0;
    let mut gfd = Fd(0);
    kernel.spawn(
        clients,
        Nice::NORMAL,
        "ghost",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            gstep += 1;
            match gstep {
                1 => Syscall::UdpBind { port: 20_002 },
                2 => {
                    gfd = last.expect_fd();
                    let ghost = CallParty::new("ghost", "h1:20002");
                    Syscall::UdpSend {
                        fd: gfd,
                        to: proxy_addr,
                        data: siperf_simnet::bytes_from(
                            gen::register(&ghost, "sip.lab", 1, "z9hG4bKgreg", "UDP").to_bytes(),
                        ),
                    }
                }
                _ => {
                    if matches!(last, SysResult::Datagram { .. }) && gstep > 3 {
                        *grx.borrow_mut() += 1;
                    }
                    Syscall::UdpRecv { fd: gfd }
                }
            }
        }),
    );

    // The caller: registers, sends one INVITE to the ghost, and records
    // every response it gets back.
    let responses = Rc::new(RefCell::new(Vec::<StatusCode>::new()));
    let resp = responses.clone();
    let mut cstep = 0;
    let mut cfd = Fd(0);
    kernel.spawn(
        clients,
        Nice::NORMAL,
        "caller",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            cstep += 1;
            let alice = CallParty::new("alice", "h1:20001");
            let ghost = CallParty::new("ghost", "h1:20002");
            match cstep {
                1 => Syscall::UdpBind { port: 20_001 },
                2 => {
                    cfd = last.expect_fd();
                    Syscall::UdpSend {
                        fd: cfd,
                        to: proxy_addr,
                        data: siperf_simnet::bytes_from(
                            gen::register(&alice, "sip.lab", 1, "z9hG4bKareg", "UDP").to_bytes(),
                        ),
                    }
                }
                3 => Syscall::UdpRecv { fd: cfd }, // 200 to REGISTER
                4 => Syscall::UdpSend {
                    fd: cfd,
                    to: proxy_addr,
                    data: siperf_simnet::bytes_from(
                        gen::invite(&alice, &ghost, "sip.lab", "dead-call", "z9hG4bKdead", "UDP")
                            .to_bytes(),
                    ),
                },
                _ => {
                    if let SysResult::Datagram { data, .. } = &last {
                        if let Ok(msg) = parse_message(data) {
                            if let Some(code) = msg.status() {
                                if msg.call_id == "dead-call" {
                                    resp.borrow_mut().push(code);
                                }
                            }
                        }
                    }
                    Syscall::UdpRecv { fd: cfd }
                }
            }
        }),
    );

    // Well past Timer B (64 × T1 = 32 s).
    kernel.run_until(secs(40));

    let stats = proxy.stats();
    // The ghost received the INVITE and its Timer-A retransmissions
    // (doubling from 500 ms: about 6 before the 32 s deadline).
    assert!(
        *ghost_rx.borrow() >= 4,
        "ghost saw {} deliveries; proxy must retransmit",
        ghost_rx.borrow()
    );
    assert!(stats.retransmits_sent >= 4, "{stats:?}");
    assert_eq!(stats.txn_timeouts, 1, "{stats:?}");
    // The caller got the 100 Trying immediately and the 408 at Timer B.
    let responses = responses.borrow();
    assert_eq!(
        responses.first(),
        Some(&StatusCode::TRYING),
        "{responses:?}"
    );
    assert_eq!(
        responses.last(),
        Some(&StatusCode::REQUEST_TIMEOUT),
        "{responses:?}"
    );
    // The transaction was reaped after its linger.
    assert_eq!(proxy.core.borrow().live_txns(), 0);
}

#[test]
fn unregistered_destination_gets_404_end_to_end() {
    let mut kernel = Kernel::new(NetConfig::lan(), CostModel::opteron_2006(), 3);
    let server = kernel.add_host(4);
    let clients = kernel.add_host(4);
    let mut cfg = ProxyConfig::paper(Transport::Udp);
    cfg.workers = Some(2);
    let proxy = spawn_proxy(&mut kernel, server, cfg);
    let proxy_addr = proxy.addr;

    let got = Rc::new(RefCell::new(None::<StatusCode>));
    let g = got.clone();
    let mut step = 0;
    let mut fd = Fd(0);
    kernel.spawn(
        clients,
        Nice::NORMAL,
        "caller",
        Box::new(move |_: &mut ResumeCtx, last: SysResult| {
            step += 1;
            let alice = CallParty::new("alice", "h1:20001");
            let nobody = CallParty::new("nobody", "h1:1");
            match step {
                1 => Syscall::UdpBind { port: 20_001 },
                2 => {
                    fd = last.expect_fd();
                    Syscall::UdpSend {
                        fd,
                        to: proxy_addr,
                        data: siperf_simnet::bytes_from(
                            gen::invite(&alice, &nobody, "sip.lab", "c404", "z9hG4bK404", "UDP")
                                .to_bytes(),
                        ),
                    }
                }
                3 => Syscall::UdpRecv { fd },
                _ => {
                    if let SysResult::Datagram { data, .. } = &last {
                        *g.borrow_mut() = parse_message(data).ok().and_then(|m| m.status());
                    }
                    Syscall::Exit
                }
            }
        }),
    );
    kernel.run_until(secs(2));
    assert_eq!(*got.borrow(), Some(StatusCode::NOT_FOUND));
    assert_eq!(proxy.stats().route_failures, 1);
}
