//! The §6 multi-threaded architecture.
//!
//! "File descriptors cannot be shared among processes without passing them
//! back and forth using IPC. This overhead would be completely unnecessary
//! within a multi-threaded server. Locking would still be required to
//! ensure atomic use of each connection, but the threads would be able to
//! use any file descriptor in the server without any expensive transfer
//! operations."
//!
//! Exactly that: an acceptor thread and worker threads share one descriptor
//! table ([`siperf_simos::kernel::Kernel::spawn_thread`]). The shared
//! `conn → fd` registry lives in ordinary shared memory; a send takes the
//! connection-table lock to resolve the route, a striped per-connection
//! write lock for atomicity, and that's all — no supervisor round trip, no
//! close-after-send, no two-step idle shutdown.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use siperf_simcore::time::SimTime;
use siperf_simnet::addr::SockAddr;
use siperf_simos::ipc::{ChanId, Side};
use siperf_simos::lock::LockId;
use siperf_simos::process::{Process, ResumeCtx};
use siperf_simos::syscall::{Fd, IpcMsg, SysResult, Syscall};
use siperf_sip::framer::StreamFramer;
use siperf_sip::parse::parse_message;

use crate::config::{IdleStrategy, Transport};
use crate::conn::{ConnId, ConnTable};
use crate::core::{FastAdmission, Outgoing, ProxyCore};
use crate::plumbing::{decode_addr, encode_addr, routing_script, tags, Locks};
use crate::tcp::{MSG_CONN_DEAD, MSG_NEW_CONN};

/// State shared by the acceptor and all worker threads.
#[derive(Clone)]
pub struct ThreadShared {
    /// Routing engine + stats.
    pub core: Rc<RefCell<ProxyCore>>,
    /// Shared connection table.
    pub conns: Rc<RefCell<ConnTable>>,
    /// Configuration.
    pub cfg: Rc<crate::config::ProxyConfig>,
    /// Shared-memory locks.
    pub locks: Locks,
    /// Striped write locks serializing sends per connection.
    pub write_locks: Rc<Vec<LockId>>,
    /// conn id → descriptor, valid in every thread (shared fd table).
    pub fd_registry: Rc<RefCell<HashMap<u64, Fd>>>,
}

impl ThreadShared {
    fn write_lock_for(&self, conn: u64) -> LockId {
        self.write_locks[(conn as usize) % self.write_locks.len()]
    }
}

// ===================================================================
// Acceptor thread
// ===================================================================

enum AccPhase {
    Start,
    Attach(usize),
    Listen,
    Poll,
    Accept,
    Script,
}

/// The acceptor thread: accepts, registers, notifies the owning reader,
/// and centrally closes idle connections (one step, one close).
pub struct Acceptor {
    shared: ThreadShared,
    notify_chans: Vec<ChanId>,
    notify_fds: Vec<Fd>,
    listener: Fd,
    rr: usize,
    script: VecDeque<Syscall>,
    phase: AccPhase,
    next_idle_check: SimTime,
}

impl Acceptor {
    /// Creates the acceptor with one notify channel per worker thread.
    pub fn new(shared: ThreadShared, notify_chans: Vec<ChanId>) -> Self {
        Acceptor {
            shared,
            notify_chans,
            notify_fds: Vec::new(),
            listener: Fd(u32::MAX),
            rr: 0,
            script: VecDeque::new(),
            phase: AccPhase::Start,
            next_idle_check: SimTime::ZERO,
        }
    }

    fn idle_pass(&mut self, now: SimTime) {
        let timeout = self.shared.cfg.idle_timeout;
        let costs = &self.shared.cfg.app_costs;
        let (hunt, cost) = {
            let mut conns = self.shared.conns.borrow_mut();
            match self.shared.cfg.idle_strategy {
                IdleStrategy::LinearScan => {
                    let hunt = conns.hunt_linear(now, timeout);
                    (hunt.clone(), costs.idle_scan_entry * hunt.examined.max(1))
                }
                IdleStrategy::PriorityQueue => {
                    let hunt = conns.hunt_priority_queue(now, timeout);
                    (hunt.clone(), costs.pq_pop * hunt.examined + 400)
                }
            }
        };
        self.shared.core.borrow_mut().stats.idle_scan_entries += hunt.examined;
        self.script.push_back(Syscall::LockAcquire {
            lock: self.shared.locks.conn,
        });
        self.script.push_back(Syscall::Compute {
            ns: cost.max(400),
            tag: tags::IDLE,
        });
        self.script.push_back(Syscall::LockRelease {
            lock: self.shared.locks.conn,
        });
        // One-step close: no return protocol in a threaded server.
        for id in hunt.to_return.into_iter().chain(hunt.to_destroy) {
            let owner = self
                .shared
                .conns
                .borrow_mut()
                .remove(id)
                .map(|obj| obj.owner);
            if let Some(fd) = self.shared.fd_registry.borrow_mut().remove(&id.0) {
                self.script.push_back(Syscall::Close { fd });
            }
            if let Some(owner) = owner {
                self.script.push_back(Syscall::IpcSend {
                    fd: self.notify_fds[owner],
                    msg: IpcMsg::new(MSG_CONN_DEAD, id.0, 0),
                });
            }
            self.shared.core.borrow_mut().stats.conns_destroyed += 1;
        }
    }

    fn next_action(&mut self, now: SimTime) -> Syscall {
        if let Some(s) = self.script.pop_front() {
            self.phase = AccPhase::Script;
            return s;
        }
        if now >= self.next_idle_check {
            self.next_idle_check = now + self.shared.cfg.idle_check_interval;
            self.idle_pass(now);
            self.phase = AccPhase::Script;
            return self.script.pop_front().expect("idle pass emits syscalls");
        }
        self.phase = AccPhase::Poll;
        Syscall::Poll {
            fds: vec![self.listener],
            timeout: Some(self.next_idle_check - now),
        }
    }
}

impl Process for Acceptor {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        match std::mem::replace(&mut self.phase, AccPhase::Script) {
            AccPhase::Start => {
                self.phase = AccPhase::Attach(0);
                Syscall::IpcAttach {
                    chan: self.notify_chans[0],
                    side: Side::A,
                }
            }
            AccPhase::Attach(i) => {
                self.notify_fds.push(last.expect_fd());
                if i + 1 < self.notify_chans.len() {
                    self.phase = AccPhase::Attach(i + 1);
                    Syscall::IpcAttach {
                        chan: self.notify_chans[i + 1],
                        side: Side::A,
                    }
                } else {
                    self.phase = AccPhase::Listen;
                    Syscall::TcpListen {
                        port: siperf_simnet::SIP_PORT,
                        backlog: 1024,
                    }
                }
            }
            AccPhase::Listen => {
                self.listener = last.expect_fd();
                self.next_idle_check = ctx.now + self.shared.cfg.idle_check_interval;
                self.next_action(ctx.now)
            }
            AccPhase::Poll => {
                match last {
                    SysResult::Ready(_) => {
                        self.phase = AccPhase::Accept;
                        return Syscall::TcpAccept { fd: self.listener };
                    }
                    SysResult::TimedOut => {}
                    other => panic!("acceptor poll got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            AccPhase::Accept => {
                match last {
                    SysResult::Accepted { fd, peer } => {
                        let worker = self.rr % self.notify_chans.len();
                        self.rr += 1;
                        let id = self.shared.conns.borrow_mut().insert(
                            ctx.now,
                            peer,
                            worker,
                            self.shared.cfg.idle_timeout,
                        );
                        self.shared.fd_registry.borrow_mut().insert(id.0, fd);
                        self.shared.core.borrow_mut().stats.conns_assigned += 1;
                        self.script.push_back(Syscall::LockAcquire {
                            lock: self.shared.locks.conn,
                        });
                        self.script.push_back(Syscall::Compute {
                            ns: self.shared.cfg.app_costs.conn_table_op,
                            tag: tags::CONN_HASH,
                        });
                        self.script.push_back(Syscall::LockRelease {
                            lock: self.shared.locks.conn,
                        });
                        // Notify the owner — a plain message, no SCM_RIGHTS:
                        // the descriptor is already visible to every thread.
                        self.script.push_back(Syscall::IpcSend {
                            fd: self.notify_fds[worker],
                            msg: IpcMsg::new(MSG_NEW_CONN, id.0, encode_addr(peer)),
                        });
                    }
                    SysResult::Err(_) => {
                        self.shared.core.borrow_mut().stats.send_errors += 1;
                    }
                    other => panic!("acceptor accept got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            AccPhase::Script => {
                if let SysResult::Err(_) = last {
                    self.shared.core.borrow_mut().stats.send_errors += 1;
                }
                self.next_action(ctx.now)
            }
        }
    }
}

// ===================================================================
// Worker thread
// ===================================================================

struct ThreadConn {
    fd: Fd,
    peer: SockAddr,
    framer: StreamFramer,
}

enum TSendState {
    LockTable,
    TableWork,
    Unlock,
    Connecting,
    LockStripe,
    Sending,
    UnlockStripe,
}

struct TSendJob {
    out: Outgoing,
    state: TSendState,
    conn: Option<ConnId>,
    fd: Option<Fd>,
    failed: bool,
}

enum TWkrPhase {
    Start,
    Attach,
    Poll,
    NotifyRecv,
    ConnRecv(u64),
    Send,
    Script,
}

enum TWkrReady {
    Notify,
    Conn(u64),
}

/// One worker thread.
pub struct ThreadWorker {
    idx: usize,
    shared: ThreadShared,
    notify_chan: ChanId,
    notify_fd: Fd,
    owned: HashMap<u64, ThreadConn>,
    conn_by_fd: HashMap<Fd, u64>,
    pending: VecDeque<TWkrReady>,
    msg_q: VecDeque<(Vec<u8>, SockAddr)>,
    out_q: VecDeque<Outgoing>,
    send: Option<TSendJob>,
    script: VecDeque<Syscall>,
    phase: TWkrPhase,
}

impl ThreadWorker {
    /// Creates worker thread `idx`.
    pub fn new(idx: usize, shared: ThreadShared, notify_chan: ChanId) -> Self {
        ThreadWorker {
            idx,
            shared,
            notify_chan,
            notify_fd: Fd(u32::MAX),
            owned: HashMap::new(),
            conn_by_fd: HashMap::new(),
            pending: VecDeque::new(),
            msg_q: VecDeque::new(),
            out_q: VecDeque::new(),
            send: None,
            script: VecDeque::new(),
            phase: TWkrPhase::Start,
        }
    }

    fn process_message(&mut self, now: SimTime, raw: Vec<u8>, src: SockAddr) {
        let parse_ns = self.shared.cfg.app_costs.parse_cost(raw.len());
        match parse_message(&raw) {
            Err(_) => {
                self.shared.core.borrow_mut().stats.parse_errors += 1;
                self.script.push_back(Syscall::Compute {
                    ns: parse_ns,
                    tag: tags::PARSE,
                });
            }
            Ok(msg) => {
                let was_request = msg.is_request();
                let mut core = self.shared.core.borrow_mut();
                // Overload-signal hook: as in the process-per-worker TCP
                // mode, framed-but-unrouted messages are policy-visible
                // backlog.
                core.note_worker_backlog(self.idx, self.msg_q.len() + self.out_q.len());
                if let FastAdmission::Shed(plan) = core.fast_admission(now, &msg, src) {
                    // Shed fast path: refuse from the request line, skipping
                    // the parse/route/build pipeline.
                    drop(core);
                    self.script.push_back(Syscall::Compute {
                        ns: self.shared.cfg.app_costs.shed_fast,
                        tag: tags::SHED_FAST,
                    });
                    self.out_q.extend(plan.out);
                    return;
                }
                let plan = core.handle_message(now, msg, src);
                drop(core);
                routing_script(
                    &mut self.script,
                    &self.shared.cfg.app_costs,
                    &self.shared.locks,
                    Transport::Tcp,
                    parse_ns,
                    was_request,
                    &plan,
                );
                self.out_q.extend(plan.out);
            }
        }
    }

    fn conn_died(&mut self, conn: u64) {
        if let Some(tc) = self.owned.remove(&conn) {
            self.conn_by_fd.remove(&tc.fd);
            // Single close: the descriptor table is shared, so this is the
            // only copy to release.
            if self.shared.fd_registry.borrow_mut().remove(&conn).is_some() {
                self.script.push_back(Syscall::Close { fd: tc.fd });
            }
            self.shared.conns.borrow_mut().remove(ConnId(conn));
        }
    }

    fn advance_send(&mut self, now: SimTime, last: &SysResult) -> Option<Syscall> {
        let mut job = self.send.take()?;
        let timeout = self.shared.cfg.idle_timeout;
        let syscall = loop {
            match job.state {
                TSendState::LockTable => {
                    job.state = TSendState::TableWork;
                    break Some(Syscall::LockAcquire {
                        lock: self.shared.locks.conn,
                    });
                }
                TSendState::TableWork => {
                    let mut conns = self.shared.conns.borrow_mut();
                    job.conn = conns
                        .lookup_peer(job.out.dest)
                        .or_else(|| job.out.alt.and_then(|a| conns.lookup_peer(a)));
                    let mut ns = self.shared.cfg.app_costs.conn_table_op;
                    if let Some(id) = job.conn {
                        conns.touch(id, now, timeout);
                        if self.shared.cfg.idle_strategy == IdleStrategy::PriorityQueue {
                            ns += self.shared.cfg.app_costs.pq_update;
                        }
                    }
                    drop(conns);
                    job.fd = job
                        .conn
                        .and_then(|id| self.shared.fd_registry.borrow().get(&id.0).copied());
                    job.state = TSendState::Unlock;
                    break Some(Syscall::Compute {
                        ns,
                        tag: tags::CONN_HASH,
                    });
                }
                TSendState::Unlock => {
                    job.state = if job.fd.is_some() {
                        TSendState::LockStripe
                    } else {
                        TSendState::Connecting
                    };
                    break Some(Syscall::LockRelease {
                        lock: self.shared.locks.conn,
                    });
                }
                TSendState::Connecting => {
                    if !job.failed {
                        job.failed = true; // marks the connect as issued
                        let target = job.out.alt.unwrap_or(job.out.dest);
                        self.shared.core.borrow_mut().stats.outbound_connects += 1;
                        break Some(Syscall::TcpConnect { to: target });
                    }
                    match last {
                        SysResult::NewFd(fd) => {
                            let target = job.out.alt.unwrap_or(job.out.dest);
                            let id = self
                                .shared
                                .conns
                                .borrow_mut()
                                .insert(now, target, self.idx, timeout);
                            self.shared.fd_registry.borrow_mut().insert(id.0, *fd);
                            self.owned.insert(
                                id.0,
                                ThreadConn {
                                    fd: *fd,
                                    peer: target,
                                    framer: StreamFramer::new(),
                                },
                            );
                            self.conn_by_fd.insert(*fd, id.0);
                            job.conn = Some(id);
                            job.fd = Some(*fd);
                            job.state = TSendState::LockStripe;
                            continue;
                        }
                        SysResult::Err(_) => {
                            self.shared.core.borrow_mut().stats.send_errors += 1;
                            self.send = None;
                            return None;
                        }
                        other => panic!("connect result expected, got {other:?}"),
                    }
                }
                TSendState::LockStripe => {
                    job.state = TSendState::Sending;
                    let lock = self.shared.write_lock_for(job.conn.expect("resolved").0);
                    break Some(Syscall::LockAcquire { lock });
                }
                TSendState::Sending => {
                    job.state = TSendState::UnlockStripe;
                    break Some(Syscall::TcpSend {
                        fd: job.fd.expect("resolved"),
                        data: job.out.bytes.clone(),
                    });
                }
                TSendState::UnlockStripe => {
                    if matches!(last, SysResult::Err(_)) {
                        self.shared.core.borrow_mut().stats.send_errors += 1;
                    }
                    let lock = self.shared.write_lock_for(job.conn.expect("resolved").0);
                    self.send = None;
                    return Some(Syscall::LockRelease { lock });
                }
            }
        };
        self.send = Some(job);
        syscall
    }

    fn next_action(&mut self, now: SimTime) -> Syscall {
        loop {
            if let Some(s) = self.script.pop_front() {
                self.phase = TWkrPhase::Script;
                return s;
            }
            if self.send.is_some() {
                if let Some(s) = self.advance_send(now, &SysResult::Done) {
                    self.phase = TWkrPhase::Send;
                    return s;
                }
                continue;
            }
            if let Some(out) = self.out_q.pop_front() {
                self.send = Some(TSendJob {
                    out,
                    state: TSendState::LockTable,
                    conn: None,
                    fd: None,
                    failed: false,
                });
                continue;
            }
            if let Some((raw, src)) = self.msg_q.pop_front() {
                self.process_message(now, raw, src);
                continue;
            }
            match self.pending.pop_front() {
                Some(TWkrReady::Notify) => {
                    self.phase = TWkrPhase::NotifyRecv;
                    return Syscall::IpcRecv { fd: self.notify_fd };
                }
                Some(TWkrReady::Conn(conn)) => {
                    if let Some(tc) = self.owned.get(&conn) {
                        let fd = tc.fd;
                        self.phase = TWkrPhase::ConnRecv(conn);
                        return Syscall::TcpRecv { fd, max: 16 * 1024 };
                    }
                    continue;
                }
                None => {}
            }
            let mut fds = Vec::with_capacity(1 + self.owned.len());
            fds.push(self.notify_fd);
            fds.extend(self.owned.values().map(|c| c.fd));
            // Poll order decides which ready connection is served first;
            // sort so it does not depend on HashMap iteration order.
            fds[1..].sort_unstable();
            self.phase = TWkrPhase::Poll;
            return Syscall::Poll { fds, timeout: None };
        }
    }
}

impl Process for ThreadWorker {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        match std::mem::replace(&mut self.phase, TWkrPhase::Script) {
            TWkrPhase::Start => {
                self.phase = TWkrPhase::Attach;
                Syscall::IpcAttach {
                    chan: self.notify_chan,
                    side: Side::B,
                }
            }
            TWkrPhase::Attach => {
                self.notify_fd = last.expect_fd();
                self.next_action(ctx.now)
            }
            TWkrPhase::Poll => {
                match last {
                    SysResult::Ready(fds) => {
                        for fd in fds {
                            if fd == self.notify_fd {
                                self.pending.push_back(TWkrReady::Notify);
                            } else if let Some(&conn) = self.conn_by_fd.get(&fd) {
                                self.pending.push_back(TWkrReady::Conn(conn));
                            }
                        }
                    }
                    SysResult::TimedOut => {}
                    other => panic!("thread worker poll got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            TWkrPhase::NotifyRecv => {
                match last {
                    SysResult::Ipc(msg) => match msg.kind {
                        MSG_NEW_CONN => {
                            let fd = self.shared.fd_registry.borrow().get(&msg.a).copied();
                            if let Some(fd) = fd {
                                self.owned.insert(
                                    msg.a,
                                    ThreadConn {
                                        fd,
                                        peer: decode_addr(msg.b),
                                        framer: StreamFramer::new(),
                                    },
                                );
                                self.conn_by_fd.insert(fd, msg.a);
                            }
                        }
                        MSG_CONN_DEAD => {
                            // Acceptor already closed the shared fd.
                            if let Some(tc) = self.owned.remove(&msg.a) {
                                self.conn_by_fd.remove(&tc.fd);
                            }
                        }
                        other => panic!("thread worker got ipc kind {other}"),
                    },
                    other => panic!("notify recv got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            TWkrPhase::ConnRecv(conn) => {
                match last {
                    SysResult::Data(bytes) => {
                        self.shared.conns.borrow_mut().touch(
                            ConnId(conn),
                            ctx.now,
                            self.shared.cfg.idle_timeout,
                        );
                        if self.shared.cfg.idle_strategy == IdleStrategy::PriorityQueue {
                            self.script.push_back(Syscall::LockAcquire {
                                lock: self.shared.locks.conn,
                            });
                            self.script.push_back(Syscall::Compute {
                                ns: self.shared.cfg.app_costs.pq_update,
                                tag: tags::CONN_HASH,
                            });
                            self.script.push_back(Syscall::LockRelease {
                                lock: self.shared.locks.conn,
                            });
                        }
                        let (peer, frames) = {
                            let tc = self.owned.get_mut(&conn).expect("owned conn");
                            tc.framer.push(&bytes);
                            (tc.peer, tc.framer.drain_messages())
                        };
                        match frames {
                            Ok(frames) => {
                                for raw in frames {
                                    self.msg_q.push_back((raw, peer));
                                }
                            }
                            Err(_) => {
                                self.shared.core.borrow_mut().stats.parse_errors += 1;
                                self.conn_died(conn);
                            }
                        }
                    }
                    SysResult::Eof | SysResult::Err(_) => self.conn_died(conn),
                    other => panic!("thread conn recv got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            TWkrPhase::Send => {
                if let Some(s) = self.advance_send(ctx.now, &last) {
                    self.phase = TWkrPhase::Send;
                    return s;
                }
                self.next_action(ctx.now)
            }
            TWkrPhase::Script => {
                if let SysResult::Err(_) = last {
                    self.shared.core.borrow_mut().stats.send_errors += 1;
                }
                self.next_action(ctx.now)
            }
        }
    }
}
