//! The timer process.
//!
//! §3.2: "the timer process is essential to UDP, since UDP does not
//! guarantee delivery and a stateful proxy must retransmit messages for
//! transactions that do not receive a response." It periodically walks the
//! global timer list under its lock, retransmitting stored requests and
//! reaping finished transactions.
//!
//! §3.1: the same process exists under TCP but is "superfluous" — it still
//! ticks and scans (costing CPU and lock hold time, faithfully), but the
//! reliable transport never needs a retransmission. Transaction timeouts
//! (408) are only deliverable on datagram transports here; on TCP the timer
//! lacks a connection and drops them, which only matters when a phone dies
//! mid-call.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use siperf_simos::process::{Process, ResumeCtx};
use siperf_simos::syscall::{Fd, SysResult, Syscall};

use crate::config::{AppCostModel, Transport};
use crate::core::ProxyCore;
use crate::plumbing::{tags, Locks};

/// How the timer process puts retransmissions on the wire.
enum TimerSocket {
    /// Needs its own ephemeral UDP socket.
    Udp(Option<Fd>),
    /// Shares the inherited SCTP endpoint.
    Sctp(Rc<Cell<Option<Fd>>>, Option<Fd>),
    /// TCP: no socket; retransmissions never happen, timeouts are dropped.
    None,
}

/// The retransmission/reaping timer process.
pub struct TimerProc {
    core: Rc<RefCell<ProxyCore>>,
    costs: AppCostModel,
    locks: Locks,
    tick: siperf_simcore::time::SimDuration,
    socket: TimerSocket,
    script: VecDeque<Syscall>,
    started: bool,
}

impl TimerProc {
    /// Creates the timer process for the given transport.
    pub fn new(
        core: Rc<RefCell<ProxyCore>>,
        costs: AppCostModel,
        locks: Locks,
        tick: siperf_simcore::time::SimDuration,
        transport: Transport,
        sctp_fd_slot: Option<Rc<Cell<Option<Fd>>>>,
    ) -> Self {
        let socket = match transport {
            Transport::Udp => TimerSocket::Udp(None),
            Transport::Sctp => {
                TimerSocket::Sctp(sctp_fd_slot.expect("sctp slot for sctp proxy"), None)
            }
            Transport::Tcp => TimerSocket::None,
        };
        TimerProc {
            core,
            costs,
            locks,
            tick,
            socket,
            script: VecDeque::new(),
            started: false,
        }
    }

    fn run_pass(&mut self, ctx: &ResumeCtx) {
        // Lock ordering per OpenSER: timer list first, then transactions.
        self.script.push_back(Syscall::LockAcquire {
            lock: self.locks.timer,
        });
        self.script.push_back(Syscall::LockAcquire {
            lock: self.locks.txn,
        });
        let pass = self.core.borrow_mut().timer_pass(ctx.now);
        let scan_ns = self
            .costs
            .timer_scan_entry
            .saturating_mul(pass.examined.max(1));
        self.script.push_back(Syscall::Compute {
            ns: scan_ns,
            tag: tags::TIMER_SCAN,
        });
        self.script.push_back(Syscall::LockRelease {
            lock: self.locks.txn,
        });
        self.script.push_back(Syscall::LockRelease {
            lock: self.locks.timer,
        });
        let send_fd = match &self.socket {
            TimerSocket::Udp(fd) => *fd,
            TimerSocket::Sctp(_, fd) => *fd,
            TimerSocket::None => None,
        };
        for out in pass.retransmits.into_iter().chain(pass.timeouts) {
            match (&self.socket, send_fd) {
                (TimerSocket::Udp(_), Some(fd)) => {
                    self.script.push_back(Syscall::UdpSend {
                        fd,
                        to: out.dest,
                        data: out.bytes,
                    });
                }
                (TimerSocket::Sctp(..), Some(fd)) => {
                    self.script.push_back(Syscall::SctpSend {
                        fd,
                        to: out.dest,
                        data: out.bytes,
                    });
                }
                _ => {
                    // TCP timer has no connection to send on; see module
                    // docs.
                    self.core.borrow_mut().stats.send_errors += 1;
                }
            }
        }
        self.script.push_back(Syscall::Sleep(self.tick));
    }
}

impl Process for TimerProc {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        if let SysResult::Err(_) = last {
            self.core.borrow_mut().stats.send_errors += 1;
        }
        if !self.started {
            self.started = true;
            match &mut self.socket {
                TimerSocket::Udp(_) => return Syscall::UdpBindEphemeral,
                TimerSocket::Sctp(slot, fd) => {
                    *fd = Some(slot.get().expect("shared SCTP endpoint installed"));
                }
                TimerSocket::None => {}
            }
            return Syscall::Sleep(self.tick);
        }
        if let TimerSocket::Udp(fd @ None) = &mut self.socket {
            *fd = Some(last.expect_fd());
            return Syscall::Sleep(self.tick);
        }
        if let Some(next) = self.script.pop_front() {
            return next;
        }
        // Woke from the tick: run a pass and start draining its script.
        self.run_pass(ctx);
        self.script.pop_front().expect("pass always emits syscalls")
    }
}
