//! The proxy's shared application state and routing engine.
//!
//! [`ProxyCore`] is what lives in OpenSER's shared memory: the location
//! service (usrloc), the transaction table, and the statistics. It is pure
//! logic — no syscalls, no clocks of its own — so it can be unit-tested
//! exhaustively; the worker processes charge the simulated CPU and take the
//! simulated locks around each call into it, in exactly the order OpenSER
//! does (§3).

use std::collections::{BTreeMap, HashMap};

use siperf_overload::{LoadSignals, NoControl, OverloadPolicy, Verdict};
use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::addr::SockAddr;
use siperf_simnet::endpoint::{bytes_from, Bytes};
use siperf_sip::gen;
use siperf_sip::msg::{Method, SipMessage, StatusCode, Via};
use siperf_sip::txn::{RetransClock, TimerVerdict, TxnKey};

use crate::config::Transport;
use crate::util::parse_sim_addr;

/// One location-service binding. For connection-oriented transports the
/// proxy prefers the connection the phone registered over (OpenSER's
/// `tcp_alias` behaviour — this is what puts *two workers* in every
/// transaction, §3.1); the contact address is the connect-to fallback once
/// that connection is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// Source address of the REGISTER: the phone's live connection.
    pub conn_hint: SockAddr,
    /// The Contact header's address: where the phone listens.
    pub contact: SockAddr,
}

/// Counters a run reports; mirrors `openserctl fifo get_statistics`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProxyStats {
    /// Requests parsed and handled.
    pub requests: u64,
    /// Responses parsed and handled.
    pub responses: u64,
    /// Messages forwarded downstream/upstream.
    pub forwards: u64,
    /// Replies generated locally (Trying, 200 to REGISTER, errors).
    pub local_replies: u64,
    /// Successful registrations.
    pub registered: u64,
    /// Request retransmissions absorbed by transaction state.
    pub absorbed_retrans: u64,
    /// Requests retransmitted by the timer process.
    pub retransmits_sent: u64,
    /// Messages that failed to parse.
    pub parse_errors: u64,
    /// Requests dropped (unroutable, hop limit, unknown transaction).
    pub route_failures: u64,
    /// Transactions created.
    pub txns_created: u64,
    /// Transactions that timed out (Timer B/F).
    pub txn_timeouts: u64,
    /// Transactions reaped after completion.
    pub txns_reaped: u64,
    /// fd requests sent to the supervisor (TCP multi-process only).
    pub fd_requests: u64,
    /// fd-cache hits (TCP with the §5.2 fix).
    pub fd_cache_hits: u64,
    /// Connections assigned to workers by the supervisor.
    pub conns_assigned: u64,
    /// Connections returned to the supervisor by idle workers.
    pub conns_returned: u64,
    /// Connection objects destroyed by the supervisor.
    pub conns_destroyed: u64,
    /// Outbound connections the proxy opened towards phones.
    pub outbound_connects: u64,
    /// Connection-object entries examined while hunting idle connections.
    pub idle_scan_entries: u64,
    /// CANCELs relayed hop-by-hop (RFC 3261 §9.2).
    pub cancels_relayed: u64,
    /// Responses to our relayed CANCELs, consumed locally.
    pub cancel_responses_absorbed: u64,
    /// Send failures (dead connections, refused connects).
    pub send_errors: u64,
    /// INVITEs shed by the overload policy with 503 + Retry-After.
    pub overload_rejections: u64,
    /// Worker processes killed and respawned by fault injection.
    pub workers_respawned: u64,
    /// Connections re-assigned to a respawned worker by the supervisor.
    pub conns_reassigned: u64,
}

/// One message to put on the wire.
#[derive(Debug, Clone)]
pub struct Outgoing {
    /// Serialized message.
    pub bytes: Bytes,
    /// Primary destination (an existing connection's peer, or a datagram
    /// target).
    pub dest: SockAddr,
    /// Fallback destination to *connect to* when no connection to `dest`
    /// exists (RFC 3261 §18.2.2: the Via sent-by), used by TCP workers.
    pub alt: Option<SockAddr>,
}

/// The routing engine's verdict on one inbound message.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    /// Messages to send, in order.
    pub out: Vec<Outgoing>,
    /// The message was a retransmission absorbed by transaction state.
    pub absorbed: bool,
    /// A new transaction (and its retransmission clock) was created.
    pub txn_created: bool,
    /// The message updated the location service.
    pub registered: bool,
    /// The message was an INVITE shed by the overload policy.
    pub rejected: bool,
}

/// The outcome of offering a message to the pre-parse shed fast path
/// ([`ProxyCore::fast_admission`]).
#[derive(Debug)]
pub enum FastAdmission {
    /// Not a sheddable new INVITE (or it cannot be routed); run the full
    /// path — the policy was not consulted.
    NotEligible,
    /// Admitted. The caller must immediately route the same message
    /// through [`ProxyCore::handle_message`], which consumes the stored
    /// grant instead of consulting the policy a second time.
    Admitted,
    /// Shed: send the 503 and charge only the fast-path cost
    /// (`AppCostModel::shed_fast`) instead of the parse/route/build
    /// pipeline.
    Shed(Plan),
}

/// What the timer process must do after one pass.
#[derive(Debug, Clone, Default)]
pub struct TimerPass {
    /// Stored requests to retransmit.
    pub retransmits: Vec<Outgoing>,
    /// 408 responses for transactions that timed out.
    pub timeouts: Vec<Outgoing>,
    /// Timer entries examined (for cost accounting).
    pub examined: u64,
    /// Transactions reaped.
    pub reaped: u64,
}

#[derive(Debug)]
struct ProxyTxn {
    upstream_key: TxnKey,
    downstream_key: TxnKey,
    caller_src: SockAddr,
    caller_via: Option<SockAddr>,
    callee_dst: SockAddr,
    fwd_bytes: Bytes,
    timeout_response: Bytes,
    last_response: Option<Bytes>,
    clock: RetransClock,
    completed: bool,
    reap_at: Option<SimTime>,
    /// When the transaction was created (admission latency measurement).
    started: SimTime,
    /// The overload policy admitted this transaction and is owed exactly
    /// one `on_complete` or `on_timeout`.
    policy_tracked: bool,
}

/// Shared proxy state: location service, transaction table, stats.
#[derive(Debug)]
pub struct ProxyCore {
    /// Our Via sent-by string (`hN:5060`).
    pub via_sent_by: String,
    /// Transport in use (selects Via token and retransmission policy).
    pub transport: Transport,
    /// Stateful (§2) or stateless operation.
    pub stateful: bool,
    /// How long completed transactions linger before reaping.
    pub txn_linger: SimDuration,
    registrar: HashMap<String, Binding>,
    txn_index: HashMap<TxnKey, u64>,
    // Ordered by transaction id so `timer_pass` emits retransmissions and
    // timeouts in a run-independent order (HashMap iteration order would
    // leak the hasher seed into the packet schedule).
    txns: BTreeMap<u64, ProxyTxn>,
    next_txn: u64,
    next_branch: u64,
    /// Run statistics.
    pub stats: ProxyStats,
    policy: Box<dyn OverloadPolicy>,
    active_txns: usize,
    worker_backlog: Vec<usize>,
    /// A [`Self::fast_admission`] grant awaiting its `handle_message` call.
    /// Consumed (and cleared) by the very next request routed, so the
    /// policy's admit/complete bookkeeping stays exactly 1:1 even though
    /// admission moved ahead of parsing.
    preadmitted: bool,
}

impl ProxyCore {
    /// Creates an empty core for a proxy reachable at `via_sent_by`.
    pub fn new(via_sent_by: String, transport: Transport, stateful: bool) -> Self {
        ProxyCore {
            via_sent_by,
            transport,
            stateful,
            txn_linger: SimDuration::from_secs(5),
            registrar: HashMap::new(),
            txn_index: HashMap::new(),
            txns: BTreeMap::new(),
            next_txn: 1,
            next_branch: 1,
            stats: ProxyStats::default(),
            policy: Box::new(NoControl),
            active_txns: 0,
            worker_backlog: Vec::new(),
            preadmitted: false,
        }
    }

    /// Installs the overload-control policy (default: [`NoControl`]).
    pub fn set_overload_policy(&mut self, policy: Box<dyn OverloadPolicy>) {
        self.policy = policy;
    }

    /// The installed policy's name token.
    pub fn overload_policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Records the depth of worker `idx`'s input queue. Transports whose
    /// pending messages queue in application memory (TCP workers, threads)
    /// report here so the policy sees backlog the transaction table cannot;
    /// UDP/SCTP workers report zero — their queueing hides in kernel socket
    /// buffers.
    pub fn note_worker_backlog(&mut self, idx: usize, depth: usize) {
        if idx >= self.worker_backlog.len() {
            self.worker_backlog.resize(idx + 1, 0);
        }
        self.worker_backlog[idx] = depth;
    }

    /// The load signals the policy is consulted with.
    pub fn load_signals(&self) -> LoadSignals {
        LoadSignals {
            active_txns: self.active_txns,
            worker_backlog: self.worker_backlog.iter().sum(),
        }
    }

    /// Number of registered bindings.
    pub fn bindings(&self) -> usize {
        self.registrar.len()
    }

    /// Number of live transactions.
    pub fn live_txns(&self) -> usize {
        self.txns.len()
    }

    /// Looks up a user's registered contact address.
    pub fn contact_of(&self, user: &str) -> Option<SockAddr> {
        self.registrar.get(user).map(|b| b.contact)
    }

    /// Looks up a user's full binding.
    pub fn binding_of(&self, user: &str) -> Option<Binding> {
        self.registrar.get(user).copied()
    }

    fn fresh_branch(&mut self) -> String {
        let n = self.next_branch;
        self.next_branch += 1;
        format!("{}px{}", gen::BRANCH_COOKIE, n)
    }

    fn reply(&mut self, code: StatusCode, req: &SipMessage, dest: SockAddr) -> Outgoing {
        self.stats.local_replies += 1;
        let resp = gen::response(code, req, None, None);
        Outgoing {
            bytes: bytes_from(resp.to_bytes()),
            dest,
            alt: None,
        }
    }

    /// Offers an inbound message to the overload shed fast path *before*
    /// the worker charges parse and routing costs. Servers in the SER
    /// lineage refuse new work from the request line alone while
    /// shedding, because rejection must cost far less than service: the
    /// full-pipeline 503 (parse, transaction match, location lookup,
    /// build) runs near 20% of a served call, which mathematically caps
    /// the goodput any admission policy can hold at 2× overload around
    /// 80% of its peak no matter how it decides.
    ///
    /// The eligibility filters mirror `handle_request`'s pre-admission
    /// sequence exactly — retransmissions, spent hop budgets, and unknown
    /// callees all fall through to the full path for their usual
    /// treatment — so the policy still sees each sheddable INVITE exactly
    /// once, and an [`FastAdmission::Admitted`] grant is guaranteed to
    /// reach the transaction-creation point when the caller immediately
    /// routes the same message through [`Self::handle_message`].
    pub fn fast_admission(
        &mut self,
        now: SimTime,
        msg: &SipMessage,
        src: SockAddr,
    ) -> FastAdmission {
        if !self.stateful || msg.method() != Some(Method::Invite) {
            return FastAdmission::NotEligible;
        }
        // Retransmissions of already-admitted INVITEs must be absorbed by
        // their transaction, not answered 503.
        if let Some(key) = TxnKey::of(msg) {
            if self.txn_index.contains_key(&key) {
                return FastAdmission::NotEligible;
            }
        }
        // Unroutable requests get their diagnostic (500/404) from the full
        // path; admission only governs calls the proxy could serve.
        if msg.max_forwards == 0 || !self.registrar.contains_key(&msg.to.uri.user) {
            return FastAdmission::NotEligible;
        }
        let load = self.load_signals();
        match self.policy.admit(now, src, &load) {
            Verdict::Admit => {
                self.preadmitted = true;
                FastAdmission::Admitted
            }
            Verdict::Reject { retry_after } => {
                self.stats.requests += 1;
                self.stats.overload_rejections += 1;
                self.stats.local_replies += 1;
                let resp = gen::service_unavailable(msg, retry_after);
                FastAdmission::Shed(Plan {
                    out: vec![Outgoing {
                        bytes: bytes_from(resp.to_bytes()),
                        dest: src,
                        alt: None,
                    }],
                    rejected: true,
                    ..Plan::default()
                })
            }
        }
    }

    /// Routes one parsed message. The caller must hold the transaction
    /// lock, per OpenSER's discipline.
    pub fn handle_message(&mut self, now: SimTime, msg: SipMessage, src: SockAddr) -> Plan {
        if msg.is_request() {
            self.handle_request(now, msg, src)
        } else {
            self.handle_response(now, msg)
        }
    }

    fn handle_request(&mut self, now: SimTime, msg: SipMessage, src: SockAddr) -> Plan {
        self.stats.requests += 1;
        let preadmitted = std::mem::take(&mut self.preadmitted);
        let mut plan = Plan::default();
        let method = msg.method().expect("checked is_request");

        if method == Method::Register {
            let contact = msg
                .contact
                .as_ref()
                .and_then(|c| parse_sim_addr(&c.host))
                .unwrap_or(src);
            let binding = Binding {
                conn_hint: src,
                contact,
            };
            let user = msg.to.uri.user.clone();
            if msg.expires == Some(0) {
                self.registrar.remove(&user);
            } else {
                self.registrar.insert(user, binding);
            }
            self.stats.registered += 1;
            plan.registered = true;
            plan.out.push(self.reply(StatusCode::OK, &msg, src));
            return plan;
        }

        // CANCEL is hop-by-hop (RFC 3261 §9.2): answer it 200 locally and
        // relay a CANCEL for the forwarded INVITE, reusing its downstream
        // branch so the callee can match the transaction.
        if method == Method::Cancel {
            let key = TxnKey {
                branch: msg.branch().unwrap_or_default().to_string(),
                method: Method::Invite,
            };
            let Some(&id) = self.txn_index.get(&key) else {
                plan.out
                    .push(self.reply(StatusCode::NO_TRANSACTION, &msg, src));
                self.stats.route_failures += 1;
                return plan;
            };
            let (dst, downstream_branch) = {
                let txn = self.txns.get(&id).expect("index is consistent");
                (txn.callee_dst, txn.downstream_key.branch.clone())
            };
            plan.out.push(self.reply(StatusCode::OK, &msg, src));
            let mut fwd = msg.clone();
            fwd.vias.insert(
                0,
                Via::new(
                    self.transport.token(),
                    self.via_sent_by.clone(),
                    downstream_branch,
                ),
            );
            fwd.max_forwards -= 1;
            self.stats.cancels_relayed += 1;
            self.stats.forwards += 1;
            plan.out.push(Outgoing {
                bytes: bytes_from(fwd.to_bytes()),
                dest: dst,
                alt: Some(dst),
            });
            return plan;
        }

        // Retransmission? (Stateful proxies absorb them, §2.)
        if self.stateful && method != Method::Ack {
            if let Some(key) = TxnKey::of(&msg) {
                if let Some(&id) = self.txn_index.get(&key) {
                    plan.absorbed = true;
                    self.stats.absorbed_retrans += 1;
                    if let Some(txn) = self.txns.get(&id) {
                        if let Some(last) = &txn.last_response {
                            plan.out.push(Outgoing {
                                bytes: last.clone(),
                                dest: txn.caller_src,
                                alt: txn.caller_via,
                            });
                        }
                    }
                    return plan;
                }
            }
        }

        if msg.max_forwards == 0 {
            self.stats.route_failures += 1;
            plan.out
                .push(self.reply(StatusCode::SERVER_ERROR, &msg, src));
            return plan;
        }

        // Location-service lookup (the caller holds usrloc's lock around
        // this in the worker code).
        let Some(binding) = self.registrar.get(&msg.to.uri.user).copied() else {
            self.stats.route_failures += 1;
            plan.out.push(self.reply(StatusCode::NOT_FOUND, &msg, src));
            return plan;
        };
        let dst = binding.conn_hint;

        // Overload admission: only new calls (stateful INVITEs) are
        // sheddable — BYE/ACK/CANCEL complete already-accepted calls, and
        // shedding them would destroy the goodput the policy defends. The
        // check sits after the retransmission and registrar filters so the
        // policy's admit/complete bookkeeping pairs 1:1 with transactions.
        let policy_tracked = self.stateful && method == Method::Invite;
        if policy_tracked && !preadmitted {
            let load = self.load_signals();
            if let Verdict::Reject { retry_after } = self.policy.admit(now, src, &load) {
                self.stats.overload_rejections += 1;
                self.stats.local_replies += 1;
                plan.rejected = true;
                let resp = gen::service_unavailable(&msg, retry_after);
                plan.out.push(Outgoing {
                    bytes: bytes_from(resp.to_bytes()),
                    dest: src,
                    alt: None,
                });
                return plan;
            }
        }

        // Build the forwarded request: push our Via, spend a hop.
        let branch = self.fresh_branch();
        let mut fwd = msg.clone();
        fwd.vias.insert(
            0,
            Via::new(
                self.transport.token(),
                self.via_sent_by.clone(),
                branch.clone(),
            ),
        );
        fwd.max_forwards -= 1;
        let fwd_bytes = bytes_from(fwd.to_bytes());
        let caller_via = msg.vias.first().and_then(|v| parse_sim_addr(&v.sent_by));

        if self.stateful && method != Method::Ack {
            // A stateful proxy takes responsibility: 100 Trying for INVITE,
            // a stored copy plus a retransmission clock for the forward.
            if method == Method::Invite {
                plan.out.push(self.reply(StatusCode::TRYING, &msg, src));
            }
            let id = self.next_txn;
            self.next_txn += 1;
            let upstream_key = TxnKey::of(&msg).expect("requests carry a Via");
            let downstream_key = TxnKey { branch, method };
            let clock = if self.transport.is_reliable() {
                RetransClock::reliable(now)
            } else {
                RetransClock::new(now, method)
            };
            let timeout_response =
                bytes_from(gen::response(StatusCode::REQUEST_TIMEOUT, &msg, None, None).to_bytes());
            self.txn_index.insert(upstream_key.clone(), id);
            self.txn_index.insert(downstream_key.clone(), id);
            self.txns.insert(
                id,
                ProxyTxn {
                    upstream_key,
                    downstream_key,
                    caller_src: src,
                    caller_via,
                    callee_dst: dst,

                    fwd_bytes: fwd_bytes.clone(),
                    timeout_response,
                    last_response: None,
                    clock,
                    completed: false,
                    reap_at: None,
                    started: now,
                    policy_tracked,
                },
            );
            self.stats.txns_created += 1;
            self.active_txns += 1;
            plan.txn_created = true;
        }

        self.stats.forwards += 1;
        plan.out.push(Outgoing {
            bytes: fwd_bytes,
            dest: dst,
            alt: Some(binding.contact),
        });
        plan
    }

    fn handle_response(&mut self, now: SimTime, mut msg: SipMessage) -> Plan {
        self.stats.responses += 1;
        let mut plan = Plan::default();

        // Our Via must be on top; pop it.
        let ours = msg
            .vias
            .first()
            .is_some_and(|v| v.sent_by == self.via_sent_by);
        if !ours {
            self.stats.route_failures += 1;
            return plan;
        }
        let our_via = msg.vias.remove(0);
        let code = msg.status().expect("checked response");

        if !self.stateful {
            // Stateless: relay towards the next Via.
            let Some(dest) = msg.vias.first().and_then(|v| parse_sim_addr(&v.sent_by)) else {
                self.stats.route_failures += 1;
                return plan;
            };
            self.stats.forwards += 1;
            plan.out.push(Outgoing {
                bytes: bytes_from(msg.to_bytes()),
                dest,
                alt: Some(dest),
            });
            return plan;
        }

        let key = TxnKey {
            branch: our_via.branch,
            method: msg.cseq_method,
        };
        let Some(&id) = self.txn_index.get(&key) else {
            if msg.cseq_method == Method::Cancel {
                // The callee's 200 to our relayed CANCEL; we already
                // answered the caller ourselves.
                self.stats.cancel_responses_absorbed += 1;
            } else {
                // Late response for a reaped transaction: drop, like
                // OpenSER.
                self.stats.route_failures += 1;
            }
            return plan;
        };
        let bytes = bytes_from(msg.to_bytes());
        let txn = self.txns.get_mut(&id).expect("index is consistent");
        txn.last_response = Some(bytes.clone());
        if code.is_provisional() {
            // Provisional response: stop request retransmissions (Timer A),
            // keep the transaction alive.
            txn.clock.stop();
        } else {
            txn.clock.stop();
            if !txn.completed {
                txn.completed = true;
                self.active_txns -= 1;
                if txn.policy_tracked {
                    self.policy
                        .on_complete(now, txn.caller_src, now - txn.started);
                }
            }
            txn.reap_at = Some(now + self.txn_linger);
        }
        self.stats.forwards += 1;
        plan.out.push(Outgoing {
            bytes,
            dest: txn.caller_src,
            alt: txn.caller_via,
        });
        plan
    }

    /// One pass of the timer process: retransmit, time out, and reap. The
    /// caller holds the timer and transaction locks.
    pub fn timer_pass(&mut self, now: SimTime) -> TimerPass {
        let mut pass = TimerPass::default();
        let mut reap = Vec::new();
        let mut timeout = Vec::new();
        for (&id, txn) in self.txns.iter_mut() {
            pass.examined += 1;
            if let Some(at) = txn.reap_at {
                if at <= now {
                    reap.push(id);
                }
                continue;
            }
            match txn.clock.check(now) {
                TimerVerdict::Retransmit { .. } => {
                    pass.retransmits.push(Outgoing {
                        bytes: txn.fwd_bytes.clone(),
                        dest: txn.callee_dst,
                        alt: Some(txn.callee_dst),
                    });
                }
                TimerVerdict::TimedOut => {
                    pass.timeouts.push(Outgoing {
                        bytes: txn.timeout_response.clone(),
                        dest: txn.caller_src,
                        alt: txn.caller_via,
                    });
                    timeout.push(id);
                }
                TimerVerdict::Wait { .. } | TimerVerdict::Done => {}
            }
        }
        for id in timeout {
            let txn = self.txns.get_mut(&id).expect("looked up above");
            txn.completed = true;
            txn.clock.stop();
            txn.reap_at = Some(now + self.txn_linger);
            self.stats.txn_timeouts += 1;
            self.active_txns -= 1;
            if txn.policy_tracked {
                self.policy.on_timeout(now, txn.caller_src);
            }
        }
        for id in reap {
            if let Some(txn) = self.txns.remove(&id) {
                self.txn_index.remove(&txn.upstream_key);
                self.txn_index.remove(&txn.downstream_key);
                self.stats.txns_reaped += 1;
                pass.reaped += 1;
            }
        }
        self.stats.retransmits_sent += pass.retransmits.len() as u64;
        pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siperf_simnet::addr::HostId;
    use siperf_sip::gen::CallParty;
    use siperf_sip::parse::parse_message;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn core(transport: Transport, stateful: bool) -> ProxyCore {
        ProxyCore::new("h0:5060".into(), transport, stateful)
    }

    fn alice() -> CallParty {
        CallParty::new("alice", "h1:20001")
    }

    fn bob() -> CallParty {
        CallParty::new("bob", "h2:20002")
    }

    fn a_src() -> SockAddr {
        SockAddr::new(HostId(1), 33000)
    }

    fn b_src() -> SockAddr {
        SockAddr::new(HostId(2), 33001)
    }

    fn registered_core(transport: Transport, stateful: bool) -> ProxyCore {
        let mut c = core(transport, stateful);
        for (party, src) in [(alice(), a_src()), (bob(), b_src())] {
            let reg = gen::register(&party, "sip.lab", 1, "z9hG4bKreg", transport.token());
            let plan = c.handle_message(t(0), reg, src);
            assert!(plan.registered);
        }
        c
    }

    #[test]
    fn register_binds_contact_address() {
        let c = registered_core(Transport::Udp, true);
        assert_eq!(c.bindings(), 2);
        assert_eq!(
            c.contact_of("bob"),
            Some(SockAddr::new(HostId(2), 20002)),
            "binding comes from the Contact header"
        );
        assert_eq!(c.stats.registered, 2);
    }

    #[test]
    fn register_with_expires_zero_unbinds() {
        let mut c = registered_core(Transport::Udp, true);
        let mut reg = gen::register(&bob(), "sip.lab", 2, "z9hG4bKreg2", "UDP");
        reg.expires = Some(0);
        c.handle_message(t(1), reg, b_src());
        assert_eq!(c.contact_of("bob"), None);
        assert_eq!(c.bindings(), 1);
    }

    #[test]
    fn stateful_invite_sends_trying_and_forwards() {
        let mut c = registered_core(Transport::Udp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        let plan = c.handle_message(t(10), inv, a_src());
        assert!(plan.txn_created);
        assert_eq!(plan.out.len(), 2);
        // First the 100 Trying back to the caller…
        let trying = parse_message(&plan.out[0].bytes).unwrap();
        assert_eq!(trying.status(), Some(StatusCode::TRYING));
        assert_eq!(plan.out[0].dest, a_src());
        // …then the forward to bob's registered contact, with our Via on
        // top and the hop budget spent.
        let fwd = parse_message(&plan.out[1].bytes).unwrap();
        assert_eq!(fwd.method(), Some(Method::Invite));
        assert_eq!(fwd.vias.len(), 2);
        assert_eq!(fwd.vias[0].sent_by, "h0:5060");
        assert_eq!(fwd.max_forwards, 69);
        // Forwards prefer the connection the callee registered over (its
        // source address); the Contact address is the connect fallback.
        assert_eq!(plan.out[1].dest, b_src());
        assert_eq!(plan.out[1].alt, Some(SockAddr::new(HostId(2), 20002)));
        assert_eq!(c.live_txns(), 1);
    }

    #[test]
    fn stateless_invite_skips_trying_and_state() {
        let mut c = registered_core(Transport::Udp, false);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        let plan = c.handle_message(t(10), inv, a_src());
        assert!(!plan.txn_created);
        assert_eq!(plan.out.len(), 1, "no 100 Trying from a stateless proxy");
        assert_eq!(c.live_txns(), 0);
    }

    #[test]
    fn response_pops_via_and_returns_to_caller() {
        let mut c = registered_core(Transport::Udp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        let plan = c.handle_message(t(10), inv, a_src());
        let fwd = parse_message(&plan.out[1].bytes).unwrap();

        // Bob's phone answers with 180 then 200.
        let ringing = gen::response(StatusCode::RINGING, &fwd, Some("bt"), None);
        let plan = c.handle_message(t(11), ringing, b_src());
        assert_eq!(plan.out.len(), 1);
        let up = parse_message(&plan.out[0].bytes).unwrap();
        assert_eq!(up.status(), Some(StatusCode::RINGING));
        assert_eq!(up.vias.len(), 1, "proxy via popped");
        assert_eq!(up.vias[0].branch, "z9hG4bKa1");
        assert_eq!(plan.out[0].dest, a_src());

        let ok = gen::response(StatusCode::OK, &fwd, Some("bt"), None);
        let plan = c.handle_message(t(12), ok, b_src());
        assert_eq!(plan.out.len(), 1);
        assert_eq!(c.live_txns(), 1, "completed txn lingers until reaped");
    }

    #[test]
    fn invite_retransmission_is_absorbed_with_last_response() {
        let mut c = registered_core(Transport::Udp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        let plan1 = c.handle_message(t(10), inv.clone(), a_src());
        let fwd = parse_message(&plan1.out[1].bytes).unwrap();
        let ringing = gen::response(StatusCode::RINGING, &fwd, Some("bt"), None);
        c.handle_message(t(11), ringing, b_src());

        // The same INVITE again: absorbed, last response (180) resent.
        let plan2 = c.handle_message(t(12), inv, a_src());
        assert!(plan2.absorbed);
        assert_eq!(plan2.out.len(), 1);
        let resent = parse_message(&plan2.out[0].bytes).unwrap();
        assert_eq!(resent.status(), Some(StatusCode::RINGING));
        assert_eq!(c.stats.absorbed_retrans, 1);
        assert_eq!(c.stats.txns_created, 1, "no duplicate transaction");
    }

    #[test]
    fn ack_is_forwarded_statelessly() {
        let mut c = registered_core(Transport::Udp, true);
        let ack = gen::ack(&alice(), &bob(), "sip.lab", "c1", "bt", "z9hG4bKack", "UDP");
        let before = c.live_txns();
        let plan = c.handle_message(t(20), ack, a_src());
        assert_eq!(plan.out.len(), 1);
        assert!(!plan.txn_created);
        assert_eq!(c.live_txns(), before);
        let fwd = parse_message(&plan.out[0].bytes).unwrap();
        assert_eq!(fwd.method(), Some(Method::Ack));
        assert_eq!(fwd.vias.len(), 2);
    }

    #[test]
    fn unregistered_callee_gets_404() {
        let mut c = core(Transport::Udp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        let plan = c.handle_message(t(10), inv, a_src());
        assert_eq!(plan.out.len(), 1);
        let resp = parse_message(&plan.out[0].bytes).unwrap();
        assert_eq!(resp.status(), Some(StatusCode::NOT_FOUND));
        assert_eq!(c.stats.route_failures, 1);
    }

    #[test]
    fn hop_limit_exhaustion_is_rejected() {
        let mut c = registered_core(Transport::Udp, true);
        let mut inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        inv.max_forwards = 0;
        let plan = c.handle_message(t(10), inv, a_src());
        assert_eq!(plan.out.len(), 1);
        let resp = parse_message(&plan.out[0].bytes).unwrap();
        assert_eq!(resp.status(), Some(StatusCode::SERVER_ERROR));
    }

    #[test]
    fn udp_transactions_retransmit_until_response() {
        let mut c = registered_core(Transport::Udp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        c.handle_message(t(0), inv, a_src());
        // T1 later: one retransmission of the stored forward.
        let pass = c.timer_pass(t(500));
        assert_eq!(pass.retransmits.len(), 1);
        assert_eq!(pass.retransmits[0].dest, b_src());
        // Doubling: nothing due yet at 600 ms.
        let pass = c.timer_pass(t(600));
        assert!(pass.retransmits.is_empty());
        let pass = c.timer_pass(t(1500));
        assert_eq!(pass.retransmits.len(), 1);
        assert_eq!(c.stats.retransmits_sent, 2);
    }

    #[test]
    fn tcp_transactions_never_retransmit() {
        let mut c = registered_core(Transport::Tcp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "TCP");
        c.handle_message(t(0), inv, a_src());
        let pass = c.timer_pass(t(5_000));
        assert!(pass.retransmits.is_empty(), "TCP retransmits for us");
    }

    #[test]
    fn transaction_timeout_produces_408_and_reap() {
        let mut c = registered_core(Transport::Udp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        c.handle_message(t(0), inv, a_src());
        let pass = c.timer_pass(t(32_000));
        assert_eq!(pass.timeouts.len(), 1);
        let resp = parse_message(&pass.timeouts[0].bytes).unwrap();
        assert_eq!(resp.status(), Some(StatusCode::REQUEST_TIMEOUT));
        assert_eq!(pass.timeouts[0].dest, a_src());
        assert_eq!(c.stats.txn_timeouts, 1);
        // After the linger, the transaction is reaped.
        let pass = c.timer_pass(t(40_000));
        assert_eq!(pass.reaped, 1);
        assert_eq!(c.live_txns(), 0);
    }

    #[test]
    fn completed_transactions_reap_after_linger() {
        let mut c = registered_core(Transport::Udp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        let plan = c.handle_message(t(0), inv, a_src());
        let fwd = parse_message(&plan.out[1].bytes).unwrap();
        let ok = gen::response(StatusCode::OK, &fwd, Some("bt"), None);
        c.handle_message(t(100), ok, b_src());
        assert_eq!(c.live_txns(), 1);
        let pass = c.timer_pass(t(6_000));
        assert_eq!(pass.reaped, 1);
        assert_eq!(c.live_txns(), 0);
        // A straggler response for the reaped transaction is dropped.
        let late = gen::response(StatusCode::OK, &fwd, Some("bt"), None);
        let plan = c.handle_message(t(7_000), late, b_src());
        assert!(plan.out.is_empty());
    }

    #[test]
    fn response_without_our_via_is_dropped() {
        let mut c = registered_core(Transport::Udp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        let ok = gen::response(StatusCode::OK, &inv, Some("bt"), None);
        let plan = c.handle_message(t(0), ok, b_src());
        assert!(plan.out.is_empty());
        assert_eq!(c.stats.route_failures, 1);
    }

    #[test]
    fn overloaded_core_sheds_invites_with_503() {
        use siperf_overload::QueueThreshold;
        let mut c = registered_core(Transport::Udp, true);
        // Shed at 1 active transaction, resume at 0.
        c.set_overload_policy(Box::new(QueueThreshold::new(1, 0, 3)));
        assert_eq!(c.overload_policy_name(), "queue-threshold");

        // First INVITE admitted (level 0 < high).
        let inv1 = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        let plan = c.handle_message(t(0), inv1.clone(), a_src());
        assert!(plan.txn_created && !plan.rejected);
        let fwd = parse_message(&plan.out[1].bytes).unwrap();

        // Second INVITE: one transaction pending → 503 with Retry-After,
        // no transaction, nothing forwarded downstream.
        let inv2 = gen::invite(&bob(), &alice(), "sip.lab", "c2", "z9hG4bKa2", "UDP");
        let plan = c.handle_message(t(1), inv2.clone(), b_src());
        assert!(plan.rejected && !plan.txn_created);
        assert_eq!(plan.out.len(), 1);
        let resp = parse_message(&plan.out[0].bytes).unwrap();
        assert_eq!(resp.status(), Some(StatusCode::SERVICE_UNAVAILABLE));
        assert_eq!(resp.retry_after, Some(3));
        assert_eq!(plan.out[0].dest, b_src());
        assert_eq!(c.stats.overload_rejections, 1);
        assert_eq!(c.live_txns(), 1);

        // The admitted call completes; the level drains and admission
        // resumes — the policy saw exactly one on_complete for its Admit.
        let ok = gen::response(StatusCode::OK, &fwd, Some("bt"), None);
        c.handle_message(t(2), ok, b_src());
        assert_eq!(c.load_signals().active_txns, 0);
        let plan = c.handle_message(t(3), inv2, b_src());
        assert!(plan.txn_created && !plan.rejected);
    }

    #[test]
    fn shedding_never_touches_in_call_requests() {
        use siperf_overload::QueueThreshold;
        let mut c = registered_core(Transport::Udp, true);
        c.set_overload_policy(Box::new(QueueThreshold::new(0, 0, 1)));
        // Every INVITE is shed…
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        assert!(c.handle_message(t(0), inv, a_src()).rejected);
        // …but ACK, BYE, and REGISTER still pass: they are not new calls.
        let ack = gen::ack(&alice(), &bob(), "sip.lab", "c0", "bt", "z9hG4bKk", "UDP");
        assert!(!c.handle_message(t(1), ack, a_src()).rejected);
        let bye = gen::bye(&alice(), &bob(), "sip.lab", "c0", "bt", "z9hG4bKb", "UDP");
        let plan = c.handle_message(t(2), bye, a_src());
        assert!(!plan.rejected && plan.txn_created);
        let reg = gen::register(&alice(), "sip.lab", 2, "z9hG4bKr2", "UDP");
        assert!(c.handle_message(t(3), reg, a_src()).registered);
    }

    #[test]
    fn fast_path_sheds_from_the_request_line() {
        use siperf_overload::QueueThreshold;
        let mut c = registered_core(Transport::Udp, true);
        c.set_overload_policy(Box::new(QueueThreshold::new(0, 0, 5)));
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        let FastAdmission::Shed(plan) = c.fast_admission(t(0), &inv, a_src()) else {
            panic!("shed-everything policy must refuse on the fast path");
        };
        assert!(plan.rejected && !plan.txn_created);
        let resp = parse_message(&plan.out[0].bytes).unwrap();
        assert_eq!(resp.status(), Some(StatusCode::SERVICE_UNAVAILABLE));
        assert_eq!(resp.retry_after, Some(5));
        assert_eq!(plan.out[0].dest, a_src());
        assert_eq!(c.stats.overload_rejections, 1);
        assert_eq!(c.live_txns(), 0, "no transaction for a shed call");
    }

    #[test]
    fn fast_path_skips_retransmissions_and_unroutable_requests() {
        use siperf_overload::QueueThreshold;
        let mut c = registered_core(Transport::Udp, true);
        c.set_overload_policy(Box::new(QueueThreshold::new(1, 0, 3)));

        // First INVITE: admitted on the fast path, then routed.
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        assert!(matches!(
            c.fast_admission(t(0), &inv, a_src()),
            FastAdmission::Admitted
        ));
        assert!(c.handle_message(t(0), inv.clone(), a_src()).txn_created);

        // Its retransmission must be absorbed, never 503'd — even though
        // the policy is now shedding (level 1 ≥ high 1).
        assert!(matches!(
            c.fast_admission(t(1), &inv, a_src()),
            FastAdmission::NotEligible
        ));
        assert!(c.handle_message(t(1), inv, a_src()).absorbed);

        // Unknown callees fall through for their 404.
        let nobody = gen::invite(
            &alice(),
            &CallParty::new("nobody", "h9:29999"),
            "sip.lab",
            "c2",
            "z9hG4bKa2",
            "UDP",
        );
        assert!(matches!(
            c.fast_admission(t(2), &nobody, a_src()),
            FastAdmission::NotEligible
        ));

        // Non-INVITEs are never policy business.
        let bye = gen::bye(&alice(), &bob(), "sip.lab", "c0", "bt", "z9hG4bKb", "UDP");
        assert!(matches!(
            c.fast_admission(t(3), &bye, a_src()),
            FastAdmission::NotEligible
        ));
    }

    #[test]
    fn fast_path_grant_is_consumed_exactly_once() {
        use siperf_overload::QueueThreshold;
        let mut c = registered_core(Transport::Udp, true);
        c.set_overload_policy(Box::new(QueueThreshold::new(1, 0, 3)));
        let inv1 = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        assert!(matches!(
            c.fast_admission(t(0), &inv1, a_src()),
            FastAdmission::Admitted
        ));
        assert!(c.handle_message(t(0), inv1, a_src()).txn_created);
        // The grant died with that call: a second INVITE routed without
        // the fast path still faces the (now shedding) policy.
        let inv2 = gen::invite(&bob(), &alice(), "sip.lab", "c2", "z9hG4bKa2", "UDP");
        let plan = c.handle_message(t(1), inv2, b_src());
        assert!(plan.rejected && !plan.txn_created);
    }

    #[test]
    fn fast_path_admissions_count_once_against_a_window() {
        use siperf_overload::WindowFeedback;
        let mut c = registered_core(Transport::Udp, true);
        // Window of 8: if the fast path and the full path each charged the
        // window for the same INVITE, the 5th call would already be shed.
        c.set_overload_policy(Box::new(WindowFeedback::new(usize::MAX, 1)));
        for i in 0..8 {
            let inv = gen::invite(
                &alice(),
                &bob(),
                "sip.lab",
                &format!("c{i}"),
                &format!("z9hG4bKa{i}"),
                "UDP",
            );
            assert!(
                matches!(
                    c.fast_admission(t(i), &inv, a_src()),
                    FastAdmission::Admitted
                ),
                "call {i} fits the window of 8"
            );
            assert!(c.handle_message(t(i), inv, a_src()).txn_created);
        }
        let inv9 = gen::invite(&alice(), &bob(), "sip.lab", "c9", "z9hG4bKa9", "UDP");
        assert!(
            matches!(
                c.fast_admission(t(9), &inv9, a_src()),
                FastAdmission::Shed(_)
            ),
            "window exhausted only at its true size"
        );
    }

    #[test]
    fn timeouts_drain_the_active_count() {
        let mut c = registered_core(Transport::Udp, true);
        let inv = gen::invite(&alice(), &bob(), "sip.lab", "c1", "z9hG4bKa1", "UDP");
        c.handle_message(t(0), inv, a_src());
        assert_eq!(c.load_signals().active_txns, 1);
        c.timer_pass(t(32_000));
        assert_eq!(c.load_signals().active_txns, 0, "timeout completes it");
        // Reaping later must not double-decrement.
        c.timer_pass(t(40_000));
        assert_eq!(c.load_signals().active_txns, 0);
    }

    #[test]
    fn worker_backlog_reports_feed_the_load_signal() {
        let mut c = core(Transport::Tcp, true);
        c.note_worker_backlog(0, 7);
        c.note_worker_backlog(3, 5);
        assert_eq!(c.load_signals().worker_backlog, 12);
        c.note_worker_backlog(3, 0);
        assert_eq!(c.load_signals().worker_backlog, 7);
    }

    #[test]
    fn full_call_flow_counts_check_out() {
        let mut c = registered_core(Transport::Udp, true);
        let (al, bo) = (alice(), bob());

        // INVITE transaction.
        let inv = gen::invite(&al, &bo, "sip.lab", "c9", "z9hG4bKi", "UDP");
        let p = c.handle_message(t(0), inv, a_src());
        let fwd_inv = parse_message(&p.out[1].bytes).unwrap();
        c.handle_message(
            t(1),
            gen::response(StatusCode::RINGING, &fwd_inv, Some("bt"), None),
            b_src(),
        );
        c.handle_message(
            t(2),
            gen::response(StatusCode::OK, &fwd_inv, Some("bt"), None),
            b_src(),
        );
        c.handle_message(
            t(3),
            gen::ack(&al, &bo, "sip.lab", "c9", "bt", "z9hG4bKk", "UDP"),
            a_src(),
        );

        // BYE transaction.
        let bye = gen::bye(&al, &bo, "sip.lab", "c9", "bt", "z9hG4bKb", "UDP");
        let p = c.handle_message(t(4), bye, a_src());
        let fwd_bye = parse_message(&p.out.last().unwrap().bytes).unwrap();
        assert_eq!(fwd_bye.method(), Some(Method::Bye));
        assert_eq!(p.out.len(), 1, "no Trying for BYE");
        c.handle_message(
            t(5),
            gen::response(StatusCode::OK, &fwd_bye, None, None),
            b_src(),
        );

        assert_eq!(c.stats.txns_created, 2);
        // Forwards: INVITE, RINGING, OK, ACK, BYE, OK = 6.
        assert_eq!(c.stats.forwards, 6);
        assert_eq!(c.stats.absorbed_retrans, 0);
    }
}
