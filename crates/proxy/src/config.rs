//! Proxy configuration: everything the paper varies, in one builder.

use siperf_overload::OverloadConfig;
use siperf_simcore::time::SimDuration;
use siperf_simos::process::Nice;

/// The network transport the proxy speaks with its phones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// Connectionless datagrams — the symmetric-worker architecture (§3.2).
    Udp,
    /// Connection-oriented streams — the supervisor/worker architecture
    /// (§3.1).
    Tcp,
    /// Message-oriented associations managed by the kernel — the §6
    /// alternative that keeps the UDP architecture on a reliable transport.
    Sctp,
}

impl Transport {
    /// The Via transport token.
    pub fn token(self) -> &'static str {
        match self {
            Transport::Udp => "UDP",
            Transport::Tcp => "TCP",
            Transport::Sctp => "SCTP",
        }
    }

    /// Whether the transport retransmits for us.
    pub fn is_reliable(self) -> bool {
        !matches!(self, Transport::Udp)
    }
}

/// Concurrency architecture (§6 discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// OpenSER as shipped: worker *processes*; under TCP, descriptors must
    /// be passed through the supervisor over IPC.
    MultiProcess,
    /// The §6 proposal: worker *threads* sharing one descriptor table; no
    /// fd-passing IPC, locks retained.
    MultiThread,
}

/// How idle TCP connections are found and closed (§5.2 vs §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IdleStrategy {
    /// OpenSER baseline: periodically walk every connection object in the
    /// shared hash table under its lock.
    LinearScan,
    /// The paper's fix: timeout-ordered priority queues (a shared one for
    /// the supervisor, a local one per worker) so only expired connections
    /// are visited.
    PriorityQueue,
}

/// Application-level CPU costs (nanoseconds) charged by proxy code on top
/// of the kernel's syscall costs. Calibrated so the UDP saturation
/// throughput lands in the paper's range on four cores.
#[derive(Debug, Clone)]
pub struct AppCostModel {
    /// Fixed cost of parsing any message.
    pub parse_base: u64,
    /// Additional parse cost per byte of message.
    pub parse_per_byte: u64,
    /// Transaction-table work for a request (key hash, insert/match).
    pub route_request: u64,
    /// Transaction-table work for a response (match, state update).
    pub route_response: u64,
    /// Location-service lookup (usrloc cache hit).
    pub usrloc_lookup: u64,
    /// Building + serializing one outgoing message.
    pub build_message: u64,
    /// Shedding an INVITE on the pre-parse fast path: request-line sniff,
    /// policy check, canned 503. Must stay far below the full
    /// parse/route/build pipeline — rejection that costs a significant
    /// fraction of serving burns the capacity the policy is defending.
    pub shed_fast: u64,
    /// Inserting a retransmission timer into the shared list.
    pub timer_insert: u64,
    /// Timer-process cost to examine one timer entry.
    pub timer_scan_entry: u64,
    /// Linear-scan cost per connection object examined.
    pub idle_scan_entry: u64,
    /// Priority-queue reposition on connection use.
    pub pq_update: u64,
    /// Priority-queue pop of one expired connection.
    pub pq_pop: u64,
    /// Per-worker fd-cache probe.
    pub fd_cache_lookup: u64,
    /// Connection-table hash lookup/insert.
    pub conn_table_op: u64,
}

impl AppCostModel {
    /// The calibration used for paper reproduction.
    pub fn opteron_2006() -> Self {
        AppCostModel {
            parse_base: 3_500,
            parse_per_byte: 20,
            route_request: 8_000,
            route_response: 5_500,
            usrloc_lookup: 3_000,
            build_message: 3_500,
            shed_fast: 1_800,
            timer_insert: 1_200,
            timer_scan_entry: 150,
            idle_scan_entry: 600,
            pq_update: 250,
            pq_pop: 400,
            fd_cache_lookup: 350,
            conn_table_op: 1_100,
        }
    }

    /// Parse cost for a message of `len` bytes.
    pub fn parse_cost(&self, len: usize) -> u64 {
        self.parse_base + self.parse_per_byte * len as u64
    }
}

impl Default for AppCostModel {
    fn default() -> Self {
        Self::opteron_2006()
    }
}

/// Full proxy configuration. Defaults reproduce the paper's §4.3 setup:
/// stateful proxy, 24 UDP / 32 TCP workers, supervisor at nice −20, 10 s
/// idle timeout, linear scan, no fd cache (the Figure 3 baseline).
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Transport protocol.
    pub transport: Transport,
    /// Process vs thread architecture.
    pub arch: Arch,
    /// Worker count (`None` = the paper's per-transport default).
    pub workers: Option<usize>,
    /// Stateful (absorb retransmissions, send 100 Trying) or stateless.
    pub stateful: bool,
    /// Per-worker descriptor cache (§5.2 fix).
    pub fd_cache: bool,
    /// Idle-connection management strategy (§5.3 fix).
    pub idle_strategy: IdleStrategy,
    /// How long an unused connection may stay open.
    pub idle_timeout: SimDuration,
    /// Supervisor scheduling priority (§4.3: −20 avoids starvation).
    pub supervisor_nice: Nice,
    /// Worker scheduling priority.
    pub worker_nice: Nice,
    /// IPC channel depth (messages per direction) between supervisor and
    /// each worker.
    pub ipc_capacity: usize,
    /// Minimum gap between a worker's idle hunts. OpenSER checks timeouts
    /// from the main loop, so hunts happen roughly once per event batch;
    /// this floor only bounds the pathological case.
    pub idle_check_interval: SimDuration,
    /// Minimum gap between the supervisor's walks of the shared table.
    /// OpenSER's tcp_main re-checks timeouts every loop pass — the
    /// frequency that makes the §5.2 linear scan explode as the table
    /// grows.
    pub supervisor_scan_interval: SimDuration,
    /// Timer-process tick for retransmissions and transaction reaping.
    pub timer_tick: SimDuration,
    /// How long a completed transaction lingers before it is reaped.
    pub txn_linger: SimDuration,
    /// Application-level cost calibration.
    pub app_costs: AppCostModel,
    /// Overload-control policy consulted before each INVITE transaction.
    /// The paper's proxy has none; the beyond-the-knee experiments select
    /// one to keep goodput from collapsing past saturation.
    pub overload: OverloadConfig,
}

impl ProxyConfig {
    /// The paper's configuration for a given transport.
    pub fn paper(transport: Transport) -> Self {
        ProxyConfig {
            transport,
            arch: Arch::MultiProcess,
            workers: None,
            stateful: true,
            fd_cache: false,
            idle_strategy: IdleStrategy::LinearScan,
            idle_timeout: SimDuration::from_secs(10),
            supervisor_nice: Nice::HIGHEST,
            worker_nice: Nice::NORMAL,
            ipc_capacity: 256,
            idle_check_interval: SimDuration::from_millis(100),
            supervisor_scan_interval: SimDuration::from_millis(2),
            timer_tick: SimDuration::from_millis(500),
            txn_linger: SimDuration::from_secs(5),
            app_costs: AppCostModel::opteron_2006(),
            overload: OverloadConfig::NoControl,
        }
    }

    /// Worker count: explicit override or the paper's defaults (24 for
    /// UDP/SCTP, 32 for TCP — §4.3).
    pub fn worker_count(&self) -> usize {
        self.workers.unwrap_or(match self.transport {
            Transport::Udp | Transport::Sctp => 24,
            Transport::Tcp => 32,
        })
    }

    /// Applies the paper's §5.2 file-descriptor-cache fix.
    pub fn with_fd_cache(mut self) -> Self {
        self.fd_cache = true;
        self
    }

    /// Applies the paper's §5.3 priority-queue fix.
    pub fn with_priority_queue(mut self) -> Self {
        self.idle_strategy = IdleStrategy::PriorityQueue;
        self
    }

    /// Selects an overload-control policy.
    pub fn with_overload(mut self, overload: OverloadConfig) -> Self {
        self.overload = overload;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4_3() {
        let udp = ProxyConfig::paper(Transport::Udp);
        assert_eq!(udp.worker_count(), 24);
        assert!(udp.stateful);
        assert!(!udp.fd_cache);
        assert_eq!(udp.idle_timeout, SimDuration::from_secs(10));
        let tcp = ProxyConfig::paper(Transport::Tcp);
        assert_eq!(tcp.worker_count(), 32);
        assert_eq!(tcp.supervisor_nice, Nice::HIGHEST);
        assert_eq!(tcp.idle_strategy, IdleStrategy::LinearScan);
    }

    #[test]
    fn fix_builders_compose() {
        let fixed = ProxyConfig::paper(Transport::Tcp)
            .with_fd_cache()
            .with_priority_queue();
        assert!(fixed.fd_cache);
        assert_eq!(fixed.idle_strategy, IdleStrategy::PriorityQueue);
    }

    #[test]
    fn overload_defaults_off_and_composes() {
        let base = ProxyConfig::paper(Transport::Udp);
        assert!(!base.overload.is_active(), "paper proxy has no control");
        let controlled = base.with_overload(OverloadConfig::queue_threshold_default());
        assert_eq!(controlled.overload.token(), "queue-threshold");
    }

    #[test]
    fn worker_override() {
        let mut c = ProxyConfig::paper(Transport::Udp);
        c.workers = Some(4);
        assert_eq!(c.worker_count(), 4);
    }

    #[test]
    fn transport_properties() {
        assert!(!Transport::Udp.is_reliable());
        assert!(Transport::Tcp.is_reliable());
        assert!(Transport::Sctp.is_reliable());
        assert_eq!(Transport::Tcp.token(), "TCP");
    }

    #[test]
    fn parse_cost_scales_with_length() {
        let c = AppCostModel::opteron_2006();
        assert!(c.parse_cost(800) > c.parse_cost(200));
        assert_eq!(c.parse_cost(0), c.parse_base);
    }

    #[test]
    fn shed_fast_is_far_cheaper_than_the_full_rejection_path() {
        // An overload policy only defends goodput if refusing a call is
        // nearly free relative to serving one: at 2× overload the admitted
        // rate is (capacity − offered·x)/(1 − x) for rejection/serve cost
        // ratio x, so x must stay under ~0.1 for the policy to hold ~90%
        // of its peak.
        let c = AppCostModel::opteron_2006();
        let full_reject = c.parse_cost(500) + c.route_request + c.usrloc_lookup + c.build_message;
        assert!(c.shed_fast * 10 <= full_reject);
    }
}
