//! The UDP worker (§3.2): the symmetric architecture.
//!
//! Every worker runs the same loop on the same inherited socket: receive a
//! datagram, parse it, match or create the transaction under the shared
//! lock, look up the route, and send — no connection management, no
//! supervisor, no descriptor passing. Any worker can receive from any phone
//! and send to any phone.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use siperf_simos::process::{Process, ResumeCtx};
use siperf_simos::syscall::{Fd, SysResult, Syscall};
use siperf_sip::parse::parse_message;

use crate::config::{AppCostModel, Transport};
use crate::core::{FastAdmission, ProxyCore};
use crate::plumbing::{routing_script, Locks};

/// One symmetric UDP worker process.
pub struct UdpWorker {
    core: Rc<RefCell<ProxyCore>>,
    costs: AppCostModel,
    locks: Locks,
    /// Filled by the spawner after fork-inheritance of the shared socket.
    fd_slot: Rc<Cell<Option<Fd>>>,
    fd: Fd,
    script: VecDeque<Syscall>,
}

impl UdpWorker {
    /// Creates a worker; `fd_slot` must be filled (via
    /// [`siperf_simos::kernel::Kernel::setup_shared_udp`]) before the
    /// simulation runs.
    pub fn new(
        core: Rc<RefCell<ProxyCore>>,
        costs: AppCostModel,
        locks: Locks,
        fd_slot: Rc<Cell<Option<Fd>>>,
    ) -> Self {
        UdpWorker {
            core,
            costs,
            locks,
            fd_slot,
            fd: Fd(u32::MAX),
            script: VecDeque::new(),
        }
    }

    fn recv(&self) -> Syscall {
        Syscall::UdpRecv { fd: self.fd }
    }
}

impl Process for UdpWorker {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        if let SysResult::Err(_) = last {
            // Only sends can fail in this loop; count and continue.
            self.core.borrow_mut().stats.send_errors += 1;
        }
        if let Some(next) = self.script.pop_front() {
            return next;
        }
        match last {
            SysResult::Start => {
                self.fd = self
                    .fd_slot
                    .get()
                    .expect("shared SIP socket installed before run");
                self.recv()
            }
            SysResult::Datagram { from, data } => {
                let parse_ns = self.costs.parse_cost(data.len());
                match parse_message(&data) {
                    Err(_) => {
                        self.core.borrow_mut().stats.parse_errors += 1;
                        self.script.push_back(Syscall::Compute {
                            ns: parse_ns,
                            tag: crate::plumbing::tags::PARSE,
                        });
                    }
                    Ok(msg) => {
                        let was_request = msg.is_request();
                        // Overload-signal hook: UDP workers hold at most one
                        // datagram at a time — the backlog lives in the
                        // kernel socket buffer where OpenSER cannot see it,
                        // so the policy gets only the transaction count.
                        let mut core = self.core.borrow_mut();
                        if let FastAdmission::Shed(plan) = core.fast_admission(ctx.now, &msg, from)
                        {
                            // Shed fast path: the request line alone
                            // identified a refusable INVITE, so skip the
                            // parse/route/build pipeline and charge only
                            // the sniff + canned 503.
                            drop(core);
                            self.script.push_back(Syscall::Compute {
                                ns: self.costs.shed_fast,
                                tag: crate::plumbing::tags::SHED_FAST,
                            });
                            for out in plan.out {
                                self.script.push_back(Syscall::UdpSend {
                                    fd: self.fd,
                                    to: out.dest,
                                    data: out.bytes,
                                });
                            }
                            return self.script.pop_front().expect("shed plan has a 503");
                        }
                        let plan = core.handle_message(ctx.now, msg, from);
                        drop(core);
                        routing_script(
                            &mut self.script,
                            &self.costs,
                            &self.locks,
                            Transport::Udp,
                            parse_ns,
                            was_request,
                            &plan,
                        );
                        for out in plan.out {
                            self.script.push_back(Syscall::UdpSend {
                                fd: self.fd,
                                to: out.dest,
                                data: out.bytes,
                            });
                        }
                    }
                }
                self.script.pop_front().expect("script never empty here")
            }
            // Script drained (or a send completed): back to the loop top.
            _ => self.recv(),
        }
    }
}
