//! The shared TCP connection table and the two idle-management strategies.
//!
//! OpenSER keeps an application-level *connection object* for every TCP
//! connection in a shared hash table guarded by one lock (§3.1). Finding
//! idle connections is the second bottleneck the paper identifies (§5.2):
//! the baseline walks **every** object under that lock, while §5.3's fix
//! keeps objects in timeout-ordered **priority queues** so only expired
//! ones are visited.
//!
//! Both strategies are implemented here as pure data structures; the
//! supervisor and worker processes charge lock and CPU costs around them.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::addr::SockAddr;

/// Identifies a connection object in the shared table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u64);

/// One application-level TCP connection object.
#[derive(Debug, Clone)]
pub struct ConnObj {
    /// Table id.
    pub id: ConnId,
    /// Remote address (phone side).
    pub peer: SockAddr,
    /// Index of the worker that owns reads on this connection.
    pub owner: usize,
    /// Last time a message moved on this connection.
    pub last_used: SimTime,
    /// When the owning worker handed the connection back (second phase of
    /// the two-step close, §3.1).
    pub returned_at: Option<SimTime>,
    /// Bumped on every touch; lets heap entries detect staleness.
    pub stamp: u64,
}

impl ConnObj {
    /// When this connection (if never touched again) becomes idle.
    pub fn expires_at(&self, timeout: SimDuration) -> SimTime {
        match self.returned_at {
            Some(at) => at + timeout,
            None => self.last_used + timeout,
        }
    }
}

/// The shared hash table of connection objects plus the supervisor's
/// shared priority queue.
#[derive(Debug, Default)]
pub struct ConnTable {
    by_id: HashMap<u64, ConnObj>,
    by_peer: HashMap<SockAddr, u64>,
    next: u64,
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>, // (expire, id, stamp)
    /// When false (the baseline linear-scan deployment), the heap is not
    /// maintained and costs nothing.
    use_heap: bool,
}

/// Result of one idle hunt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdleHunt {
    /// Connections whose owner should return them (active but idle).
    pub to_return: Vec<ConnId>,
    /// Connections the supervisor can destroy (returned long enough ago).
    pub to_destroy: Vec<ConnId>,
    /// Entries examined (hash-table walk length, or heap pops including
    /// stale ones) — drives the CPU cost of the pass.
    pub examined: u64,
}

impl ConnTable {
    /// Creates an empty table for the baseline linear-scan strategy.
    pub fn new() -> Self {
        ConnTable::default()
    }

    /// Creates a table that also maintains the shared priority queue
    /// (the §5.3 strategy).
    pub fn with_priority_queue() -> Self {
        ConnTable {
            use_heap: true,
            ..ConnTable::default()
        }
    }

    /// Number of live connection objects.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Inserts a new connection object, making it the freshest route to
    /// `peer`.
    pub fn insert(
        &mut self,
        now: SimTime,
        peer: SockAddr,
        owner: usize,
        timeout: SimDuration,
    ) -> ConnId {
        let id = ConnId(self.next);
        self.next += 1;
        let obj = ConnObj {
            id,
            peer,
            owner,
            last_used: now,
            returned_at: None,
            stamp: 0,
        };
        if self.use_heap {
            self.heap
                .push(Reverse((obj.expires_at(timeout), id.0, obj.stamp)));
        }
        self.by_id.insert(id.0, obj);
        self.by_peer.insert(peer, id.0);
        id
    }

    /// The freshest *usable* connection to `peer`: a connection whose owner
    /// has already returned it is half-closed (nobody reads it any more) and
    /// must not be selected for sends, as OpenSER's state check ensures.
    pub fn lookup_peer(&self, peer: SockAddr) -> Option<ConnId> {
        let &id = self.by_peer.get(&peer)?;
        let obj = self.by_id.get(&id)?;
        if obj.returned_at.is_some() {
            return None;
        }
        Some(ConnId(id))
    }

    /// Reads a connection object.
    pub fn get(&self, id: ConnId) -> Option<&ConnObj> {
        self.by_id.get(&id.0)
    }

    /// Marks activity on a connection, repositioning it in the priority
    /// queue (the §5.3 per-message cost the workers pay).
    pub fn touch(&mut self, id: ConnId, now: SimTime, timeout: SimDuration) {
        if let Some(obj) = self.by_id.get_mut(&id.0) {
            obj.last_used = now;
            obj.returned_at = None;
            obj.stamp += 1;
            if self.use_heap {
                self.heap
                    .push(Reverse((obj.expires_at(timeout), id.0, obj.stamp)));
            }
        }
    }

    /// Records that the owning worker closed its descriptor and returned
    /// the connection to the supervisor.
    pub fn mark_returned(&mut self, id: ConnId, now: SimTime, timeout: SimDuration) {
        if let Some(obj) = self.by_id.get_mut(&id.0) {
            obj.returned_at = Some(now);
            obj.stamp += 1;
            if self.use_heap {
                self.heap
                    .push(Reverse((obj.expires_at(timeout), id.0, obj.stamp)));
            }
        }
    }

    /// Connections currently owned (not yet returned) by `worker`, in id
    /// order — the supervisor uses this to re-assign a respawned worker's
    /// orphaned connections deterministically.
    pub fn owned_by(&self, worker: usize) -> Vec<ConnId> {
        let mut ids: Vec<ConnId> = self
            .by_id
            .values()
            .filter(|o| o.owner == worker && o.returned_at.is_none())
            .map(|o| o.id)
            .collect();
        ids.sort();
        ids
    }

    /// Destroys a connection object.
    pub fn remove(&mut self, id: ConnId) -> Option<ConnObj> {
        let obj = self.by_id.remove(&id.0)?;
        if self.by_peer.get(&obj.peer) == Some(&id.0) {
            self.by_peer.remove(&obj.peer);
        }
        Some(obj)
    }

    /// The baseline idle hunt (§3.1): walk **every** object in the table.
    /// `examined` equals the table size — the cost the paper measured
    /// exploding under the 50 ops/connection workload.
    pub fn hunt_linear(&self, now: SimTime, timeout: SimDuration) -> IdleHunt {
        let mut hunt = IdleHunt::default();
        let mut ids: Vec<&ConnObj> = self.by_id.values().collect();
        // Deterministic order for reproducibility.
        ids.sort_by_key(|o| o.id);
        for obj in ids {
            hunt.examined += 1;
            if obj.expires_at(timeout) > now {
                continue;
            }
            match obj.returned_at {
                Some(_) => hunt.to_destroy.push(obj.id),
                None => hunt.to_return.push(obj.id),
            }
        }
        hunt
    }

    /// The §5.3 idle hunt: pop the priority queue until the head has not
    /// expired. Stale entries (superseded by a later touch) cost one pop
    /// each but nothing more. Connections that are due but still owned are
    /// reported for return and reinserted, exactly as the paper describes
    /// the supervisor doing.
    pub fn hunt_priority_queue(&mut self, now: SimTime, timeout: SimDuration) -> IdleHunt {
        let mut hunt = IdleHunt::default();
        let mut reinsert = Vec::new();
        while let Some(&Reverse((expires, id, stamp))) = self.heap.peek() {
            if expires > now {
                break;
            }
            self.heap.pop();
            hunt.examined += 1;
            let Some(obj) = self.by_id.get(&id) else {
                continue; // destroyed; stale entry
            };
            if obj.stamp != stamp {
                continue; // touched since; a fresher entry exists
            }
            match obj.returned_at {
                Some(_) => hunt.to_destroy.push(ConnId(id)),
                None => {
                    hunt.to_return.push(ConnId(id));
                    // The supervisor cannot destroy an owned connection;
                    // it reinserts and waits for the worker to return it.
                    reinsert.push(Reverse((now + timeout, id, stamp)));
                }
            }
        }
        self.heap.extend(reinsert);
        hunt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use siperf_simnet::addr::HostId;

    const TIMEOUT: SimDuration = SimDuration::from_secs(10);

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn peer(n: u16) -> SockAddr {
        SockAddr::new(HostId(1), 30000 + n)
    }

    #[test]
    fn insert_lookup_remove() {
        let mut tab = ConnTable::new();
        let id = tab.insert(t(0), peer(1), 0, TIMEOUT);
        assert_eq!(tab.lookup_peer(peer(1)), Some(id));
        assert_eq!(tab.get(id).unwrap().owner, 0);
        assert_eq!(tab.len(), 1);
        let obj = tab.remove(id).unwrap();
        assert_eq!(obj.peer, peer(1));
        assert_eq!(tab.lookup_peer(peer(1)), None);
        assert!(tab.is_empty());
    }

    #[test]
    fn newer_connection_supersedes_peer_route() {
        let mut tab = ConnTable::new();
        let old = tab.insert(t(0), peer(1), 0, TIMEOUT);
        let new = tab.insert(t(1), peer(1), 1, TIMEOUT);
        assert_eq!(tab.lookup_peer(peer(1)), Some(new));
        // Removing the stale one must not clobber the fresh route.
        tab.remove(old);
        assert_eq!(tab.lookup_peer(peer(1)), Some(new));
        tab.remove(new);
        assert_eq!(tab.lookup_peer(peer(1)), None);
    }

    #[test]
    fn linear_hunt_examines_everything() {
        let mut tab = ConnTable::new();
        for i in 0..100 {
            tab.insert(t(0), peer(i), 0, TIMEOUT);
        }
        // Touch half so they are fresh.
        for i in 0..50 {
            let id = tab.lookup_peer(peer(i)).unwrap();
            tab.touch(id, t(8), TIMEOUT);
        }
        let hunt = tab.hunt_linear(t(12), TIMEOUT);
        assert_eq!(hunt.examined, 100, "linear scan visits every object");
        assert_eq!(hunt.to_return.len(), 50);
        assert!(hunt.to_destroy.is_empty());
    }

    #[test]
    fn priority_queue_hunt_skips_fresh_connections() {
        let mut tab = ConnTable::with_priority_queue();
        for i in 0..100 {
            tab.insert(t(0), peer(i), 0, TIMEOUT);
        }
        for i in 0..50 {
            let id = tab.lookup_peer(peer(i)).unwrap();
            tab.touch(id, t(8), TIMEOUT);
        }
        let hunt = tab.hunt_priority_queue(t(12), TIMEOUT);
        assert_eq!(hunt.to_return.len(), 50);
        // 50 expired originals + 50 stale (touched) entries popped; the 50
        // fresh entries stay put — strictly less work than the linear walk
        // would do over time as the table grows.
        assert_eq!(hunt.examined, 100);
        // Second hunt shortly after: nothing due, nothing examined.
        let hunt = tab.hunt_priority_queue(t(13), TIMEOUT);
        assert_eq!(hunt.examined, 0);
    }

    #[test]
    fn two_step_close_protocol() {
        let mut tab = ConnTable::new();
        let id = tab.insert(t(0), peer(1), 3, TIMEOUT);
        // Expired but owned: hunt asks for a return, not destruction.
        let hunt = tab.hunt_linear(t(11), TIMEOUT);
        assert_eq!(hunt.to_return, vec![id]);
        assert!(hunt.to_destroy.is_empty());
        // Worker returns it; destruction needs another full timeout.
        tab.mark_returned(id, t(11), TIMEOUT);
        let hunt = tab.hunt_linear(t(12), TIMEOUT);
        assert!(hunt.to_destroy.is_empty());
        let hunt = tab.hunt_linear(t(22), TIMEOUT);
        assert_eq!(hunt.to_destroy, vec![id]);
    }

    #[test]
    fn touch_resets_idle_clock() {
        let mut tab = ConnTable::new();
        let id = tab.insert(t(0), peer(1), 0, TIMEOUT);
        tab.touch(id, t(9), TIMEOUT);
        assert!(tab.hunt_linear(t(11), TIMEOUT).to_return.is_empty());
        assert_eq!(tab.hunt_linear(t(20), TIMEOUT).to_return, vec![id]);
    }

    #[test]
    fn strategies_agree_on_what_is_idle() {
        // Property-style check with a deterministic schedule: both
        // strategies must nominate the same connections for return and
        // destruction at every checkpoint.
        let mut lin = ConnTable::new();
        let mut pq = ConnTable::with_priority_queue();
        let mut ids = Vec::new();
        for i in 0..40u16 {
            let a = lin.insert(t(0), peer(i), 0, TIMEOUT);
            let b = pq.insert(t(0), peer(i), 0, TIMEOUT);
            assert_eq!(a, b);
            ids.push(a);
        }
        // A messy schedule of touches and returns.
        for (i, &id) in ids.iter().enumerate() {
            let step = (i % 7) as u64;
            if i % 3 == 0 {
                lin.touch(id, t(step), TIMEOUT);
                pq.touch(id, t(step), TIMEOUT);
            }
            if i % 5 == 0 {
                lin.mark_returned(id, t(step + 1), TIMEOUT);
                pq.mark_returned(id, t(step + 1), TIMEOUT);
            }
        }
        for check in [5u64, 11, 15, 20, 40] {
            let a = lin.hunt_linear(t(check), TIMEOUT);
            let mut b = pq.hunt_priority_queue(t(check), TIMEOUT);
            let mut a_ret = a.to_return.clone();
            a_ret.sort();
            b.to_return.sort();
            let mut a_des = a.to_destroy.clone();
            a_des.sort();
            b.to_destroy.sort();
            // The PQ hunt mutates its queue (pops + reinsertion at a later
            // deadline), so compare destruction sets only up to what linear
            // still sees; returns must match exactly on first sight.
            if check == 5 {
                assert_eq!(a_ret, b.to_return, "at t={check}");
                assert_eq!(a_des, b.to_destroy, "at t={check}");
            }
            // Apply destruction so both tables evolve identically.
            for id in a_des {
                lin.remove(id);
                pq.remove(id);
            }
            for id in a_ret {
                lin.mark_returned(id, t(check), TIMEOUT);
                pq.mark_returned(id, t(check), TIMEOUT);
            }
            assert_eq!(lin.len(), pq.len(), "tables diverged at t={check}");
        }
    }
}
