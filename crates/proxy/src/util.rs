//! Small helpers shared across the proxy.

use siperf_simnet::addr::{HostId, SockAddr};

/// Renders a socket address in the textual form used inside SIP messages
/// (`Via` sent-by, `Contact` hosts): `h<N>:<port>`.
pub fn addr_to_host_str(addr: SockAddr) -> String {
    format!("{}:{}", addr.host, addr.port)
}

/// Parses the textual form back into an address.
pub fn parse_sim_addr(s: &str) -> Option<SockAddr> {
    let (host, port) = s.split_once(':')?;
    let host_num: u32 = host.strip_prefix('h')?.parse().ok()?;
    let port: u16 = port.parse().ok()?;
    Some(SockAddr::new(HostId(host_num), port))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = SockAddr::new(HostId(3), 20017);
        assert_eq!(addr_to_host_str(a), "h3:20017");
        assert_eq!(parse_sim_addr("h3:20017"), Some(a));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_sim_addr("example.com:5060"), None);
        assert_eq!(parse_sim_addr("h1"), None);
        assert_eq!(parse_sim_addr("h1:notaport"), None);
        assert_eq!(parse_sim_addr("hx:80"), None);
    }
}
