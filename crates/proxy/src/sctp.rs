//! The SCTP mode (§6): the UDP architecture on a reliable transport.
//!
//! SCTP is connection-oriented and reliable like TCP but message-based like
//! UDP, and the kernel manages its associations. The proxy can therefore
//! keep the symmetric worker architecture: every worker receives whole
//! messages from the shared one-to-many endpoint and sends to any peer
//! without user-level connection management, descriptor passing, or
//! per-connection write locks. The paper predicts this removes most of the
//! TCP architecture's overheads while retaining reliable delivery — the
//! `extensions` bench quantifies it.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

use siperf_simos::process::{Process, ResumeCtx};
use siperf_simos::syscall::{Fd, SysResult, Syscall};
use siperf_sip::parse::parse_message;

use crate::config::{AppCostModel, Transport};
use crate::core::{FastAdmission, ProxyCore};
use crate::plumbing::{routing_script, Locks};

/// One symmetric SCTP worker process.
pub struct SctpWorker {
    core: Rc<RefCell<ProxyCore>>,
    costs: AppCostModel,
    locks: Locks,
    fd_slot: Rc<Cell<Option<Fd>>>,
    fd: Fd,
    script: VecDeque<Syscall>,
}

impl SctpWorker {
    /// Creates a worker; the shared endpoint descriptor is installed by the
    /// spawner before the run.
    pub fn new(
        core: Rc<RefCell<ProxyCore>>,
        costs: AppCostModel,
        locks: Locks,
        fd_slot: Rc<Cell<Option<Fd>>>,
    ) -> Self {
        SctpWorker {
            core,
            costs,
            locks,
            fd_slot,
            fd: Fd(u32::MAX),
            script: VecDeque::new(),
        }
    }

    fn recv(&self) -> Syscall {
        Syscall::SctpRecv { fd: self.fd }
    }
}

impl Process for SctpWorker {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        if let SysResult::Err(_) = last {
            self.core.borrow_mut().stats.send_errors += 1;
        }
        if let Some(next) = self.script.pop_front() {
            return next;
        }
        match last {
            SysResult::Start => {
                self.fd = self
                    .fd_slot
                    .get()
                    .expect("shared SCTP endpoint installed before run");
                self.recv()
            }
            SysResult::SctpMsg { from, data } => {
                let parse_ns = self.costs.parse_cost(data.len());
                match parse_message(&data) {
                    Err(_) => {
                        self.core.borrow_mut().stats.parse_errors += 1;
                        self.script.push_back(Syscall::Compute {
                            ns: parse_ns,
                            tag: crate::plumbing::tags::PARSE,
                        });
                    }
                    Ok(msg) => {
                        let was_request = msg.is_request();
                        // Overload-signal hook: like UDP, SCTP queueing
                        // happens in the kernel association buffers, so only
                        // the transaction count reaches the policy.
                        let mut core = self.core.borrow_mut();
                        if let FastAdmission::Shed(plan) = core.fast_admission(ctx.now, &msg, from)
                        {
                            // Shed fast path: refuse from the request line,
                            // skipping the parse/route/build pipeline.
                            drop(core);
                            self.script.push_back(Syscall::Compute {
                                ns: self.costs.shed_fast,
                                tag: crate::plumbing::tags::SHED_FAST,
                            });
                            for out in plan.out {
                                self.script.push_back(Syscall::SctpSend {
                                    fd: self.fd,
                                    to: out.dest,
                                    data: out.bytes,
                                });
                            }
                            return self.script.pop_front().expect("shed plan has a 503");
                        }
                        let plan = core.handle_message(ctx.now, msg, from);
                        drop(core);
                        routing_script(
                            &mut self.script,
                            &self.costs,
                            &self.locks,
                            Transport::Sctp,
                            parse_ns,
                            was_request,
                            &plan,
                        );
                        for out in plan.out {
                            self.script.push_back(Syscall::SctpSend {
                                fd: self.fd,
                                to: out.dest,
                                data: out.bytes,
                            });
                        }
                    }
                }
                self.script.pop_front().expect("script never empty here")
            }
            _ => self.recv(),
        }
    }
}
