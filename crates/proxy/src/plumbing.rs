//! Shared plumbing for the proxy's worker processes.
//!
//! ## Modeling note: decisions vs. timing
//!
//! The simulator is single-threaded, so shared-state mutation is inherently
//! atomic; what the simulated locks provide is **timing** — hold times,
//! contention, and the spin/`sched_yield` storms the paper profiles. Worker
//! code therefore computes each routing decision when a message is parsed
//! and then *plays out* the exact syscall sequence OpenSER would execute
//! (lock, compute, unlock, send, …) as a script. The CPU charged, the locks
//! taken, and their ordering match §3's description; only the Rust-side
//! mutation happens a few virtual microseconds earlier than the lock
//! window it is charged under.

use std::collections::VecDeque;

use siperf_simos::lock::LockId;
use siperf_simos::syscall::Syscall;

use crate::config::{AppCostModel, Transport};
use crate::core::Plan;

/// The proxy's shared-memory locks, created once at spawn time.
#[derive(Debug, Clone, Copy)]
pub struct Locks {
    /// Guards the transaction table.
    pub txn: LockId,
    /// Guards the location service (usrloc).
    pub usrloc: LockId,
    /// Guards the global timer list (essential for UDP, §3.2).
    pub timer: LockId,
    /// Guards the TCP connection hash table / priority queue (§3.1).
    pub conn: LockId,
}

/// Profile tags for the proxy's user-level functions, named after their
/// OpenSER counterparts so the §5 profile tables read like the paper's.
pub mod tags {
    /// Message reception and parsing.
    pub const PARSE: &str = "user/receive_msg";
    /// Transaction matching/creation and forwarding decisions.
    pub const ROUTE: &str = "user/t_relay";
    /// Location-service lookup.
    pub const USRLOC: &str = "user/usrloc_lookup";
    /// Building and serializing an outgoing message.
    pub const BUILD: &str = "user/build_msg";
    /// The pre-parse overload shed fast path (request-line sniff + canned
    /// 503).
    pub const SHED_FAST: &str = "user/shed_fast";
    /// Inserting a retransmission timer.
    pub const TIMER_INSERT: &str = "user/timer_insert";
    /// The timer process's scan.
    pub const TIMER_SCAN: &str = "user/timer_scan";
    /// The function in which fd-request IPC occurs — the paper's 12% → 4.6%
    /// headline profile entry.
    pub const GET_FD: &str = "user/tcpconn_get_fd";
    /// Connection hash table operations.
    pub const CONN_HASH: &str = "user/tcpconn_hash";
    /// Hunting idle connections (linear scan or priority queue).
    pub const IDLE: &str = "user/tcpconn_timeout";
    /// Per-worker fd-cache probes.
    pub const FD_CACHE: &str = "user/fd_cache_lookup";
}

/// Builds the lock/compute script that charges a routed message's
/// transaction-table and location-service work, shared by every transport.
///
/// The per-message sends are transport-specific and appended by the caller.
pub fn routing_script(
    script: &mut VecDeque<Syscall>,
    costs: &AppCostModel,
    locks: &Locks,
    transport: Transport,
    parse_ns: u64,
    was_request: bool,
    plan: &Plan,
) {
    script.push_back(Syscall::Compute {
        ns: parse_ns,
        tag: tags::PARSE,
    });
    script.push_back(Syscall::LockAcquire { lock: locks.txn });
    script.push_back(Syscall::Compute {
        ns: if was_request {
            costs.route_request
        } else {
            costs.route_response
        },
        tag: tags::ROUTE,
    });
    script.push_back(Syscall::LockRelease { lock: locks.txn });
    if was_request && !plan.absorbed {
        script.push_back(Syscall::LockAcquire { lock: locks.usrloc });
        script.push_back(Syscall::Compute {
            ns: costs.usrloc_lookup,
            tag: tags::USRLOC,
        });
        script.push_back(Syscall::LockRelease { lock: locks.usrloc });
    }
    // Building each outgoing message is charged here; putting it on the
    // wire is transport-specific.
    for _ in &plan.out {
        script.push_back(Syscall::Compute {
            ns: costs.build_message,
            tag: tags::BUILD,
        });
    }
    if plan.txn_created && !transport.is_reliable() {
        // UDP: arm the retransmission timer on the shared list (§3.2).
        script.push_back(Syscall::LockAcquire { lock: locks.timer });
        script.push_back(Syscall::Compute {
            ns: costs.timer_insert,
            tag: tags::TIMER_INSERT,
        });
        script.push_back(Syscall::LockRelease { lock: locks.timer });
    }
}

/// Encodes a socket address into an IPC message word.
pub fn encode_addr(addr: siperf_simnet::SockAddr) -> u64 {
    ((addr.host.0 as u64) << 16) | addr.port as u64
}

/// Decodes a socket address from an IPC message word.
pub fn decode_addr(word: u64) -> siperf_simnet::SockAddr {
    siperf_simnet::SockAddr::new(
        siperf_simnet::HostId((word >> 16) as u32),
        (word & 0xffff) as u16,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use siperf_simnet::{HostId, SockAddr};

    #[test]
    fn addr_encoding_roundtrips() {
        for addr in [
            SockAddr::new(HostId(0), 5060),
            SockAddr::new(HostId(3), 65535),
            SockAddr::new(HostId(1_000_000), 1),
        ] {
            assert_eq!(decode_addr(encode_addr(addr)), addr);
        }
    }

    #[test]
    fn routing_script_shape_udp_request() {
        let costs = AppCostModel::opteron_2006();
        let locks = Locks {
            txn: LockId(0),
            usrloc: LockId(1),
            timer: LockId(2),
            conn: LockId(3),
        };
        let plan = Plan {
            out: vec![],
            absorbed: false,
            txn_created: true,
            registered: false,
            rejected: false,
        };
        let mut script = VecDeque::new();
        routing_script(
            &mut script,
            &costs,
            &locks,
            Transport::Udp,
            10_000,
            true,
            &plan,
        );
        let kinds: Vec<&'static str> = script
            .iter()
            .map(|s| match s {
                Syscall::Compute { tag, .. } => *tag,
                Syscall::LockAcquire { .. } => "acquire",
                Syscall::LockRelease { .. } => "release",
                _ => "other",
            })
            .collect();
        assert_eq!(
            kinds,
            vec![
                tags::PARSE,
                "acquire",
                tags::ROUTE,
                "release",
                "acquire",
                tags::USRLOC,
                "release",
                "acquire",
                tags::TIMER_INSERT,
                "release",
            ]
        );
    }

    #[test]
    fn routing_script_skips_timer_on_reliable_transport() {
        let costs = AppCostModel::opteron_2006();
        let locks = Locks {
            txn: LockId(0),
            usrloc: LockId(1),
            timer: LockId(2),
            conn: LockId(3),
        };
        let plan = Plan {
            out: vec![],
            absorbed: false,
            txn_created: true,
            registered: false,
            rejected: false,
        };
        let mut script = VecDeque::new();
        routing_script(
            &mut script,
            &costs,
            &locks,
            Transport::Tcp,
            5_000,
            true,
            &plan,
        );
        assert!(!script.iter().any(|s| matches!(
            s,
            Syscall::Compute { tag, .. } if *tag == tags::TIMER_INSERT
        )));
    }

    #[test]
    fn absorbed_retransmission_skips_usrloc() {
        let costs = AppCostModel::opteron_2006();
        let locks = Locks {
            txn: LockId(0),
            usrloc: LockId(1),
            timer: LockId(2),
            conn: LockId(3),
        };
        let plan = Plan {
            absorbed: true,
            ..Default::default()
        };
        let mut script = VecDeque::new();
        routing_script(
            &mut script,
            &costs,
            &locks,
            Transport::Udp,
            5_000,
            true,
            &plan,
        );
        assert!(!script.iter().any(|s| matches!(
            s,
            Syscall::Compute { tag, .. } if *tag == tags::USRLOC
        )));
    }
}
