//! # siperf-proxy
//!
//! The subject of the study: an OpenSER-architecture SIP proxy, faithful to
//! §3 of *"Explaining the Impact of Network Transport Protocols on SIP
//! Proxy Performance"* (ISPASS 2008), running on the simulated kernel.
//!
//! Three transports, two architectures, and the paper's two fixes:
//!
//! * [`udp`] — symmetric worker processes on one inherited socket (§3.2).
//! * [`tcp`] — the supervisor/worker architecture: descriptor ownership,
//!   blocking fd-request IPC, close-after-send, and the two-step idle
//!   shutdown (§3.1) — plus the §5.2 **fd cache** and §5.3 **priority
//!   queue** fixes, both off by default (the Figure 3 baseline).
//! * [`sctp`] — the §6 alternative: UDP's architecture on a reliable,
//!   kernel-managed, message-oriented transport.
//! * [`threaded`] — the §6 multi-threaded proposal: shared descriptor
//!   table, no fd-passing IPC.
//! * [`timer`] — the retransmission/reaping process (essential for UDP,
//!   superfluous-but-present for TCP, as the paper notes).
//! * [`core`] — the pure routing/transaction engine all modes share.
//! * [`conn`] — the shared connection table with both idle strategies.
//!
//! # Example
//!
//! ```
//! use siperf_simcore::time::{SimDuration, SimTime};
//! use siperf_simnet::NetConfig;
//! use siperf_simos::{CostModel, Kernel};
//! use siperf_proxy::config::{ProxyConfig, Transport};
//! use siperf_proxy::spawn::spawn_proxy;
//!
//! let mut kernel = Kernel::new(NetConfig::lan(), CostModel::opteron_2006(), 1);
//! let server = kernel.add_host(4); // the paper's four Opteron cores
//! let proxy = spawn_proxy(&mut kernel, server, ProxyConfig::paper(Transport::Udp));
//! kernel.run_until(SimTime::ZERO + SimDuration::from_millis(100));
//! assert_eq!(proxy.stats().requests, 0); // no phones yet
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod conn;
pub mod core;
pub mod plumbing;
pub mod sctp;
pub mod spawn;
pub mod tcp;
pub mod threaded;
pub mod timer;
pub mod udp;
pub mod util;

pub use config::{AppCostModel, Arch, IdleStrategy, ProxyConfig, Transport};
pub use conn::{ConnId, ConnTable};
pub use core::{FastAdmission, Outgoing, Plan, ProxyCore, ProxyStats};
pub use spawn::{spawn_proxy, ProxyHandle};
