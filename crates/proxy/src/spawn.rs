//! Wiring a complete proxy into the simulated kernel.
//!
//! [`spawn_proxy`] builds the shared state, locks, and IPC channels for the
//! configured architecture, spawns every process (workers, supervisor or
//! acceptor, timer), and hands back a [`ProxyHandle`] for observing the run.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use siperf_simnet::addr::{HostId, SockAddr};
use siperf_simnet::SIP_PORT;
use siperf_simos::kernel::Kernel;
use siperf_simos::process::ProcId;
use siperf_simos::syscall::Fd;

use siperf_simos::ipc::ChanId;

use crate::config::{Arch, IdleStrategy, ProxyConfig, Transport};
use crate::conn::ConnTable;
use crate::core::{ProxyCore, ProxyStats};
use crate::plumbing::Locks;
use crate::sctp::SctpWorker;
use crate::tcp::{Supervisor, SupervisorCtl, TcpShared, TcpWorker};
use crate::threaded::{Acceptor, ThreadShared, ThreadWorker};
use crate::timer::TimerProc;
use crate::udp::UdpWorker;
use crate::util::addr_to_host_str;

/// Number of striped per-connection write locks in the threaded mode.
const WRITE_LOCK_STRIPES: usize = 16;

/// Architecture-specific state the fault-injection respawn path needs to
/// rebuild a crashed process in place.
enum RespawnCtx {
    /// UDP/SCTP symmetric workers: each worker's shared-socket descriptor
    /// slot (SCTP keeps one extra trailing slot for the timer process,
    /// which then doubles as a donor descriptor).
    Msg { slots: Vec<Rc<Cell<Option<Fd>>>> },
    /// TCP multi-process: everything a `TcpWorker`/`Supervisor` is built
    /// from.
    TcpMulti {
        shared: TcpShared,
        assign_chans: Vec<ChanId>,
        req_chans: Vec<ChanId>,
    },
    /// TCP multi-thread: worker threads hang off the acceptor.
    TcpThread {
        shared: ThreadShared,
        notify_chans: Vec<ChanId>,
    },
}

/// Observer handle over a spawned proxy.
pub struct ProxyHandle {
    /// The routing engine and statistics.
    pub core: Rc<RefCell<ProxyCore>>,
    /// The shared TCP connection table (empty under UDP/SCTP).
    pub conns: Rc<RefCell<ConnTable>>,
    /// The server host.
    pub host: HostId,
    /// The proxy's SIP address.
    pub addr: SockAddr,
    /// The shared-memory locks, for contention reports.
    pub locks: Locks,
    /// Worker process ids.
    pub workers: Vec<ProcId>,
    /// The supervisor (TCP multi-process) or acceptor (threaded) process.
    pub supervisor: Option<ProcId>,
    /// The timer process.
    pub timer: Option<ProcId>,
    /// The configuration the proxy was spawned with.
    pub cfg: Rc<ProxyConfig>,
    respawn: RespawnCtx,
}

impl ProxyHandle {
    /// Snapshot of the proxy's statistics.
    pub fn stats(&self) -> ProxyStats {
        self.core.borrow().stats
    }

    /// Live connection-object count.
    pub fn open_conns(&self) -> usize {
        self.conns.borrow().len()
    }

    /// Crashes worker `idx` (wrapping) and respawns a replacement in place,
    /// exactly as OpenSER's main process re-forks a dead child.
    ///
    /// Under UDP/SCTP the replacement inherits the shared SIP socket from a
    /// surviving sibling (or rebinds it if none survived). Under the TCP
    /// multi-process architecture the supervisor is notified and re-assigns
    /// the dead worker's connections to the replacement over IPC. Returns
    /// the new worker's pid.
    pub fn respawn_worker(&mut self, kernel: &mut Kernel, idx: usize) -> ProcId {
        let idx = idx % self.workers.len();
        kernel.kill(self.workers[idx]);
        let pid = match &mut self.respawn {
            RespawnCtx::Msg { slots } => {
                let slot: Rc<Cell<Option<Fd>>> = Rc::new(Cell::new(None));
                let (proc_box, name): (Box<dyn siperf_simos::process::Process>, String) =
                    match self.cfg.transport {
                        Transport::Udp => (
                            Box::new(UdpWorker::new(
                                self.core.clone(),
                                self.cfg.app_costs.clone(),
                                self.locks,
                                slot.clone(),
                            )),
                            format!("udp_worker{idx}"),
                        ),
                        _ => (
                            Box::new(SctpWorker::new(
                                self.core.clone(),
                                self.cfg.app_costs.clone(),
                                self.locks,
                                slot.clone(),
                            )),
                            format!("sctp_worker{idx}"),
                        ),
                    };
                let pid = kernel.spawn(self.host, self.cfg.worker_nice, name, proc_box);
                // Donor search: any surviving process holding the shared
                // socket (siblings first, then the SCTP timer's slot).
                let mut donor = None;
                for (j, &wpid) in self.workers.iter().enumerate() {
                    if j != idx && kernel.alive(wpid) {
                        if let Some(fd) = slots[j].get() {
                            donor = Some((wpid, fd));
                            break;
                        }
                    }
                }
                if donor.is_none() && slots.len() > self.workers.len() {
                    if let (Some(tpid), Some(fd)) = (self.timer, slots[self.workers.len()].get()) {
                        if kernel.alive(tpid) {
                            donor = Some((tpid, fd));
                        }
                    }
                }
                let fd = match donor {
                    Some((dpid, dfd)) => kernel
                        .dup_to(dpid, dfd, pid)
                        .expect("donor descriptor is live"),
                    None => {
                        // Every holder died: the socket is gone, bind anew.
                        let fds = match self.cfg.transport {
                            Transport::Udp => kernel.setup_shared_udp(self.host, SIP_PORT, &[pid]),
                            _ => kernel.setup_shared_sctp(self.host, SIP_PORT, &[pid]),
                        };
                        fds.expect("rebind proxy socket")[0]
                    }
                };
                slot.set(Some(fd));
                slots[idx] = slot;
                pid
            }
            RespawnCtx::TcpMulti {
                shared,
                assign_chans,
                req_chans,
            } => {
                let pid = kernel.spawn(
                    self.host,
                    self.cfg.worker_nice,
                    format!("tcp_worker{idx}"),
                    Box::new(TcpWorker::new(
                        idx,
                        shared.clone(),
                        assign_chans[idx],
                        req_chans[idx],
                    )),
                );
                shared
                    .ctl
                    .borrow_mut()
                    .push_back(SupervisorCtl::WorkerRespawned(idx));
                pid
            }
            RespawnCtx::TcpThread {
                shared,
                notify_chans,
            } => kernel.spawn_thread(
                self.cfg.worker_nice,
                format!("worker_thread{idx}"),
                Box::new(ThreadWorker::new(idx, shared.clone(), notify_chans[idx])),
                self.supervisor.expect("threaded proxy has an acceptor"),
            ),
        };
        self.workers[idx] = pid;
        self.core.borrow_mut().stats.workers_respawned += 1;
        pid
    }

    /// Crashes and respawns the TCP multi-process supervisor.
    ///
    /// The replacement re-attaches the IPC channels, rebinds the listener,
    /// and starts with an **empty** descriptor cache — workers whose fd
    /// requests now miss fall back to outbound connects, as OpenSER does
    /// after `tcp_main` restarts. Returns the new pid, or `None` for
    /// architectures without a supervisor process.
    pub fn respawn_supervisor(&mut self, kernel: &mut Kernel) -> Option<ProcId> {
        let RespawnCtx::TcpMulti {
            shared,
            assign_chans,
            req_chans,
        } = &self.respawn
        else {
            return None;
        };
        let old = self.supervisor?;
        kernel.kill(old);
        let pid = kernel.spawn(
            self.host,
            self.cfg.supervisor_nice,
            "tcp_main",
            Box::new(Supervisor::new(
                shared.clone(),
                assign_chans.clone(),
                req_chans.clone(),
            )),
        );
        self.supervisor = Some(pid);
        self.core.borrow_mut().stats.workers_respawned += 1;
        Some(pid)
    }
}

/// Builds and spawns a proxy on `host` per `cfg`.
///
/// # Panics
///
/// Panics if the SIP port cannot be bound — a configuration error at world
/// building time.
pub fn spawn_proxy(kernel: &mut Kernel, host: HostId, cfg: ProxyConfig) -> ProxyHandle {
    let cfg = Rc::new(cfg);
    let addr = SockAddr::new(host, SIP_PORT);
    let core = Rc::new(RefCell::new(ProxyCore::new(
        addr_to_host_str(addr),
        cfg.transport,
        cfg.stateful,
    )));
    core.borrow_mut().txn_linger = cfg.txn_linger;
    core.borrow_mut().set_overload_policy(cfg.overload.build());
    let conns = Rc::new(RefCell::new(match cfg.idle_strategy {
        IdleStrategy::LinearScan => ConnTable::new(),
        IdleStrategy::PriorityQueue => ConnTable::with_priority_queue(),
    }));
    let locks = Locks {
        txn: kernel.create_lock("txn_table"),
        usrloc: kernel.create_lock("usrloc"),
        timer: kernel.create_lock("timer_list"),
        conn: kernel.create_lock("tcpconn_hash"),
    };
    let n = cfg.worker_count();
    let mut workers = Vec::with_capacity(n);
    let mut supervisor = None;
    let timer;
    let respawn;

    match (cfg.transport, cfg.arch) {
        (Transport::Udp, _) => {
            let mut slots = Vec::with_capacity(n);
            for i in 0..n {
                let slot: Rc<Cell<Option<Fd>>> = Rc::new(Cell::new(None));
                let worker =
                    UdpWorker::new(core.clone(), cfg.app_costs.clone(), locks, slot.clone());
                workers.push(kernel.spawn(
                    host,
                    cfg.worker_nice,
                    format!("udp_worker{i}"),
                    Box::new(worker),
                ));
                slots.push(slot);
            }
            timer = Some(kernel.spawn(
                host,
                cfg.worker_nice,
                "timer",
                Box::new(TimerProc::new(
                    core.clone(),
                    cfg.app_costs.clone(),
                    locks,
                    cfg.timer_tick,
                    Transport::Udp,
                    None,
                )),
            ));
            let fds = kernel
                .setup_shared_udp(host, SIP_PORT, &workers)
                .expect("bind proxy UDP socket");
            for (slot, fd) in slots.iter().zip(fds) {
                slot.set(Some(fd));
            }
            respawn = RespawnCtx::Msg { slots };
        }
        (Transport::Sctp, _) => {
            let mut slots = Vec::with_capacity(n + 1);
            for i in 0..n {
                let slot: Rc<Cell<Option<Fd>>> = Rc::new(Cell::new(None));
                let worker =
                    SctpWorker::new(core.clone(), cfg.app_costs.clone(), locks, slot.clone());
                workers.push(kernel.spawn(
                    host,
                    cfg.worker_nice,
                    format!("sctp_worker{i}"),
                    Box::new(worker),
                ));
                slots.push(slot);
            }
            let timer_slot: Rc<Cell<Option<Fd>>> = Rc::new(Cell::new(None));
            timer = Some(kernel.spawn(
                host,
                cfg.worker_nice,
                "timer",
                Box::new(TimerProc::new(
                    core.clone(),
                    cfg.app_costs.clone(),
                    locks,
                    cfg.timer_tick,
                    Transport::Sctp,
                    Some(timer_slot.clone()),
                )),
            ));
            slots.push(timer_slot);
            let mut pids = workers.clone();
            pids.push(timer.expect("just spawned"));
            let fds = kernel
                .setup_shared_sctp(host, SIP_PORT, &pids)
                .expect("bind proxy SCTP endpoint");
            for (slot, fd) in slots.iter().zip(fds) {
                slot.set(Some(fd));
            }
            respawn = RespawnCtx::Msg { slots };
        }
        (Transport::Tcp, Arch::MultiProcess) => {
            let assign_chans: Vec<_> = (0..n)
                .map(|_| kernel.create_ipc_pair(cfg.ipc_capacity))
                .collect();
            let req_chans: Vec<_> = (0..n)
                .map(|_| kernel.create_ipc_pair(cfg.ipc_capacity))
                .collect();
            let shared = TcpShared {
                core: core.clone(),
                conns: conns.clone(),
                cfg: cfg.clone(),
                locks,
                ctl: Rc::new(RefCell::new(Default::default())),
            };
            supervisor = Some(kernel.spawn(
                host,
                cfg.supervisor_nice,
                "tcp_main",
                Box::new(Supervisor::new(
                    shared.clone(),
                    assign_chans.clone(),
                    req_chans.clone(),
                )),
            ));
            for i in 0..n {
                workers.push(kernel.spawn(
                    host,
                    cfg.worker_nice,
                    format!("tcp_worker{i}"),
                    Box::new(TcpWorker::new(
                        i,
                        shared.clone(),
                        assign_chans[i],
                        req_chans[i],
                    )),
                ));
            }
            timer = Some(kernel.spawn(
                host,
                cfg.worker_nice,
                "timer",
                Box::new(TimerProc::new(
                    core.clone(),
                    cfg.app_costs.clone(),
                    locks,
                    cfg.timer_tick,
                    Transport::Tcp,
                    None,
                )),
            ));
            respawn = RespawnCtx::TcpMulti {
                shared,
                assign_chans,
                req_chans,
            };
        }
        (Transport::Tcp, Arch::MultiThread) => {
            let notify_chans: Vec<_> = (0..n)
                .map(|_| kernel.create_ipc_pair(cfg.ipc_capacity))
                .collect();
            let write_locks: Vec<_> = (0..WRITE_LOCK_STRIPES)
                .map(|_| kernel.create_lock("conn_write"))
                .collect();
            let shared = ThreadShared {
                core: core.clone(),
                conns: conns.clone(),
                cfg: cfg.clone(),
                locks,
                write_locks: Rc::new(write_locks),
                fd_registry: Rc::new(RefCell::new(Default::default())),
            };
            let acceptor = kernel.spawn(
                host,
                cfg.supervisor_nice,
                "acceptor_thread",
                Box::new(Acceptor::new(shared.clone(), notify_chans.clone())),
            );
            supervisor = Some(acceptor);
            for (i, &chan) in notify_chans.iter().enumerate() {
                workers.push(kernel.spawn_thread(
                    cfg.worker_nice,
                    format!("worker_thread{i}"),
                    Box::new(ThreadWorker::new(i, shared.clone(), chan)),
                    acceptor,
                ));
            }
            timer = Some(kernel.spawn(
                host,
                cfg.worker_nice,
                "timer",
                Box::new(TimerProc::new(
                    core.clone(),
                    cfg.app_costs.clone(),
                    locks,
                    cfg.timer_tick,
                    Transport::Tcp,
                    None,
                )),
            ));
            respawn = RespawnCtx::TcpThread {
                shared,
                notify_chans,
            };
        }
    }

    ProxyHandle {
        core,
        conns,
        host,
        addr,
        locks,
        workers,
        supervisor,
        timer,
        cfg,
        respawn,
    }
}
