//! The TCP architecture (§3.1): one supervisor, many workers, descriptors
//! passed over IPC.
//!
//! The supervisor accepts every connection, records it in the shared
//! connection table, and assigns ownership to a worker by passing the
//! socket descriptor over a bounded unix-socket channel. Only the owner
//! reads the connection (TCP has no message boundaries). To *write* to a
//! connection it does not own, a worker asks the supervisor for a
//! descriptor over blocking IPC and — in the baseline — **closes it again
//! after one send** (the paper's first bottleneck, §5.1). The §5.2 fix adds
//! a per-worker descriptor cache in front of that request path.
//!
//! Idle connections are closed in two steps: the owning worker notices an
//! idle connection during its periodic hunt, closes its descriptor, and
//! *returns* the connection; the supervisor waits another timeout and then
//! destroys the object. The hunt is a full walk of the table under its lock
//! in the baseline (the §5.2 bottleneck) or a priority-queue pop in the
//! §5.3 fix.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::rc::Rc;

use siperf_simcore::time::{SimDuration, SimTime};
use siperf_simnet::addr::SockAddr;
use siperf_simos::ipc::{ChanId, Side};
use siperf_simos::process::{Process, ResumeCtx};
use siperf_simos::syscall::{Fd, IpcMsg, SysResult, Syscall};
use siperf_sip::framer::StreamFramer;
use siperf_sip::parse::parse_message;

use crate::config::ProxyConfig;
use crate::config::{IdleStrategy, Transport};
use crate::conn::{ConnId, ConnTable};
use crate::core::{FastAdmission, Outgoing, ProxyCore};
use crate::plumbing::{decode_addr, encode_addr, routing_script, tags, Locks};

/// Supervisor → worker: a new connection with its descriptor.
pub const MSG_NEW_CONN: u32 = 1;
/// Worker → supervisor: request the descriptor for a connection.
pub const MSG_FD_REQ: u32 = 2;
/// Supervisor → worker: the requested descriptor (b=1) or not found (b=0).
pub const MSG_FD_RESP: u32 = 3;
/// Worker → supervisor: idle connection returned (worker closed its fd).
pub const MSG_CONN_RETURN: u32 = 4;
/// Worker → supervisor: connection died (EOF / reset).
pub const MSG_CONN_DEAD: u32 = 5;
/// Worker → supervisor: a worker-opened outbound connection (with fd).
pub const MSG_NEW_OUTBOUND: u32 = 6;

const RECV_CHUNK: usize = 16 * 1024;

/// Out-of-band notifications from the spawner's fault-injection path to the
/// supervisor, delivered through shared memory (the supervisor observes
/// `SIGCHLD`-style events on its next loop pass).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorCtl {
    /// Worker `idx` was killed and respawned; its owned connections must be
    /// re-assigned (the supervisor still holds their descriptors).
    WorkerRespawned(usize),
}

/// Everything a TCP-side process needs a handle on.
#[derive(Clone)]
pub struct TcpShared {
    /// Routing engine + stats.
    pub core: Rc<RefCell<ProxyCore>>,
    /// The shared connection table.
    pub conns: Rc<RefCell<ConnTable>>,
    /// Proxy configuration.
    pub cfg: Rc<ProxyConfig>,
    /// The shared-memory locks.
    pub locks: Locks,
    /// Crash/respawn notifications for the supervisor.
    pub ctl: Rc<RefCell<VecDeque<SupervisorCtl>>>,
}

impl TcpShared {
    fn idle_timeout(&self) -> SimDuration {
        self.cfg.idle_timeout
    }

    /// Pushes the lock/compute/unlock triple for one connection-table
    /// operation.
    fn conn_table_script(&self, script: &mut VecDeque<Syscall>, extra_ns: u64, tag: &'static str) {
        script.push_back(Syscall::LockAcquire {
            lock: self.locks.conn,
        });
        script.push_back(Syscall::Compute {
            ns: self.cfg.app_costs.conn_table_op + extra_ns,
            tag,
        });
        script.push_back(Syscall::LockRelease {
            lock: self.locks.conn,
        });
    }
}

// ===================================================================
// Supervisor
// ===================================================================

enum SupPhase {
    Start,
    AttachAssign(usize),
    AttachReq(usize),
    Listen,
    Poll,
    Accept,
    ReqRecv(usize),
    Script,
}

enum SupReady {
    Listener,
    Req(usize),
}

/// The connection-management supervisor process (OpenSER's `tcp_main`).
pub struct Supervisor {
    shared: TcpShared,
    assign_chans: Vec<ChanId>,
    req_chans: Vec<ChanId>,
    assign_fds: Vec<Fd>,
    req_fds: Vec<Fd>,
    listener: Fd,
    /// The supervisor's own descriptor for every connection it knows.
    fd_of_conn: HashMap<u64, Fd>,
    rr: usize,
    pending: VecDeque<SupReady>,
    script: VecDeque<Syscall>,
    phase: SupPhase,
    last_scan: SimTime,
    /// Set when the main loop has handled work since the last timeout scan;
    /// OpenSER's tcp_main re-checks timeouts per loop pass, so an *idle*
    /// supervisor only housekeeps on a slow tick.
    worked_since_scan: bool,
}

impl Supervisor {
    /// Creates the supervisor; channels are created by the spawner.
    pub fn new(shared: TcpShared, assign_chans: Vec<ChanId>, req_chans: Vec<ChanId>) -> Self {
        assert_eq!(assign_chans.len(), req_chans.len());
        Supervisor {
            shared,
            assign_chans,
            req_chans,
            assign_fds: Vec::new(),
            req_fds: Vec::new(),
            listener: Fd(u32::MAX),
            fd_of_conn: HashMap::new(),
            rr: 0,
            pending: VecDeque::new(),
            script: VecDeque::new(),
            phase: SupPhase::Start,
            last_scan: SimTime::ZERO,
            worked_since_scan: false,
        }
    }

    /// The idle supervisor's housekeeping tick.
    const HOUSEKEEPING: SimDuration = SimDuration::from_millis(500);

    fn workers(&self) -> usize {
        self.assign_chans.len()
    }

    fn handle_accept(&mut self, now: SimTime, fd: Fd, peer: SockAddr) {
        let timeout = self.shared.idle_timeout();
        let worker = self.rr % self.workers();
        self.rr += 1;
        let id = self
            .shared
            .conns
            .borrow_mut()
            .insert(now, peer, worker, timeout);
        self.fd_of_conn.insert(id.0, fd);
        self.shared.core.borrow_mut().stats.conns_assigned += 1;
        self.shared
            .conn_table_script(&mut self.script, 0, tags::CONN_HASH);
        // Assign ownership: pass our descriptor (the kernel dups it; we
        // keep our copy, as OpenSER does). This send BLOCKS when the
        // worker's queue is full — the §6 deadlock ingredient.
        self.script.push_back(Syscall::IpcSend {
            fd: self.assign_fds[worker],
            msg: IpcMsg::with_fd(MSG_NEW_CONN, id.0, encode_addr(peer), fd),
        });
    }

    fn handle_req(&mut self, now: SimTime, worker: usize, msg: IpcMsg) {
        match msg.kind {
            MSG_FD_REQ => {
                let conn = msg.a;
                self.shared
                    .conn_table_script(&mut self.script, 0, tags::CONN_HASH);
                let reply = match self.fd_of_conn.get(&conn) {
                    Some(&fd) => IpcMsg::with_fd(MSG_FD_RESP, conn, 1, fd),
                    None => IpcMsg::new(MSG_FD_RESP, conn, 0),
                };
                self.script.push_back(Syscall::IpcSend {
                    fd: self.req_fds[worker],
                    msg: reply,
                });
            }
            MSG_CONN_RETURN => {
                let timeout = self.shared.idle_timeout();
                self.shared
                    .conns
                    .borrow_mut()
                    .mark_returned(ConnId(msg.a), now, timeout);
                self.shared.core.borrow_mut().stats.conns_returned += 1;
                self.shared
                    .conn_table_script(&mut self.script, 0, tags::CONN_HASH);
            }
            MSG_CONN_DEAD => {
                self.destroy_conn(msg.a);
            }
            MSG_NEW_OUTBOUND => {
                // Object was inserted by the worker; we keep the passed
                // descriptor so other workers can request it.
                if let Some(fd) = msg.fd {
                    self.fd_of_conn.insert(msg.a, fd);
                }
            }
            other => panic!("supervisor got unexpected ipc kind {other}"),
        }
    }

    /// Re-assigns every connection still owned by a respawned worker: the
    /// supervisor re-sends `MSG_NEW_CONN` with its own descriptor copy, so
    /// the fresh process can resume reading where the crashed one stopped.
    /// Connections whose descriptor the supervisor no longer holds cannot
    /// be handed over and are destroyed.
    fn reassign_worker(&mut self, worker: usize) {
        let ids = self.shared.conns.borrow().owned_by(worker);
        for id in ids {
            let peer = match self.shared.conns.borrow().get(id) {
                Some(obj) => obj.peer,
                None => continue,
            };
            match self.fd_of_conn.get(&id.0).copied() {
                Some(fd) => {
                    self.shared.core.borrow_mut().stats.conns_reassigned += 1;
                    self.shared
                        .conn_table_script(&mut self.script, 0, tags::CONN_HASH);
                    self.script.push_back(Syscall::IpcSend {
                        fd: self.assign_fds[worker],
                        msg: IpcMsg::with_fd(MSG_NEW_CONN, id.0, encode_addr(peer), fd),
                    });
                }
                None => self.destroy_conn(id.0),
            }
        }
    }

    fn destroy_conn(&mut self, conn: u64) {
        self.shared.conns.borrow_mut().remove(ConnId(conn));
        self.shared
            .conn_table_script(&mut self.script, 0, tags::CONN_HASH);
        if let Some(fd) = self.fd_of_conn.remove(&conn) {
            self.script.push_back(Syscall::Close { fd });
        }
        self.shared.core.borrow_mut().stats.conns_destroyed += 1;
    }

    fn idle_pass(&mut self, now: SimTime) {
        let timeout = self.shared.idle_timeout();
        let costs = &self.shared.cfg.app_costs;
        let (hunt, cost) = {
            let mut conns = self.shared.conns.borrow_mut();
            match self.shared.cfg.idle_strategy {
                IdleStrategy::LinearScan => {
                    let hunt = conns.hunt_linear(now, timeout);
                    let cost = costs.idle_scan_entry * hunt.examined.max(1);
                    (hunt, cost)
                }
                IdleStrategy::PriorityQueue => {
                    let hunt = conns.hunt_priority_queue(now, timeout);
                    let cost = costs.pq_pop * hunt.examined + 400;
                    (hunt, cost)
                }
            }
        };
        {
            let mut core = self.shared.core.borrow_mut();
            core.stats.idle_scan_entries += hunt.examined;
        }
        // The whole hunt runs under the connection-table lock (§5.2: "a
        // lock is held on the shared hash table throughout").
        self.script.push_back(Syscall::LockAcquire {
            lock: self.shared.locks.conn,
        });
        self.script.push_back(Syscall::Compute {
            ns: cost.max(400),
            tag: tags::IDLE,
        });
        self.script.push_back(Syscall::LockRelease {
            lock: self.shared.locks.conn,
        });
        // `to_return` is the workers' job; the supervisor destroys what has
        // been returned for a full further timeout.
        for id in hunt.to_destroy {
            self.shared.conns.borrow_mut().remove(id);
            if let Some(fd) = self.fd_of_conn.remove(&id.0) {
                self.script.push_back(Syscall::Close { fd });
            }
            self.shared.core.borrow_mut().stats.conns_destroyed += 1;
        }
    }

    fn next_action(&mut self, now: SimTime) -> Syscall {
        // Crash notifications first: a respawned worker must get its
        // connections back before they can starve to their idle timeout.
        loop {
            let ctl = self.shared.ctl.borrow_mut().pop_front();
            match ctl {
                Some(SupervisorCtl::WorkerRespawned(w)) => {
                    self.worked_since_scan = true;
                    self.reassign_worker(w);
                }
                None => break,
            }
        }
        if let Some(s) = self.script.pop_front() {
            self.phase = SupPhase::Script;
            return s;
        }
        match self.pending.pop_front() {
            Some(SupReady::Listener) => {
                self.worked_since_scan = true;
                self.phase = SupPhase::Accept;
                return Syscall::TcpAccept { fd: self.listener };
            }
            Some(SupReady::Req(w)) => {
                self.worked_since_scan = true;
                self.phase = SupPhase::ReqRecv(w);
                return Syscall::IpcRecv {
                    fd: self.req_fds[w],
                };
            }
            None => {}
        }
        // Timeout scan: per loop pass while the loop has work (with a small
        // floor so back-to-back events do not each pay a full walk), or on
        // the slow housekeeping tick when idle.
        let busy_due = self.worked_since_scan
            && now >= self.last_scan + self.shared.cfg.supervisor_scan_interval;
        let tick_due = now >= self.last_scan + Self::HOUSEKEEPING;
        if busy_due || tick_due {
            self.last_scan = now;
            self.worked_since_scan = false;
            self.idle_pass(now);
            self.phase = SupPhase::Script;
            return self.script.pop_front().expect("idle pass emits syscalls");
        }
        let mut fds = Vec::with_capacity(1 + self.req_fds.len());
        fds.push(self.listener);
        fds.extend_from_slice(&self.req_fds);
        self.phase = SupPhase::Poll;
        let wake = if self.worked_since_scan {
            (self.last_scan + self.shared.cfg.supervisor_scan_interval).max(now)
        } else {
            (self.last_scan + Self::HOUSEKEEPING).max(now)
        };
        Syscall::Poll {
            fds,
            timeout: Some(wake - now),
        }
    }
}

impl Process for Supervisor {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        match std::mem::replace(&mut self.phase, SupPhase::Script) {
            SupPhase::Start => {
                self.phase = SupPhase::AttachAssign(0);
                Syscall::IpcAttach {
                    chan: self.assign_chans[0],
                    side: Side::A,
                }
            }
            SupPhase::AttachAssign(i) => {
                self.assign_fds.push(last.expect_fd());
                if i + 1 < self.workers() {
                    self.phase = SupPhase::AttachAssign(i + 1);
                    Syscall::IpcAttach {
                        chan: self.assign_chans[i + 1],
                        side: Side::A,
                    }
                } else {
                    self.phase = SupPhase::AttachReq(0);
                    Syscall::IpcAttach {
                        chan: self.req_chans[0],
                        side: Side::A,
                    }
                }
            }
            SupPhase::AttachReq(i) => {
                self.req_fds.push(last.expect_fd());
                if i + 1 < self.workers() {
                    self.phase = SupPhase::AttachReq(i + 1);
                    Syscall::IpcAttach {
                        chan: self.req_chans[i + 1],
                        side: Side::A,
                    }
                } else {
                    self.phase = SupPhase::Listen;
                    Syscall::TcpListen {
                        port: siperf_simnet::SIP_PORT,
                        backlog: 1024,
                    }
                }
            }
            SupPhase::Listen => {
                self.listener = last.expect_fd();
                self.last_scan = ctx.now;
                self.next_action(ctx.now)
            }
            SupPhase::Poll => {
                match last {
                    SysResult::Ready(fds) => {
                        for fd in fds {
                            if fd == self.listener {
                                self.pending.push_back(SupReady::Listener);
                            } else if let Some(w) = self.req_fds.iter().position(|&r| r == fd) {
                                self.pending.push_back(SupReady::Req(w));
                            }
                        }
                    }
                    SysResult::TimedOut => {}
                    other => panic!("supervisor poll got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            SupPhase::Accept => {
                match last {
                    SysResult::Accepted { fd, peer } => self.handle_accept(ctx.now, fd, peer),
                    SysResult::Err(_) => {
                        // Out of descriptors (the §4.3 starvation scenario):
                        // count and move on.
                        self.shared.core.borrow_mut().stats.send_errors += 1;
                    }
                    other => panic!("supervisor accept got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            SupPhase::ReqRecv(w) => {
                match last {
                    SysResult::Ipc(msg) => self.handle_req(ctx.now, w, msg),
                    other => panic!("supervisor ipc recv got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            SupPhase::Script => {
                if let SysResult::Err(_) = last {
                    self.shared.core.borrow_mut().stats.send_errors += 1;
                }
                self.next_action(ctx.now)
            }
        }
    }
}

// ===================================================================
// Worker
// ===================================================================

struct OwnedConn {
    fd: Fd,
    peer: SockAddr,
    framer: StreamFramer,
    stamp: u64,
}

enum SendState {
    /// Acquire the connection-table lock.
    LockTable,
    /// Table work done host-side; compute charged.
    TableWork,
    /// Release the lock; afterwards decide the send path.
    Unlock,
    /// The `tcpconn_get_fd` marker compute before the IPC round trip.
    GetFdMarker,
    /// fd request sent; awaiting the blocking receive.
    FdReqSent,
    /// Blocking receive issued.
    AwaitFdResp,
    /// Outbound connect issued.
    Connecting,
    /// Post-connect table registration (lock).
    PostConnLock,
    /// Post-connect table registration (compute).
    PostConnWork,
    /// Post-connect table registration (unlock).
    PostConnUnlock,
    /// Announce the outbound connection to the supervisor.
    Announce,
    /// TcpSend issued.
    Sending,
    /// Baseline: closing the requested descriptor after one send.
    Closing,
}

struct SendJob {
    out: Outgoing,
    state: SendState,
    conn: Option<ConnId>,
    fd: Option<Fd>,
    fd_from_request: bool,
}

enum WkrReady {
    Assign,
    Conn(u64),
}

enum WkrPhase {
    Start,
    AttachAssign,
    AttachReq,
    Poll,
    AssignRecv,
    ConnRecv(u64),
    Send,
    Script,
}

/// One TCP worker process (OpenSER's `tcp_receiver` children).
pub struct TcpWorker {
    idx: usize,
    shared: TcpShared,
    assign_chan: ChanId,
    req_chan: ChanId,
    assign_fd: Fd,
    req_fd: Fd,
    owned: HashMap<u64, OwnedConn>,
    conn_by_fd: HashMap<Fd, u64>,
    /// The §5.2 per-worker descriptor cache.
    cache: HashMap<u64, Fd>,
    /// The §5.3 worker-local priority queue over owned connections.
    local_heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    pending: VecDeque<WkrReady>,
    msg_q: VecDeque<(Vec<u8>, SockAddr)>,
    out_q: VecDeque<Outgoing>,
    send: Option<SendJob>,
    script: VecDeque<Syscall>,
    phase: WkrPhase,
    next_idle_check: SimTime,
}

impl TcpWorker {
    /// Creates worker `idx` speaking over its two channels.
    pub fn new(idx: usize, shared: TcpShared, assign_chan: ChanId, req_chan: ChanId) -> Self {
        TcpWorker {
            idx,
            shared,
            assign_chan,
            req_chan,
            assign_fd: Fd(u32::MAX),
            req_fd: Fd(u32::MAX),
            owned: HashMap::new(),
            conn_by_fd: HashMap::new(),
            cache: HashMap::new(),
            local_heap: BinaryHeap::new(),
            pending: VecDeque::new(),
            msg_q: VecDeque::new(),
            out_q: VecDeque::new(),
            send: None,
            script: VecDeque::new(),
            phase: WkrPhase::Start,
            next_idle_check: SimTime::ZERO,
        }
    }

    fn costs(&self) -> &crate::config::AppCostModel {
        &self.shared.cfg.app_costs
    }

    fn pq_mode(&self) -> bool {
        self.shared.cfg.idle_strategy == IdleStrategy::PriorityQueue
    }

    fn touch_local(&mut self, now: SimTime, conn: u64) {
        let timeout = self.shared.idle_timeout();
        let pq = self.pq_mode();
        if let Some(owned) = self.owned.get_mut(&conn) {
            owned.stamp += 1;
            if pq {
                self.local_heap
                    .push(Reverse((now + timeout, conn, owned.stamp)));
            }
        }
    }

    /// Processes one framed message: parse, route, queue the sends.
    fn process_message(&mut self, now: SimTime, raw: Vec<u8>, src: SockAddr) {
        let parse_ns = self.costs().parse_cost(raw.len());
        match parse_message(&raw) {
            Err(_) => {
                self.shared.core.borrow_mut().stats.parse_errors += 1;
                self.script.push_back(Syscall::Compute {
                    ns: parse_ns,
                    tag: tags::PARSE,
                });
            }
            Ok(msg) => {
                let was_request = msg.is_request();
                let mut core = self.shared.core.borrow_mut();
                // Overload-signal hook: messages already framed but not
                // yet routed are backlog the transaction table cannot
                // see; report before routing so admission decisions use
                // this worker's fresh depth.
                core.note_worker_backlog(self.idx, self.msg_q.len() + self.out_q.len());
                if let FastAdmission::Shed(plan) = core.fast_admission(now, &msg, src) {
                    // Shed fast path: refuse from the request line, skipping
                    // the parse/route/build pipeline.
                    drop(core);
                    self.script.push_back(Syscall::Compute {
                        ns: self.costs().shed_fast,
                        tag: tags::SHED_FAST,
                    });
                    self.out_q.extend(plan.out);
                    return;
                }
                let plan = core.handle_message(now, msg, src);
                drop(core);
                let costs = self.shared.cfg.app_costs.clone();
                routing_script(
                    &mut self.script,
                    &costs,
                    &self.shared.locks,
                    Transport::Tcp,
                    parse_ns,
                    was_request,
                    &plan,
                );
                self.out_q.extend(plan.out);
            }
        }
    }

    /// Advances the in-flight send job; `None` means it finished.
    fn advance_send(&mut self, now: SimTime, last: &SysResult) -> Option<Syscall> {
        let mut job = self.send.take()?;
        let timeout = self.shared.idle_timeout();
        let syscall = loop {
            match job.state {
                SendState::LockTable => {
                    job.state = SendState::TableWork;
                    break Some(Syscall::LockAcquire {
                        lock: self.shared.locks.conn,
                    });
                }
                SendState::TableWork => {
                    // Host-side: resolve the destination to a connection and
                    // touch it; charge hash (+ heap reposition in PQ mode,
                    // + cache probe when the fd cache is enabled).
                    let mut conns = self.shared.conns.borrow_mut();
                    job.conn = conns
                        .lookup_peer(job.out.dest)
                        .or_else(|| job.out.alt.and_then(|a| conns.lookup_peer(a)));
                    let mut ns = self.costs().conn_table_op;
                    if let Some(id) = job.conn {
                        conns.touch(id, now, timeout);
                        if self.pq_mode() {
                            ns += self.costs().pq_update;
                        }
                    }
                    drop(conns);
                    if let Some(id) = job.conn {
                        self.touch_local(now, id.0);
                    }
                    if self.shared.cfg.fd_cache {
                        ns += self.costs().fd_cache_lookup;
                    }
                    job.state = SendState::Unlock;
                    break Some(Syscall::Compute {
                        ns,
                        tag: tags::CONN_HASH,
                    });
                }
                SendState::Unlock => {
                    job.state = match job.conn {
                        Some(id) => {
                            if let Some(owned) = self.owned.get(&id.0) {
                                // We own it: send directly on our fd.
                                job.fd = Some(owned.fd);
                                SendState::Sending
                            } else if let Some(&fd) = self
                                .shared
                                .cfg
                                .fd_cache
                                .then(|| self.cache.get(&id.0))
                                .flatten()
                            {
                                // §5.2: cache hit avoids the IPC round trip
                                // and the wait on the supervisor entirely.
                                job.fd = Some(fd);
                                self.shared.core.borrow_mut().stats.fd_cache_hits += 1;
                                SendState::Sending
                            } else {
                                SendState::GetFdMarker
                            }
                        }
                        None => SendState::Connecting,
                    };
                    break Some(Syscall::LockRelease {
                        lock: self.shared.locks.conn,
                    });
                }
                SendState::GetFdMarker => {
                    // The famous function: tcpconn_get_fd, where the worker
                    // blocks on the supervisor (§5.1: 12% of CPU time).
                    job.state = SendState::FdReqSent;
                    self.shared.core.borrow_mut().stats.fd_requests += 1;
                    break Some(Syscall::Compute {
                        ns: 800,
                        tag: tags::GET_FD,
                    });
                }
                SendState::FdReqSent => {
                    job.state = SendState::AwaitFdResp;
                    break Some(Syscall::IpcSend {
                        fd: self.req_fd,
                        msg: IpcMsg::new(MSG_FD_REQ, job.conn.expect("have conn").0, 0),
                    });
                }
                SendState::AwaitFdResp => {
                    match last {
                        SysResult::Done => {
                            // The send completed; now block for the answer.
                            break Some(Syscall::IpcRecv { fd: self.req_fd });
                        }
                        SysResult::Ipc(msg) => {
                            assert_eq!(msg.kind, MSG_FD_RESP);
                            if msg.b == 1 {
                                let fd = msg.fd.expect("fd attached");
                                job.fd = Some(fd);
                                job.fd_from_request = true;
                                if self.shared.cfg.fd_cache {
                                    self.cache.insert(job.conn.expect("conn").0, fd);
                                }
                                job.state = SendState::Sending;
                            } else {
                                // Connection destroyed meanwhile: fall back
                                // to an outbound connect.
                                job.conn = None;
                                job.state = SendState::Connecting;
                            }
                            continue;
                        }
                        other => panic!("fd response expected, got {other:?}"),
                    }
                }
                SendState::Connecting => {
                    let target = job.out.alt.unwrap_or(job.out.dest);
                    job.state = SendState::PostConnLock;
                    self.shared.core.borrow_mut().stats.outbound_connects += 1;
                    break Some(Syscall::TcpConnect { to: target });
                }
                SendState::PostConnLock => {
                    match last {
                        SysResult::NewFd(fd) => {
                            job.fd = Some(*fd);
                            job.state = SendState::PostConnWork;
                            break Some(Syscall::LockAcquire {
                                lock: self.shared.locks.conn,
                            });
                        }
                        SysResult::Err(_) => {
                            self.shared.core.borrow_mut().stats.send_errors += 1;
                            return None; // connect refused; drop the message
                        }
                        other => panic!("connect result expected, got {other:?}"),
                    }
                }
                SendState::PostConnWork => {
                    let target = job.out.alt.unwrap_or(job.out.dest);
                    let id = self
                        .shared
                        .conns
                        .borrow_mut()
                        .insert(now, target, self.idx, timeout);
                    job.conn = Some(id);
                    let fd = job.fd.expect("connected");
                    self.owned.insert(
                        id.0,
                        OwnedConn {
                            fd,
                            peer: target,
                            framer: StreamFramer::new(),
                            stamp: 0,
                        },
                    );
                    self.conn_by_fd.insert(fd, id.0);
                    self.touch_local(now, id.0);
                    job.state = SendState::PostConnUnlock;
                    break Some(Syscall::Compute {
                        ns: self.costs().conn_table_op,
                        tag: tags::CONN_HASH,
                    });
                }
                SendState::PostConnUnlock => {
                    job.state = SendState::Announce;
                    break Some(Syscall::LockRelease {
                        lock: self.shared.locks.conn,
                    });
                }
                SendState::Announce => {
                    job.state = SendState::Sending;
                    break Some(Syscall::IpcSend {
                        fd: self.req_fd,
                        msg: IpcMsg::with_fd(
                            MSG_NEW_OUTBOUND,
                            job.conn.expect("registered").0,
                            0,
                            job.fd.expect("connected"),
                        ),
                    });
                }
                SendState::Sending => {
                    let fd = job.fd.expect("resolved fd");
                    job.state = SendState::Closing;
                    break Some(Syscall::TcpSend {
                        fd,
                        data: job.out.bytes.clone(),
                    });
                }
                SendState::Closing => {
                    // Terminal state: the send's result is in. The job ends
                    // here; at most one trailing Close is issued.
                    self.send = None;
                    if matches!(last, SysResult::Err(_)) {
                        // Dead connection: drop the message, invalidate and
                        // release any descriptor we were holding for it.
                        self.shared.core.borrow_mut().stats.send_errors += 1;
                        if let Some(fd) = job.conn.and_then(|id| self.cache.remove(&id.0)) {
                            return Some(Syscall::Close { fd });
                        }
                        if job.fd_from_request {
                            return Some(Syscall::Close {
                                fd: job.fd.expect("had fd"),
                            });
                        }
                        return None;
                    }
                    // Baseline behaviour: a descriptor obtained through the
                    // supervisor is closed right after the send (§3.1) —
                    // unless the fd cache keeps it.
                    if job.fd_from_request && !self.shared.cfg.fd_cache {
                        return Some(Syscall::Close {
                            fd: job.fd.expect("had fd"),
                        });
                    }
                    return None;
                }
            }
        };
        self.send = Some(job);
        syscall
    }

    fn idle_check(&mut self, now: SimTime) {
        let timeout = self.shared.idle_timeout();
        let costs_scan = self.costs().idle_scan_entry;
        let costs_pop = self.costs().pq_pop;
        let mut expired: Vec<u64> = Vec::new();
        let cost;
        let examined;
        if self.pq_mode() {
            let mut pops = 0u64;
            while let Some(&Reverse((at, conn, stamp))) = self.local_heap.peek() {
                if at > now {
                    break;
                }
                self.local_heap.pop();
                pops += 1;
                if let Some(owned) = self.owned.get(&conn) {
                    if owned.stamp == stamp {
                        expired.push(conn);
                    }
                }
            }
            cost = pops * costs_pop + 300;
            examined = pops;
        } else {
            // Baseline: examine every owned connection, reading the shared
            // objects (under the table lock).
            let conns = self.shared.conns.borrow();
            for (&id, _owned) in self.owned.iter() {
                if let Some(obj) = conns.get(ConnId(id)) {
                    if obj.expires_at(timeout) <= now {
                        expired.push(id);
                    }
                }
            }
            expired.sort_unstable();
            cost = costs_scan * self.owned.len().max(1) as u64;
            examined = self.owned.len() as u64;
        }
        self.shared.core.borrow_mut().stats.idle_scan_entries += examined;
        self.script.push_back(Syscall::LockAcquire {
            lock: self.shared.locks.conn,
        });
        self.script.push_back(Syscall::Compute {
            ns: cost.max(300),
            tag: tags::IDLE,
        });
        self.script.push_back(Syscall::LockRelease {
            lock: self.shared.locks.conn,
        });
        for conn in expired {
            if let Some(owned) = self.owned.remove(&conn) {
                self.conn_by_fd.remove(&owned.fd);
                self.script.push_back(Syscall::Close { fd: owned.fd });
                self.script.push_back(Syscall::IpcSend {
                    fd: self.req_fd,
                    msg: IpcMsg::new(MSG_CONN_RETURN, conn, 0),
                });
            }
        }
        // Sweep the fd cache: cached descriptors whose connection object is
        // gone would otherwise pin dead sockets open forever.
        if !self.cache.is_empty() {
            let mut dead: Vec<u64> = {
                let conns = self.shared.conns.borrow();
                self.cache
                    .keys()
                    .filter(|&&c| conns.get(ConnId(c)).is_none())
                    .copied()
                    .collect()
            };
            // Close in id order, not HashMap order, for reproducibility.
            dead.sort_unstable();
            for conn in dead {
                if let Some(fd) = self.cache.remove(&conn) {
                    self.script.push_back(Syscall::Close { fd });
                }
            }
        }
    }

    fn conn_died(&mut self, conn: u64) {
        if let Some(owned) = self.owned.remove(&conn) {
            self.conn_by_fd.remove(&owned.fd);
            self.cache.remove(&conn);
            self.script.push_back(Syscall::Close { fd: owned.fd });
            self.script.push_back(Syscall::IpcSend {
                fd: self.req_fd,
                msg: IpcMsg::new(MSG_CONN_DEAD, conn, 0),
            });
        }
    }

    fn next_action(&mut self, now: SimTime) -> Syscall {
        loop {
            if let Some(s) = self.script.pop_front() {
                self.phase = WkrPhase::Script;
                return s;
            }
            if self.send.is_some() {
                // (Re)enter the send machine with a neutral result.
                if let Some(s) = self.advance_send(now, &SysResult::Done) {
                    self.phase = WkrPhase::Send;
                    return s;
                }
                continue;
            }
            if let Some(out) = self.out_q.pop_front() {
                self.send = Some(SendJob {
                    out,
                    state: SendState::LockTable,
                    conn: None,
                    fd: None,
                    fd_from_request: false,
                });
                continue;
            }
            if let Some((raw, src)) = self.msg_q.pop_front() {
                self.process_message(now, raw, src);
                continue;
            }
            match self.pending.pop_front() {
                Some(WkrReady::Assign) => {
                    self.phase = WkrPhase::AssignRecv;
                    return Syscall::IpcRecv { fd: self.assign_fd };
                }
                Some(WkrReady::Conn(conn)) => {
                    if let Some(owned) = self.owned.get(&conn) {
                        let fd = owned.fd;
                        self.phase = WkrPhase::ConnRecv(conn);
                        return Syscall::TcpRecv {
                            fd,
                            max: RECV_CHUNK,
                        };
                    }
                    continue;
                }
                None => {}
            }
            if now >= self.next_idle_check {
                self.next_idle_check = now + self.shared.cfg.idle_check_interval;
                self.idle_check(now);
                continue;
            }
            let mut fds = Vec::with_capacity(1 + self.owned.len());
            fds.push(self.assign_fd);
            fds.extend(self.owned.values().map(|o| o.fd));
            // Poll order decides which ready connection is served first;
            // sort so it does not depend on HashMap iteration order.
            fds[1..].sort_unstable();
            self.phase = WkrPhase::Poll;
            return Syscall::Poll {
                fds,
                timeout: Some(self.next_idle_check - now),
            };
        }
    }
}

impl Process for TcpWorker {
    fn resume(&mut self, ctx: &mut ResumeCtx, last: SysResult) -> Syscall {
        match std::mem::replace(&mut self.phase, WkrPhase::Script) {
            WkrPhase::Start => {
                self.phase = WkrPhase::AttachAssign;
                Syscall::IpcAttach {
                    chan: self.assign_chan,
                    side: Side::B,
                }
            }
            WkrPhase::AttachAssign => {
                self.assign_fd = last.expect_fd();
                self.phase = WkrPhase::AttachReq;
                Syscall::IpcAttach {
                    chan: self.req_chan,
                    side: Side::B,
                }
            }
            WkrPhase::AttachReq => {
                self.req_fd = last.expect_fd();
                self.next_idle_check = ctx.now + self.shared.cfg.idle_check_interval;
                self.next_action(ctx.now)
            }
            WkrPhase::Poll => {
                match last {
                    SysResult::Ready(fds) => {
                        for fd in fds {
                            if fd == self.assign_fd {
                                self.pending.push_back(WkrReady::Assign);
                            } else if let Some(&conn) = self.conn_by_fd.get(&fd) {
                                self.pending.push_back(WkrReady::Conn(conn));
                            }
                        }
                    }
                    SysResult::TimedOut => {}
                    other => panic!("worker poll got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            WkrPhase::AssignRecv => {
                match last {
                    SysResult::Ipc(msg) => {
                        assert_eq!(msg.kind, MSG_NEW_CONN, "assign channel protocol");
                        let fd = msg.fd.expect("new conn carries its fd");
                        let peer = decode_addr(msg.b);
                        self.owned.insert(
                            msg.a,
                            OwnedConn {
                                fd,
                                peer,
                                framer: StreamFramer::new(),
                                stamp: 0,
                            },
                        );
                        self.conn_by_fd.insert(fd, msg.a);
                        let now = ctx.now;
                        self.touch_local(now, msg.a);
                    }
                    other => panic!("assign recv got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            WkrPhase::ConnRecv(conn) => {
                match last {
                    SysResult::Data(bytes) => {
                        let timeout = self.shared.idle_timeout();
                        let pq = self.pq_mode();
                        // Update the connection's idle clock; in PQ mode
                        // this repositions it in the shared heap under the
                        // table lock (§5.3's per-message price).
                        self.shared
                            .conns
                            .borrow_mut()
                            .touch(ConnId(conn), ctx.now, timeout);
                        self.touch_local(ctx.now, conn);
                        if pq {
                            self.script.push_back(Syscall::LockAcquire {
                                lock: self.shared.locks.conn,
                            });
                            self.script.push_back(Syscall::Compute {
                                ns: self.costs().pq_update,
                                tag: tags::CONN_HASH,
                            });
                            self.script.push_back(Syscall::LockRelease {
                                lock: self.shared.locks.conn,
                            });
                        }
                        let (peer, frames) = {
                            let owned = self.owned.get_mut(&conn).expect("receiving on owned conn");
                            owned.framer.push(&bytes);
                            (owned.peer, owned.framer.drain_messages())
                        };
                        match frames {
                            Ok(frames) => {
                                for raw in frames {
                                    self.msg_q.push_back((raw, peer));
                                }
                            }
                            Err(_) => {
                                // Corrupt stream: drop the connection.
                                self.shared.core.borrow_mut().stats.parse_errors += 1;
                                self.conn_died(conn);
                            }
                        }
                    }
                    SysResult::Eof | SysResult::Err(_) => {
                        self.conn_died(conn);
                    }
                    other => panic!("conn recv got {other:?}"),
                }
                self.next_action(ctx.now)
            }
            WkrPhase::Send => {
                if let Some(s) = self.advance_send(ctx.now, &last) {
                    self.phase = WkrPhase::Send;
                    return s;
                }
                self.next_action(ctx.now)
            }
            WkrPhase::Script => {
                if let SysResult::Err(_) = last {
                    self.shared.core.borrow_mut().stats.send_errors += 1;
                }
                self.next_action(ctx.now)
            }
        }
    }
}
