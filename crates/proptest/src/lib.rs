//! A minimal, self-contained property-testing harness exposing the subset of
//! the `proptest` crate's API that this workspace uses.
//!
//! The real `proptest` crate cannot be fetched in offline environments, and
//! vendoring all of it would dwarf the repository. This stand-in keeps the
//! same surface — `proptest!`, `prop_compose!`, `prop_oneof!`, `Strategy`,
//! `Just`, `any`, `proptest::collection::vec`, `proptest::option::of` — so
//! the property tests compile and run unchanged. Differences from upstream:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` output (via the normal `assert!` machinery) but is not reduced.
//! * **Deterministic seeding.** Each test's RNG is seeded from the test's
//!   module path and name, so runs are bit-reproducible. Set
//!   `PROPTEST_SEED=<u64>` to perturb the stream when hunting for cases.
//! * **Regex strategies** (`"[a-zA-Z0-9]{1,12}"`) support only character
//!   classes, literals, and `{m}`/`{m,n}`/`?`/`+`/`*` repetition — enough
//!   for token-style generators, not general regexes.

/// Test-runner plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic xoshiro256++ generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Creates a generator fully determined by `seed`.
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform value in `[0, 1)`.
        pub fn f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Seeds a [`TestRng`] from a test's name (stable across runs), mixed
    /// with `PROPTEST_SEED` when set.
    pub fn rng_for(name: &str) -> TestRng {
        // FNV-1a over the test name keeps each property on its own stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.wrapping_mul(0x9E3779B97F4A7C15);
            }
        }
        TestRng::seed_from_u64(h)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.f64()
        }
    }

    /// Strategy for the whole domain of `T` (see [`any`]).
    #[derive(Debug, Clone)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Strategy over all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Strategy wrapping a generation closure; used by `prop_compose!`.
    pub struct FnStrategy<F>(pub F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between boxed strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Boxes a strategy for use in [`Union`]; inference glue for
    /// `prop_oneof!`.
    pub fn boxed<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(s)
    }

    /// `&str` literals act as simplified-regex string strategies.
    ///
    /// Supported syntax: literal characters, `[a-z0-9_]`-style classes
    /// (ranges and singletons), and `{m}` / `{m,n}` / `?` / `*` / `+`
    /// repetition of the preceding atom. Unsupported syntax panics.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a character class or a (possibly escaped) literal.
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .expect("unterminated character class")
                        + i;
                    let class = expand_class(&chars[i + 1..close]);
                    i = close + 1;
                    class
                }
                '\\' => {
                    let c = *chars.get(i + 1).expect("dangling escape");
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional repetition suffix.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated repetition")
                        + i;
                    let spec: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().expect("bad repetition"),
                            n.trim().parse::<usize>().expect("bad repetition"),
                        ),
                        None => {
                            let m = spec.trim().parse::<usize>().expect("bad repetition");
                            (m, m)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            };
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }

    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut j = 0;
        while j < body.len() {
            if j + 2 < body.len() && body[j + 1] == '-' {
                let (a, b) = (body[j] as u32, body[j + 2] as u32);
                assert!(a <= b, "inverted class range");
                for c in a..=b {
                    set.push(char::from_u32(c).expect("bad class range"));
                }
                j += 3;
            } else {
                set.push(body[j]);
                j += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// Vector of values from `elem` with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` roughly three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The usual wildcard import surface.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(binding in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// Defines a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($param:tt)*)(
        $($arg:ident in $strat:expr),+ $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($param)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(
                move |__rng: &mut $crate::test_runner::TestRng| -> $ret {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                },
            )
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

/// Property-scoped assertion; identical to `assert!` here (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property-scoped equality assertion; identical to `assert_eq!` here.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property-scoped inequality assertion; identical to `assert_ne!` here.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_respects_class_and_bounds() {
        let mut rng = crate::test_runner::rng_for("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z0-9]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()), "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::rng_for("ranges");
        for _ in 0..1000 {
            let x = Strategy::generate(&(5u16..9), &mut rng);
            assert!((5..9).contains(&x));
            let y = Strategy::generate(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro surface itself: bindings, oneof, vec, option, tuples.
        #[test]
        fn macro_surface_works(
            n in 1usize..10,
            v in crate::collection::vec(any::<u8>(), 1..5),
            o in crate::option::of(0u32..7),
            pick in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!((1..10).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 5);
            if let Some(x) = o {
                prop_assert!(x < 7);
            }
            prop_assert!((1..5).contains(&pick));
        }
    }
}
