//! Open-loop overload: Poisson callers offer load at a configured rate
//! regardless of how many calls are already outstanding, which is what
//! lets offered load exceed capacity and the goodput-vs-offered curve
//! bend. Closed-loop callers cannot produce a cliff — their arrival rate
//! self-throttles to the completion rate — so these shapes only exist in
//! open-loop mode.
//!
//! Goodput here is deadline-scored, the way the overload-control
//! literature counts it: a call whose INVITE transaction exceeds the
//! setup budget completes (the retransmission machinery eventually gets
//! through) but scores zero.

use siperf::overload::OverloadConfig;
use siperf::proxy::config::Transport;
use siperf::simcore::time::SimDuration;
use siperf::workload::{Scenario, ScenarioReport};

/// Saturation for this topology (300 callees, four server cores) sits
/// near 16k calls/s ≈ 32k ops/s; 18k is just past the knee and 30k is
/// roughly 2× it.
const NEAR_KNEE: f64 = 18_000.0;
const TWICE_KNEE: f64 = 30_000.0;

fn run_open(transport: Transport, policy: OverloadConfig, rate: f64, seed: u64) -> ScenarioReport {
    let mut s = Scenario::builder(format!("open-{transport:?}-{}-{rate}", policy.token()))
        .transport(transport)
        .overload_policy(policy)
        .client_pairs(300)
        .arrival_rate(rate)
        .setup_deadline(SimDuration::from_millis(200))
        .seed(seed)
        .build();
    s.call_start = SimDuration::from_millis(700);
    s.measure_from = SimDuration::from_millis(2000);
    s.measure = SimDuration::from_millis(1500);
    s.run()
}

#[test]
fn open_loop_offers_the_configured_rate_below_saturation() {
    let r = run_open(Transport::Udp, OverloadConfig::NoControl, 6_000.0, 42);
    // The offered rate tracks the Poisson parameter, not the completion
    // rate — the defining property of an open loop.
    let offered = r.offered.per_sec();
    assert!(
        (offered - 6_000.0).abs() < 600.0,
        "offered {offered:.0}/s strays from the configured 6000/s"
    );
    // Below the knee everything completes: goodput is two transactions
    // (INVITE + BYE) per offered call.
    let goodput = r.throughput.per_sec();
    assert!(
        (goodput - 2.0 * offered).abs() < 0.1 * goodput,
        "goodput {goodput:.0}/s is not ~2x offered {offered:.0}/s"
    );
    assert_eq!(r.call_failures, 0);
    assert_eq!(r.calls_late, 0);
    assert!(r.open_calls_peak > 0, "open-loop pool never held a call");
}

#[test]
fn goodput_collapses_past_saturation_without_control() {
    let peak = run_open(Transport::Udp, OverloadConfig::NoControl, NEAR_KNEE, 42);
    let over = run_open(Transport::Udp, OverloadConfig::NoControl, TWICE_KNEE, 42);
    // The uncontrolled proxy still answers every INVITE eventually, but
    // past the knee the socket-buffer backlog pushes setup delay through
    // the deadline: offered load nearly doubles while goodput falls.
    assert!(
        over.offered.per_sec() > 1.5 * peak.offered.per_sec(),
        "overload run did not actually offer more load"
    );
    assert!(
        over.throughput.per_sec() < 0.75 * peak.throughput.per_sec(),
        "no cliff: goodput {:.0}/s at ~2x saturation vs {:.0}/s at the knee",
        over.throughput.per_sec(),
        peak.throughput.per_sec()
    );
    assert!(
        over.calls_late > 10 * peak.calls_late.max(1),
        "the cliff should be made of late calls: {} late at 2x vs {} near the knee",
        over.calls_late,
        peak.calls_late
    );
    // The backlog is visible where it lives: the callers' pools.
    assert!(over.open_calls_peak > 4 * peak.open_calls_peak);
}

#[test]
fn queue_threshold_holds_goodput_past_saturation() {
    let peak = run_open(
        Transport::Udp,
        OverloadConfig::queue_threshold_default(),
        NEAR_KNEE,
        42,
    );
    let over = run_open(
        Transport::Udp,
        OverloadConfig::queue_threshold_default(),
        TWICE_KNEE,
        42,
    );
    // Admission control converts the excess into cheap fast-path 503s
    // instead of queueing delay, so goodput holds near the peak…
    assert!(over.calls_rejected > 0, "no shedding at 2x saturation");
    assert!(
        over.throughput.per_sec() >= 0.85 * peak.throughput.per_sec(),
        "controlled goodput {:.0}/s fell >15% below its peak {:.0}/s",
        over.throughput.per_sec(),
        peak.throughput.per_sec()
    );
    // …and admitted calls still meet their setup deadline.
    assert!(
        over.calls_late * 100 < over.call_attempts,
        "{} of {} admitted calls blew the setup budget",
        over.calls_late,
        over.call_attempts
    );
    // Shed callers retry after their jittered Retry-After backoff.
    assert!(over.rejection_retries > 0, "no retries after 503 backoff");
}

#[test]
fn open_loop_runs_are_seed_deterministic() {
    // Past saturation with shedding active, every subsystem is exercised:
    // Poisson arrivals, retransmissions, fast-path 503s, jittered retry
    // backoff. Two same-seed runs must still agree byte for byte.
    let a = run_open(
        Transport::Udp,
        OverloadConfig::queue_threshold_default(),
        24_000.0,
        7,
    );
    let b = run_open(
        Transport::Udp,
        OverloadConfig::queue_threshold_default(),
        24_000.0,
        7,
    );
    assert_eq!(a.fingerprint(), b.fingerprint());

    // A different seed reshuffles arrivals and jitter: the digest moves.
    let c = run_open(
        Transport::Udp,
        OverloadConfig::queue_threshold_default(),
        24_000.0,
        8,
    );
    assert_ne!(a.fingerprint(), c.fingerprint());
}

#[test]
fn open_loop_works_over_reliable_transports() {
    for transport in [Transport::Tcp, Transport::Sctp] {
        let r = run_open(transport, OverloadConfig::NoControl, 3_000.0, 42);
        let offered = r.offered.per_sec();
        assert!(
            (offered - 3_000.0).abs() < 450.0,
            "{transport:?}: offered {offered:.0}/s strays from the configured 3000/s"
        );
        assert!(
            r.throughput.per_sec() > 1.5 * offered,
            "{transport:?}: goodput {:.0}/s under open loop",
            r.throughput.per_sec()
        );
        assert_eq!(r.call_failures, 0, "{transport:?}: open-loop calls failed");
    }
}
