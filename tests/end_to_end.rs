//! End-to-end correctness: real SIP calls complete through every proxy
//! architecture and transport, with the statistics agreeing across layers.

use siperf::proxy::config::{Arch, ProxyConfig, Transport};
use siperf::simcore::time::SimDuration;
use siperf::workload::Scenario;

/// Shrinks a scenario to integration-test scale (debug builds are slow).
fn small(builder: siperf::workload::ScenarioBuilder) -> siperf::workload::Scenario {
    let mut s = builder.build();
    s.call_start = SimDuration::from_millis(600);
    s.measure_from = SimDuration::from_millis(1200);
    s.measure = SimDuration::from_millis(1200);
    s
}

#[test]
fn udp_calls_complete_cleanly() {
    let report = small(
        Scenario::builder("udp-e2e")
            .transport(Transport::Udp)
            .client_pairs(8),
    )
    .run();
    assert_eq!(report.registered, 16, "every phone registers");
    assert_eq!(report.call_failures, 0, "no timeouts on a clean LAN");
    assert!(report.throughput.per_sec() > 100.0);
    // Equal numbers of invite and bye transactions (§4.2).
    let p = &report.proxy;
    assert!(p.requests > 0 && p.responses > 0 && p.forwards > 0);
    assert_eq!(p.parse_errors, 0);
    assert_eq!(p.absorbed_retrans, 0, "no loss, no retransmissions");
    assert_eq!(report.phone_retransmits, 0);
    // Stateful proxy created one transaction per INVITE/BYE.
    assert!(p.txns_created >= report.ops_total);
    // No TCP machinery in UDP mode.
    assert_eq!(p.fd_requests, 0);
    assert_eq!(p.conns_assigned, 0);
}

#[test]
fn tcp_persistent_calls_complete_with_fd_passing() {
    let report = small(
        Scenario::builder("tcp-e2e")
            .transport(Transport::Tcp)
            .client_pairs(8),
    )
    .run();
    assert_eq!(report.registered, 16);
    assert_eq!(report.call_failures, 0);
    assert!(report.throughput.per_sec() > 100.0);
    let p = &report.proxy;
    // Every phone's client connection was accepted and assigned.
    assert!(p.conns_assigned >= 16, "assigned {}", p.conns_assigned);
    // The baseline architecture requests descriptors over IPC constantly
    // (§5.1) and never hits a cache.
    assert!(p.fd_requests > 0, "fd requests are the TCP baseline's life");
    assert_eq!(p.fd_cache_hits, 0, "no cache in the baseline");
    assert_eq!(report.connect_errors, 0);
    assert_eq!(p.parse_errors, 0);
}

#[test]
fn tcp_fd_cache_converts_requests_to_hits() {
    let base = small(
        Scenario::builder("tcp-nocache")
            .transport(Transport::Tcp)
            .client_pairs(8)
            .seed(3),
    )
    .run();
    let cached = small(
        Scenario::builder("tcp-cache")
            .proxy(ProxyConfig::paper(Transport::Tcp).with_fd_cache())
            .client_pairs(8)
            .seed(3),
    )
    .run();
    assert!(cached.proxy.fd_cache_hits > 0);
    assert!(
        cached.proxy.fd_requests < base.proxy.fd_requests,
        "cache must reduce IPC: {} vs {}",
        cached.proxy.fd_requests,
        base.proxy.fd_requests
    );
    assert_eq!(cached.call_failures, 0);
}

#[test]
fn tcp_reconnect_policy_rolls_connections() {
    let report = small(
        Scenario::builder("tcp-50ops")
            .transport(Transport::Tcp)
            .client_pairs(6)
            .ops_per_conn(10),
    )
    .run();
    assert_eq!(report.call_failures, 0);
    assert!(report.reconnects > 0, "phones must roll connections");
    // Churned connections exceed the initial registrations.
    assert!(
        report.proxy.conns_assigned > 12,
        "assigned {}",
        report.proxy.conns_assigned
    );
}

#[test]
fn sctp_calls_complete_without_connection_management() {
    let report = small(
        Scenario::builder("sctp-e2e")
            .transport(Transport::Sctp)
            .client_pairs(8),
    )
    .run();
    assert_eq!(report.registered, 16);
    assert_eq!(report.call_failures, 0);
    assert!(report.throughput.per_sec() > 100.0);
    let p = &report.proxy;
    // §6: association management lives in the kernel — no supervisor
    // machinery at the application level.
    assert_eq!(p.fd_requests, 0);
    assert_eq!(p.conns_assigned, 0);
    assert!(report.net.sctp_messages > 0);
    assert!(report.net.sctp_assocs > 0);
}

#[test]
fn threaded_architecture_completes_without_fd_requests() {
    let mut proxy = ProxyConfig::paper(Transport::Tcp)
        .with_fd_cache()
        .with_priority_queue();
    proxy.arch = Arch::MultiThread;
    let report = small(
        Scenario::builder("threaded-e2e")
            .proxy(proxy)
            .client_pairs(8),
    )
    .run();
    assert_eq!(report.registered, 16);
    assert_eq!(report.call_failures, 0);
    let p = &report.proxy;
    // §6's whole point: shared descriptor table, zero fd-passing IPC.
    assert_eq!(p.fd_requests, 0);
    assert!(p.conns_assigned >= 16);
    assert!(report.throughput.per_sec() > 100.0);
}

#[test]
fn stateless_proxy_still_routes_calls() {
    let mut proxy = ProxyConfig::paper(Transport::Udp);
    proxy.stateful = false;
    let report = small(Scenario::builder("stateless").proxy(proxy).client_pairs(6)).run();
    assert_eq!(report.call_failures, 0);
    assert!(report.throughput.per_sec() > 100.0);
    // No transaction state, no 100 Trying, nothing to reap.
    assert_eq!(report.proxy.txns_created, 0);
    assert_eq!(report.proxy.absorbed_retrans, 0);
}

#[test]
fn worker_count_override_is_respected_and_works() {
    let mut proxy = ProxyConfig::paper(Transport::Udp);
    proxy.workers = Some(2);
    let report = small(
        Scenario::builder("two-workers")
            .proxy(proxy)
            .client_pairs(6),
    )
    .run();
    assert_eq!(report.call_failures, 0);
    assert!(report.throughput.per_sec() > 100.0);
}

#[test]
fn latency_percentiles_are_sane() {
    let report = small(
        Scenario::builder("latency")
            .transport(Transport::Udp)
            .client_pairs(8),
    )
    .run();
    // An invite transaction crosses the proxy four times: at least a couple
    // of one-way latencies, far below a second on an idle LAN.
    assert!(report.invite_p50 > SimDuration::from_micros(100));
    assert!(report.invite_p50 < SimDuration::from_millis(100));
    assert!(report.invite_p99 >= report.invite_p50);
    assert!(report.bye_p50 > SimDuration::from_micros(50));
}

#[test]
fn cancelled_calls_flow_through_the_stateful_proxy() {
    for transport in [Transport::Udp, Transport::Tcp] {
        let report = small(
            Scenario::builder(format!("cancel-{}", transport.token()))
                .transport(transport)
                .client_pairs(6)
                .cancel_every(4)
                .ring_delay(SimDuration::from_millis(20)),
        )
        .run();
        assert!(
            report.calls_cancelled > 0,
            "{}: some calls must be cancelled",
            transport.token()
        );
        assert_eq!(report.call_failures, 0, "{}", transport.token());
        let p = &report.proxy;
        assert!(p.cancels_relayed > 0, "{}", transport.token());
        assert_eq!(
            p.cancels_relayed,
            p.cancel_responses_absorbed,
            "{}: every relayed CANCEL gets its 200 back",
            transport.token()
        );
        // Un-cancelled calls still complete normally.
        assert!(report.throughput.per_sec() > 50.0, "{}", transport.token());
    }
}
