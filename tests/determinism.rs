//! Determinism: the whole stack — kernel, network, proxy, phones — must
//! replay bit-identically from a seed, or no figure in this repository
//! would be reproducible.

use siperf::faults::{Fault, FaultSchedule};
use siperf::proxy::config::Transport;
use siperf::simcore::time::SimDuration;
use siperf::simnet::{GilbertElliott, NetConfig};
use siperf::workload::{Scenario, ScenarioReport};

fn run(transport: Transport, seed: u64) -> ScenarioReport {
    run_with(transport, seed, NetConfig::lan(), FaultSchedule::new())
}

fn run_with(
    transport: Transport,
    seed: u64,
    net: NetConfig,
    faults: FaultSchedule,
) -> ScenarioReport {
    let mut s = Scenario::builder("det")
        .transport(transport)
        .client_pairs(6)
        .seed(seed)
        .net(net)
        .fault_schedule(faults)
        .build();
    s.call_start = SimDuration::from_millis(600);
    s.measure_from = SimDuration::from_millis(1200);
    s.measure = SimDuration::from_millis(1000);
    s.run()
}

fn fingerprint(r: &ScenarioReport) -> Vec<u64> {
    vec![
        r.throughput.ops(),
        r.ops_total,
        r.proxy.requests,
        r.proxy.responses,
        r.proxy.forwards,
        r.proxy.txns_created,
        r.proxy.fd_requests,
        r.kernel.syscalls,
        r.kernel.context_switches,
        r.kernel.wakeups,
        r.net.udp_sent,
        r.net.tcp_segments,
        r.server_profile.total_ns(),
        r.invite_p50.as_nanos(),
    ]
}

#[test]
fn udp_replays_identically() {
    let a = run(Transport::Udp, 11);
    let b = run(Transport::Udp, 11);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn tcp_replays_identically() {
    let a = run(Transport::Tcp, 12);
    let b = run(Transport::Tcp, 12);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn fault_stream_is_isolated_from_the_delivery_schedule() {
    // Loss decisions draw from the network's dedicated fault RNG stream,
    // never from the jitter stream. A burst-loss episode that can never
    // drop anything therefore consumes fault randomness per frame yet must
    // leave the run bit-identical to a healthy one — if this fails, fault
    // draws are perturbing the delivery schedule of unaffected packets.
    let harmless = GilbertElliott {
        p_good_to_bad: 0.3,
        p_bad_to_good: 0.3,
        loss_good: 0.0,
        loss_bad: 0.0,
    };
    let faults = FaultSchedule::new().at(
        SimDuration::from_millis(700),
        Fault::BurstLoss {
            model: harmless,
            duration: SimDuration::from_millis(1200),
        },
    );
    let clean = run(Transport::Udp, 5);
    let probed = run_with(Transport::Udp, 5, NetConfig::lan(), faults);
    assert_eq!(probed.net.fault_drops, 0);
    assert_eq!(fingerprint(&clean), fingerprint(&probed));
}

#[test]
fn lossy_runs_replay_identically_and_diverge_from_clean() {
    let mut lossy = NetConfig::lan();
    lossy.udp_loss = 0.03;
    let a = run_with(Transport::Udp, 11, lossy.clone(), FaultSchedule::new());
    let b = run_with(Transport::Udp, 11, lossy, FaultSchedule::new());
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "loss must replay from the seed"
    );
    assert!(a.net.udp_lost > 0, "the loss model must have fired");
    let clean = run(Transport::Udp, 11);
    assert_ne!(
        fingerprint(&a),
        fingerprint(&clean),
        "dropped packets must have observable effects"
    );
}

#[test]
fn different_seeds_diverge() {
    let a = run(Transport::Udp, 1);
    let b = run(Transport::Udp, 2);
    // Throughputs may coincide, but the full fingerprint will not.
    assert_ne!(fingerprint(&a), fingerprint(&b));
}
