//! Determinism: the whole stack — kernel, network, proxy, phones — must
//! replay bit-identically from a seed, or no figure in this repository
//! would be reproducible.

use siperf::proxy::config::Transport;
use siperf::simcore::time::SimDuration;
use siperf::workload::{Scenario, ScenarioReport};

fn run(transport: Transport, seed: u64) -> ScenarioReport {
    let mut s = Scenario::builder("det")
        .transport(transport)
        .client_pairs(6)
        .seed(seed)
        .build();
    s.call_start = SimDuration::from_millis(600);
    s.measure_from = SimDuration::from_millis(1200);
    s.measure = SimDuration::from_millis(1000);
    s.run()
}

fn fingerprint(r: &ScenarioReport) -> Vec<u64> {
    vec![
        r.throughput.ops(),
        r.ops_total,
        r.proxy.requests,
        r.proxy.responses,
        r.proxy.forwards,
        r.proxy.txns_created,
        r.proxy.fd_requests,
        r.kernel.syscalls,
        r.kernel.context_switches,
        r.kernel.wakeups,
        r.net.udp_sent,
        r.net.tcp_segments,
        r.server_profile.total_ns(),
        r.invite_p50.as_nanos(),
    ]
}

#[test]
fn udp_replays_identically() {
    let a = run(Transport::Udp, 11);
    let b = run(Transport::Udp, 11);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn tcp_replays_identically() {
    let a = run(Transport::Tcp, 12);
    let b = run(Transport::Tcp, 12);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn different_seeds_diverge() {
    let a = run(Transport::Udp, 1);
    let b = run(Transport::Udp, 2);
    // Throughputs may coincide, but the full fingerprint will not.
    assert_ne!(fingerprint(&a), fingerprint(&b));
}
