//! Chaos suite: scripted fault storms against every transport.
//!
//! Each storm is the canonical trio from [`FaultSchedule::storm`] — a
//! Gilbert–Elliott burst-loss episode, one worker crash, and one TCP
//! connection reset — applied mid-window with enough clean tail for the
//! system to heal. The assertions encode the robustness contract:
//!
//! 1. the run *completes* with a call-failure ratio under 20%,
//! 2. nothing leaks — server descriptors return to the healthy baseline,
//! 3. the whole ordeal is deterministic — two same-seed runs produce
//!    byte-identical reports (modulo wall-clock time).

use siperf::faults::{Fault, FaultSchedule};
use siperf::proxy::config::{ProxyConfig, Transport};
use siperf::simcore::time::SimDuration;
use siperf::simnet::HostId;
use siperf::workload::{Scenario, ScenarioReport};

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

/// A short paper-shaped run with the measurement window at [1.2 s, 8.2 s).
fn chaos_scenario(transport: Transport, seed: u64, faults: FaultSchedule) -> Scenario {
    let mut s = Scenario::builder(format!("chaos-{transport:?}"))
        .transport(transport)
        .client_pairs(6)
        .seed(seed)
        .fault_schedule(faults)
        .build();
    s.call_start = ms(600);
    s.measure_from = ms(1200);
    s.measure = SimDuration::from_secs(7);
    s
}

/// The canonical storm, scattered over [2.5 s, 5.5 s): heals no later than
/// ~7 s, leaving over a second of clean tail before the window closes.
fn storm(transport: Transport, seed: u64) -> FaultSchedule {
    let workers = ProxyConfig::paper(transport).worker_count();
    FaultSchedule::storm(seed, ms(2500), ms(3000), workers, HostId(0))
}

fn run_storm(transport: Transport, seed: u64) -> ScenarioReport {
    chaos_scenario(transport, seed, storm(transport, seed)).run()
}

fn assert_storm_survived(report: &ScenarioReport, transport: Transport) {
    assert!(
        report.ops_total > 0,
        "{transport:?}: no operations completed"
    );
    let ratio = report.call_failures as f64 / report.call_attempts.max(1) as f64;
    assert!(
        ratio < 0.2,
        "{transport:?}: {:.0}% of calls failed under the storm \
         ({} of {})",
        ratio * 100.0,
        report.call_failures,
        report.call_attempts
    );
    // Burst loss and the worker crash always apply; the connection reset
    // only finds a victim on connection-oriented transports.
    let expected_faults = if transport == Transport::Tcp { 3 } else { 2 };
    assert_eq!(
        report.faults_injected, expected_faults,
        "{transport:?}: wrong number of faults applied"
    );
    assert_eq!(
        report.workers_respawned, 1,
        "{transport:?}: crash not applied"
    );
    assert_eq!(report.proxy.workers_respawned, 1);
    if transport == Transport::Tcp {
        assert_eq!(
            report.connections_reset, 1,
            "{transport:?}: reset not applied"
        );
        assert!(report.net.tcp_resets >= 1);
    }
    assert!(
        report.net.fault_drops + report.net.fault_delays > 0,
        "burst had no effect"
    );
}

/// After the heal the server must hold no more descriptors than a healthy
/// same-seed run, give or take reconnect timing — nothing leaks.
fn assert_no_leaks(report: &ScenarioReport, transport: Transport, seed: u64) {
    let clean = chaos_scenario(transport, seed, FaultSchedule::new()).run();
    assert!(
        report.server_endpoints <= clean.server_endpoints + 4,
        "{transport:?}: {} endpoints after the storm vs {} healthy — leaked descriptors",
        report.server_endpoints,
        clean.server_endpoints
    );
    assert!(
        report.server_time_wait <= clean.server_time_wait + 4,
        "{transport:?}: TIME_WAIT grew from {} to {}",
        clean.server_time_wait,
        report.server_time_wait
    );
    assert!(
        report.open_conns <= clean.open_conns + 4,
        "{transport:?}: connection table grew from {} to {}",
        clean.open_conns,
        report.open_conns
    );
}

fn assert_deterministic(transport: Transport, seed: u64) {
    let a = run_storm(transport, seed);
    let b = run_storm(transport, seed);
    assert_eq!(
        a.fingerprint(),
        b.fingerprint(),
        "{transport:?}: same-seed chaos runs diverged"
    );
}

#[test]
fn udp_survives_the_canonical_storm() {
    let report = run_storm(Transport::Udp, 11);
    assert_storm_survived(&report, Transport::Udp);
    assert_no_leaks(&report, Transport::Udp, 11);
}

#[test]
fn tcp_survives_the_canonical_storm() {
    let report = run_storm(Transport::Tcp, 11);
    assert_storm_survived(&report, Transport::Tcp);
    assert_no_leaks(&report, Transport::Tcp, 11);
    // The reset phone reconnected and re-drove its in-flight call.
    assert!(
        report.recovered_calls >= 1 || report.call_failures == 0,
        "reset mid-call neither recovered nor was harmless"
    );
}

#[test]
fn sctp_survives_the_canonical_storm() {
    let report = run_storm(Transport::Sctp, 11);
    assert_storm_survived(&report, Transport::Sctp);
    assert_no_leaks(&report, Transport::Sctp, 11);
}

#[test]
fn chaos_runs_are_deterministic_per_seed() {
    assert_deterministic(Transport::Udp, 23);
    assert_deterministic(Transport::Tcp, 23);
    assert_deterministic(Transport::Sctp, 23);
}

#[test]
fn tcp_supervisor_crash_recovers() {
    let faults = FaultSchedule::new().at(ms(3000), Fault::KillSupervisor);
    let report = chaos_scenario(Transport::Tcp, 7, faults).run();
    assert_eq!(report.workers_respawned, 1, "supervisor crash not applied");
    assert!(report.ops_total > 0);
    let ratio = report.call_failures as f64 / report.call_attempts.max(1) as f64;
    assert!(
        ratio < 0.2,
        "supervisor crash sank {:.0}% of calls",
        ratio * 100.0
    );
}

#[test]
fn tcp_fd_cache_survives_resets() {
    // §5.2's per-worker descriptor cache holds fds for peers; a reset must
    // invalidate the stale entry (via the conn-death sweep) rather than
    // keep serving a dead descriptor.
    let mut s = chaos_scenario(Transport::Tcp, 19, storm(Transport::Tcp, 19));
    s.proxy = ProxyConfig::paper(Transport::Tcp).with_fd_cache();
    let report = s.run();
    assert_storm_survived(&report, Transport::Tcp);
    assert!(report.proxy.fd_cache_hits > 0, "cache never engaged");
}
