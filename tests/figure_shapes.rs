//! Reduced-scale versions of the paper's headline results. Absolute numbers
//! differ from the full-scale benches; these tests pin the *shape*: who
//! wins, in what order, and that each fix moves the needle the way
//! Figures 3–5 and §4.3 report.

use siperf::proxy::config::{Arch, ProxyConfig, Transport};
use siperf::simos::process::Nice;
use siperf::workload::experiments::{quick_cell, FigureConfig, TransportWorkload};
use siperf::workload::Scenario;

fn tput(fig: FigureConfig, wl: TransportWorkload) -> f64 {
    quick_cell(fig, wl, 100, 77).run().throughput.per_sec()
}

#[test]
fn figure3_baseline_ordering() {
    let udp = tput(FigureConfig::Baseline, TransportWorkload::Udp);
    let pers = tput(FigureConfig::Baseline, TransportWorkload::TcpPersistent);
    let t500 = tput(FigureConfig::Baseline, TransportWorkload::Tcp500);
    let t50 = tput(FigureConfig::Baseline, TransportWorkload::Tcp50);

    // "OpenSER over TCP performs very poorly in comparison to OpenSER over
    // UDP. With 100 clients, the UDP throughput is twice that of TCP under
    // the persistent connection workload."
    assert!(udp > 1.7 * pers, "udp {udp:.0} vs persistent {pers:.0}");
    // "The non-persistent TCP connection workloads perform even worse."
    assert!(t50 < t500 * 1.02, "50ops {t50:.0} vs 500ops {t500:.0}");
    assert!(
        t500 < pers * 1.05,
        "500ops {t500:.0} vs persistent {pers:.0}"
    );
    assert!(udp > 2.3 * t50, "udp {udp:.0} vs 50ops {t50:.0}");
}

#[test]
fn figure4_fd_cache_lifts_tcp_but_not_the_churny_workload() {
    let base_pers = tput(FigureConfig::Baseline, TransportWorkload::TcpPersistent);
    let udp = tput(FigureConfig::FdCache, TransportWorkload::Udp);
    let pers = tput(FigureConfig::FdCache, TransportWorkload::TcpPersistent);
    let t500 = tput(FigureConfig::FdCache, TransportWorkload::Tcp500);
    let t50 = tput(FigureConfig::FdCache, TransportWorkload::Tcp50);

    // "The file descriptor cache yields a dramatic improvement in the TCP
    // performance" — persistent within the paper's 66–78% band (± a few
    // points at this reduced scale).
    assert!(
        pers > 1.4 * base_pers,
        "cache {pers:.0} vs baseline {base_pers:.0}"
    );
    let ratio = pers / udp;
    assert!(
        (0.60..=0.88).contains(&ratio),
        "persistent at {:.0}% of UDP",
        ratio * 100.0
    );
    // "the results from the 500 operations per connection experiments are
    // very similar to the persistent case."
    assert!(
        t500 > 0.9 * pers,
        "500ops {t500:.0} vs persistent {pers:.0}"
    );
    // "in the 50 operations per connection case … there is still a two-fold
    // difference in the throughput compared to the other TCP workloads."
    assert!(t50 < 0.78 * pers, "50ops {t50:.0} vs persistent {pers:.0}");
}

#[test]
fn figure5_priority_queue_rescues_the_churny_workload() {
    let f4_t50 = tput(FigureConfig::FdCache, TransportWorkload::Tcp50);
    let t50 = tput(FigureConfig::FdCachePlusPq, TransportWorkload::Tcp50);
    let pers = tput(
        FigureConfig::FdCachePlusPq,
        TransportWorkload::TcpPersistent,
    );
    let udp = tput(FigureConfig::FdCachePlusPq, TransportWorkload::Udp);

    // "There is a significant impact on the performance in the 50
    // operations per connection workload, where the throughput is very
    // similar to the other TCP workloads."
    assert!(
        t50 > 1.35 * f4_t50,
        "pq {t50:.0} vs linear-scan {f4_t50:.0}"
    );
    assert!(t50 > 0.88 * pers, "50ops {t50:.0} vs persistent {pers:.0}");
    // All TCP workloads land in a band below UDP (50–78% in the paper).
    let ratio = t50 / udp;
    assert!(
        (0.5..=0.9).contains(&ratio),
        "50ops at {:.0}% of UDP",
        ratio * 100.0
    );
}

#[test]
fn priority_queue_costs_nothing_when_there_is_no_churn() {
    // "In the other TCP workloads, adding the priority queue has negligible
    // effect on performance."
    let f4 = tput(FigureConfig::FdCache, TransportWorkload::TcpPersistent);
    let f5 = tput(
        FigureConfig::FdCachePlusPq,
        TransportWorkload::TcpPersistent,
    );
    assert!(
        (f5 - f4).abs() / f4 < 0.10,
        "pq should be ~free on persistent conns: {f4:.0} vs {f5:.0}"
    );
}

#[test]
fn supervisor_priority_elevation_pays_in_the_right_direction() {
    // §4.3 reports a 40–100% gain from running the supervisor at nice −20.
    // Our scheduler reproduces the *mechanism* (the woken supervisor
    // preempts busy workers instead of queueing behind them) and the
    // direction, but not the paper's magnitude: the specific starvation was
    // a Linux 2.6.20 O(1)-scheduler interactivity artifact this model does
    // not emulate. See EXPERIMENTS.md, ablation A1.
    fn run(nice: Nice) -> f64 {
        let mut proxy = ProxyConfig::paper(Transport::Tcp);
        proxy.supervisor_nice = nice;
        let mut s = Scenario::builder("prio")
            .proxy(proxy)
            .client_pairs(500)
            .seed(5)
            .build();
        s.call_start = siperf::simcore::time::SimDuration::from_millis(800);
        s.measure_from = siperf::simcore::time::SimDuration::from_millis(1500);
        s.measure = siperf::simcore::time::SimDuration::from_secs(2);
        s.run().throughput.per_sec()
    }
    let elevated = run(Nice::HIGHEST);
    let normal = run(Nice::NORMAL);
    assert!(
        elevated > 1.03 * normal,
        "nice -20 must pay: {elevated:.0} vs {normal:.0}"
    );
}

#[test]
fn threaded_architecture_beats_the_fixed_process_architecture() {
    // §6: with all workers in one address space, connection sharing is
    // cheap; the threaded server should at least match the fully-fixed
    // multi-process one.
    let fixed = tput(
        FigureConfig::FdCachePlusPq,
        TransportWorkload::TcpPersistent,
    );
    let mut proxy = ProxyConfig::paper(Transport::Tcp)
        .with_fd_cache()
        .with_priority_queue();
    proxy.arch = Arch::MultiThread;
    let mut s = Scenario::builder("threaded")
        .proxy(proxy)
        .client_pairs(100)
        .seed(77)
        .build();
    s.call_start = siperf::simcore::time::SimDuration::from_millis(800);
    s.measure_from = siperf::simcore::time::SimDuration::from_millis(1500);
    s.measure = siperf::simcore::time::SimDuration::from_secs(2);
    let threaded = s.run().throughput.per_sec();
    assert!(
        threaded > 0.95 * fixed,
        "threaded {threaded:.0} vs fixed multi-process {fixed:.0}"
    );
}

#[test]
fn sctp_closes_most_of_the_gap_to_udp() {
    // §6: SCTP keeps the symmetric architecture on a reliable transport,
    // removing the TCP architecture's overheads.
    let udp = tput(FigureConfig::Baseline, TransportWorkload::Udp);
    let tcp_fixed = tput(
        FigureConfig::FdCachePlusPq,
        TransportWorkload::TcpPersistent,
    );
    let mut s = Scenario::builder("sctp")
        .transport(Transport::Sctp)
        .client_pairs(100)
        .seed(77)
        .build();
    s.call_start = siperf::simcore::time::SimDuration::from_millis(800);
    s.measure_from = siperf::simcore::time::SimDuration::from_millis(1500);
    s.measure = siperf::simcore::time::SimDuration::from_secs(2);
    let sctp = s.run().throughput.per_sec();
    assert!(
        sctp > tcp_fixed,
        "sctp {sctp:.0} vs fixed tcp {tcp_fixed:.0}"
    );
    assert!(sctp > 0.85 * udp, "sctp {sctp:.0} vs udp {udp:.0}");
}
