//! Overload behaviour: drive far more concurrent clients than the server
//! can serve and check the system degrades the way real SIP servers do —
//! throughput pinned at saturation, latency growing with the queue, no
//! crashes, every loss accounted for.

use siperf::overload::OverloadConfig;
use siperf::proxy::config::Transport;
use siperf::simcore::time::SimDuration;
use siperf::workload::{Scenario, ScenarioReport};

/// One overloaded run (~2x the saturation knee) with the same timing the
/// saturation tests use, under the given admission policy.
fn run_overloaded(transport: Transport, policy: OverloadConfig) -> ScenarioReport {
    let mut s = Scenario::builder(format!("{transport:?}-{}", policy.token()))
        .transport(transport)
        .overload_policy(policy)
        .client_pairs(1200)
        .build();
    s.call_start = SimDuration::from_millis(700);
    s.measure_from = SimDuration::from_millis(1500);
    s.measure = SimDuration::from_millis(1500);
    s.run()
}

/// Every rejection is accounted for, nothing is silently lost: attempts =
/// completed calls + failures + cancels + shed calls + calls still in
/// flight when the clock stopped (≤ one per caller), and the phones never
/// saw more 503s than the policy issued.
fn assert_rejections_accounted(r: &ScenarioReport) {
    assert!(
        r.proxy.overload_rejections >= r.calls_rejected,
        "phones saw {} rejections but the policy only issued {}",
        r.calls_rejected,
        r.proxy.overload_rejections
    );
    let accounted = r.ops_total / 2 + r.call_failures + r.calls_cancelled + r.calls_rejected + 1200;
    assert!(
        r.call_attempts <= accounted,
        "attempts {} vs accounted {}",
        r.call_attempts,
        accounted
    );
}

#[test]
fn udp_admission_control_holds_goodput_and_bounds_latency_at_2x() {
    let base = run_overloaded(Transport::Udp, OverloadConfig::NoControl);
    let ctl = run_overloaded(Transport::Udp, OverloadConfig::queue_threshold_default());

    // The policy is actually shedding at this load…
    assert!(ctl.calls_rejected > 0, "no 503s at 2x capacity");
    // …and phones come back after their Retry-After backoff.
    assert!(ctl.rejection_retries > 0, "no retries after 503 backoff");
    // Goodput stays within 20% of the uncontrolled saturation peak: the
    // excess is converted into cheap 503s, not lost capacity.
    assert!(
        ctl.throughput.per_sec() >= 0.8 * base.throughput.per_sec(),
        "controlled goodput {:.0} fell >20% below saturation {:.0}",
        ctl.throughput.per_sec(),
        base.throughput.per_sec()
    );
    // The admission threshold caps the pending queue, so latency is
    // bounded below the uncontrolled queueing delay.
    assert!(
        ctl.invite_p50 < base.invite_p50,
        "controlled p50 {} not below uncontrolled {}",
        ctl.invite_p50,
        base.invite_p50
    );
    assert_rejections_accounted(&ctl);
    // The uncontrolled run sheds nothing — the contrast is real.
    assert_eq!(base.calls_rejected, 0);
    assert_eq!(base.proxy.overload_rejections, 0);
}

#[test]
fn tcp_admission_control_rejects_early_instead_of_queueing() {
    let base = run_overloaded(Transport::Tcp, OverloadConfig::NoControl);
    let ctl = run_overloaded(Transport::Tcp, OverloadConfig::queue_threshold_default());

    // With control the proxy says no up front…
    assert!(ctl.calls_rejected > 0, "TCP control shed nothing at 2x");
    // …instead of parking the excess in queues: admitted calls finish
    // faster than under the uncontrolled backlog.
    assert!(
        ctl.invite_p50 < base.invite_p50,
        "controlled p50 {} not below uncontrolled {}",
        ctl.invite_p50,
        base.invite_p50
    );
    assert_eq!(ctl.proxy.parse_errors, 0);
    assert_rejections_accounted(&ctl);
    assert_eq!(base.calls_rejected, 0);
}

#[test]
fn window_feedback_sheds_and_keeps_goodput_at_2x() {
    let ctl = run_overloaded(Transport::Udp, OverloadConfig::window_feedback_default());
    assert!(ctl.calls_rejected > 0, "window feedback shed nothing at 2x");
    assert!(
        ctl.throughput.per_sec() > 25_000.0,
        "goodput collapsed under window feedback: {:.0}",
        ctl.throughput.per_sec()
    );
    assert_rejections_accounted(&ctl);
}

#[test]
fn udp_overload_saturates_gracefully() {
    let mut s = Scenario::builder("udp-overload")
        .transport(Transport::Udp)
        .client_pairs(1200) // far past the knee
        .build();
    s.call_start = SimDuration::from_millis(700);
    s.measure_from = SimDuration::from_millis(1500);
    s.measure = SimDuration::from_millis(1500);
    let report = s.run();

    // The server runs flat out and still serves at its capacity.
    assert!(report.server_utilization > 0.5);
    assert!(
        report.throughput.per_sec() > 25_000.0,
        "saturation throughput collapsed: {:.0}",
        report.throughput.per_sec()
    );
    // Latency reflects queueing, far above the unloaded ~2 ms.
    assert!(report.invite_p99 > report.invite_p50);
    assert!(report.invite_p50 > SimDuration::from_millis(5));
    // Whatever was dropped or timed out is visible in the accounting, not
    // silently lost: attempts = completed calls + cancelled + failures +
    // calls still in flight when the clock stopped (≤ one per caller).
    let accounted = report.ops_total / 2 + report.call_failures + report.calls_cancelled;
    assert!(
        report.call_attempts <= accounted + 1200,
        "attempts {} vs accounted {}",
        report.call_attempts,
        accounted
    );
}

#[test]
fn tcp_overload_saturates_gracefully() {
    let mut s = Scenario::builder("tcp-overload")
        .transport(Transport::Tcp)
        .client_pairs(1200)
        .build();
    s.call_start = SimDuration::from_millis(700);
    s.measure_from = SimDuration::from_millis(1500);
    s.measure = SimDuration::from_millis(1500);
    let report = s.run();

    assert!(report.server_utilization > 0.5);
    assert!(
        report.throughput.per_sec() > 5_000.0,
        "TCP collapsed entirely: {:.0}",
        report.throughput.per_sec()
    );
    // The queue is visible in latency, and nobody deadlocked: work always
    // progressed through the window.
    assert!(report.invite_p50 > SimDuration::from_millis(10));
    assert!(report.ops_total > 0);
    assert_eq!(report.proxy.parse_errors, 0);
}
