//! Overload behaviour: drive far more concurrent clients than the server
//! can serve and check the system degrades the way real SIP servers do —
//! throughput pinned at saturation, latency growing with the queue, no
//! crashes, every loss accounted for.

use siperf::proxy::config::Transport;
use siperf::simcore::time::SimDuration;
use siperf::workload::Scenario;

#[test]
fn udp_overload_saturates_gracefully() {
    let mut s = Scenario::builder("udp-overload")
        .transport(Transport::Udp)
        .client_pairs(1200) // far past the knee
        .build();
    s.call_start = SimDuration::from_millis(700);
    s.measure_from = SimDuration::from_millis(1500);
    s.measure = SimDuration::from_millis(1500);
    let report = s.run();

    // The server runs flat out and still serves at its capacity.
    assert!(report.server_utilization > 0.5);
    assert!(
        report.throughput.per_sec() > 25_000.0,
        "saturation throughput collapsed: {:.0}",
        report.throughput.per_sec()
    );
    // Latency reflects queueing, far above the unloaded ~2 ms.
    assert!(report.invite_p99 > report.invite_p50);
    assert!(report.invite_p50 > SimDuration::from_millis(5));
    // Whatever was dropped or timed out is visible in the accounting, not
    // silently lost: attempts = completed calls + cancelled + failures +
    // calls still in flight when the clock stopped (≤ one per caller).
    let accounted = report.ops_total / 2 + report.call_failures + report.calls_cancelled;
    assert!(
        report.call_attempts <= accounted + 1200,
        "attempts {} vs accounted {}",
        report.call_attempts,
        accounted
    );
}

#[test]
fn tcp_overload_saturates_gracefully() {
    let mut s = Scenario::builder("tcp-overload")
        .transport(Transport::Tcp)
        .client_pairs(1200)
        .build();
    s.call_start = SimDuration::from_millis(700);
    s.measure_from = SimDuration::from_millis(1500);
    s.measure = SimDuration::from_millis(1500);
    let report = s.run();

    assert!(report.server_utilization > 0.5);
    assert!(
        report.throughput.per_sec() > 5_000.0,
        "TCP collapsed entirely: {:.0}",
        report.throughput.per_sec()
    );
    // The queue is visible in latency, and nobody deadlocked: work always
    // progressed through the window.
    assert!(report.invite_p50 > SimDuration::from_millis(10));
    assert!(report.ops_total > 0);
    assert_eq!(report.proxy.parse_errors, 0);
}
