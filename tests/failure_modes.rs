//! Failure-mode reproduction: the §6 blocking-IPC deadlock, the §4.3
//! descriptor/port starvation at 120 s idle timeouts, and stateful-proxy
//! recovery on a lossy network.

use siperf::faults::{Fault, FaultSchedule};
use siperf::proxy::config::{ProxyConfig, Transport};
use siperf::simcore::time::{SimDuration, SimTime};
use siperf::simnet::NetConfig;
use siperf::workload::Scenario;

#[test]
fn stateful_proxy_recovers_lossy_udp() {
    let mut net = NetConfig::lan();
    net.udp_loss = 0.03; // 3% loss: brutal for SIP without retransmission
    let mut s = Scenario::builder("lossy-udp")
        .transport(Transport::Udp)
        .client_pairs(6)
        .net(net)
        .build();
    s.call_start = SimDuration::from_millis(600);
    s.measure_from = SimDuration::from_millis(1200);
    s.measure = SimDuration::from_secs(3);
    let report = s.run();

    assert!(report.net.udp_lost > 0, "the loss model must have fired");
    assert!(
        report.phone_retransmits > 0 || report.proxy.retransmits_sent > 0,
        "someone must have retransmitted"
    );
    // Despite loss, the overwhelming majority of calls complete: phones
    // retransmit INVITEs and the stateful proxy retransmits forwards.
    assert!(report.ops_total > 0);
    let failure_ratio = report.call_failures as f64 / report.call_attempts.max(1) as f64;
    assert!(
        failure_ratio < 0.2,
        "reliability machinery failed: {:.0}% of calls lost",
        failure_ratio * 100.0
    );
}

#[test]
fn bounded_ipc_deadlocks_the_supervisor_architecture() {
    // §6: "When a worker process requests a connection from the supervisor
    // process, it then blocks waiting to receive that file descriptor. If,
    // at the same time, the supervisor process blocks waiting to send a new
    // connection to the same worker (since the buffer at the receiver is
    // full), the two processes will deadlock."
    //
    // A one-slot assignment buffer plus a burst of new connections makes
    // this near-certain: workers sit in blocking receives for fd responses
    // while the supervisor sits in a blocking send of an assignment.
    // Connection churn keeps assignments flowing while workers hold
    // outstanding fd requests — the two halves of the cycle.
    let mut proxy = ProxyConfig::paper(Transport::Tcp);
    proxy.ipc_capacity = 1;
    proxy.workers = Some(2);
    let mut s = Scenario::builder("deadlock")
        .proxy(proxy)
        .client_pairs(40)
        .ops_per_conn(5)
        .build();
    s.call_start = SimDuration::from_millis(600);
    s.measure_from = SimDuration::from_millis(800);
    s.measure = SimDuration::from_secs(2);

    let mut world = s.build_world();
    world
        .kernel
        .run_until(SimTime::ZERO + SimDuration::from_secs(3));

    let cycle = world.kernel.find_ipc_deadlock();
    assert!(
        cycle.is_some(),
        "expected the §6 supervisor/worker deadlock; blocked: {:?}",
        world.kernel.blocked_summary()
    );
    let cycle = cycle.unwrap();
    let names: Vec<&str> = cycle
        .iter()
        .map(|&pid| world.kernel.proc_name(pid))
        .collect();
    assert!(
        names.iter().any(|n| n.contains("tcp_main")),
        "the supervisor is part of the cycle: {names:?}"
    );
    assert!(
        names.iter().any(|n| n.contains("tcp_worker")),
        "a worker is part of the cycle: {names:?}"
    );
    // Once deadlocked, the proxy serves nothing.
    let report = s.report(&world);
    assert!(
        report.throughput.per_sec() < 500.0,
        "a deadlocked proxy cannot sustain throughput"
    );
}

#[test]
fn generous_ipc_buffers_avoid_the_deadlock() {
    // The identical burst with OpenSER-sized buffers completes fine.
    let mut proxy = ProxyConfig::paper(Transport::Tcp);
    proxy.ipc_capacity = 256;
    proxy.workers = Some(2);
    let mut s = Scenario::builder("no-deadlock")
        .proxy(proxy)
        .client_pairs(40)
        .ops_per_conn(5)
        .build();
    s.call_start = SimDuration::from_millis(600);
    s.measure_from = SimDuration::from_millis(800);
    s.measure = SimDuration::from_secs(1);
    let mut world = s.build_world();
    world.kernel.run_until(s.window().1);
    assert!(world.kernel.find_ipc_deadlock().is_none());
    let report = s.report(&world);
    assert!(report.throughput.per_sec() > 100.0);
}

/// Runs the churny reconnect workload against a server with a bounded
/// descriptor budget and the given idle timeout, returning (connect
/// errors, throughput, live server sockets at the end).
fn starvation_run(idle_timeout: SimDuration) -> (u64, f64, usize) {
    let mut net = NetConfig::lan();
    net.max_endpoints_per_host = 700;
    let mut proxy = ProxyConfig::paper(Transport::Tcp).with_fd_cache();
    proxy.idle_timeout = idle_timeout;
    let mut s = Scenario::builder(format!("starvation-{idle_timeout}"))
        .proxy(proxy)
        .client_pairs(8)
        .ops_per_conn(10)
        .net(net)
        .build();
    s.call_start = SimDuration::from_millis(600);
    s.measure_from = SimDuration::from_millis(1000);
    s.measure = SimDuration::from_secs(4);
    let report = s.run();
    (
        report.connect_errors,
        report.throughput.per_sec(),
        report.server_endpoints,
    )
}

#[test]
fn long_idle_timeouts_starve_the_descriptor_budget() {
    // §4.3: with the 120 s default, abandoned connections accumulate until
    // the server runs out of descriptors; the paper had to drop the timeout
    // to 10 s. At test scale the churn is proportionally faster, so the
    // "good" timeout is scaled down too — same mechanism, compressed clock.
    let (errs_long, tput_long, open_long) = starvation_run(SimDuration::from_secs(120));
    let (errs_short, tput_short, open_short) = starvation_run(SimDuration::from_millis(250));

    assert!(
        errs_long > 0,
        "120 s timeout must exhaust the budget (open sockets: {open_long})"
    );
    assert!(
        errs_short < errs_long / 4,
        "aggressive closing avoids starvation: {errs_short} vs {errs_long}"
    );
    assert!(open_long > open_short);
    assert!(
        tput_short > 2.0 * tput_long,
        "starvation costs throughput: {tput_short} vs {tput_long}"
    );
}

/// Crashes one worker in the middle of the call phase and lets the
/// supervisor/respawn machinery pick up the pieces: orphaned connections
/// are re-announced to the replacement (TCP), shared sockets are re-dup'd
/// from a sibling (UDP/SCTP), and phones re-drive disturbed calls.
fn worker_crash_run(transport: Transport) -> siperf::workload::ScenarioReport {
    let faults = FaultSchedule::new().at(
        SimDuration::from_millis(3000),
        Fault::KillWorker { index: 2 },
    );
    let mut s = Scenario::builder(format!("crash-{transport:?}"))
        .transport(transport)
        .client_pairs(6)
        .fault_schedule(faults)
        .build();
    s.call_start = SimDuration::from_millis(600);
    s.measure_from = SimDuration::from_millis(1200);
    s.measure = SimDuration::from_secs(4);
    s.run()
}

fn assert_crash_tolerated(report: &siperf::workload::ScenarioReport, transport: Transport) {
    assert_eq!(
        report.workers_respawned, 1,
        "{transport:?}: crash not applied"
    );
    assert!(report.ops_total > 0, "{transport:?}: nothing completed");
    let failure_ratio = report.call_failures as f64 / report.call_attempts.max(1) as f64;
    assert!(
        failure_ratio < 0.2,
        "{transport:?}: a single worker crash sank {:.0}% of calls",
        failure_ratio * 100.0
    );
}

#[test]
fn udp_tolerates_a_mid_call_worker_crash() {
    let report = worker_crash_run(Transport::Udp);
    assert_crash_tolerated(&report, Transport::Udp);
}

#[test]
fn tcp_tolerates_a_mid_call_worker_crash() {
    let report = worker_crash_run(Transport::Tcp);
    assert_crash_tolerated(&report, Transport::Tcp);
    // The replacement worker inherits the crashed worker's connections.
    assert!(
        report.proxy.conns_reassigned > 0 || report.open_conns > 0,
        "supervisor re-announced no connections"
    );
}

#[test]
fn sctp_tolerates_a_mid_call_worker_crash() {
    let report = worker_crash_run(Transport::Sctp);
    assert_crash_tolerated(&report, Transport::Sctp);
}
